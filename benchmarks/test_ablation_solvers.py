"""Ablation A2 — ILP solver vs exhaustive enumeration over variable relations.

The repair selection (Def. 5.5) is solved by our branch-and-bound 0-1 ILP
solver (the paper uses lpsolve).  An independent exhaustive solver that
enumerates total variable relations is used as a correctness cross-check:
both must find repairs of identical cost.  Statuses and optimum costs are
committed to ``results/ablation_solvers.json``; the per-attempt solver
timings are machine-dependent and go to the gitignored
``results/local/ablation_solver_timings.json``.
"""

from __future__ import annotations

import json
import time

from repro.core.pipeline import Clara
from repro.datasets import generate_corpus, get_problem


def _build(problem_name: str, solver: str) -> Clara:
    problem = get_problem(problem_name)
    corpus = generate_corpus(problem, 10, 0, seed=13)
    clara = Clara(
        cases=problem.cases,
        language=problem.language,
        entry=problem.entry,
        solver=solver,
    )
    clara.add_correct_sources(corpus.correct_sources)
    return clara


def test_ablation_solvers(benchmark, results_dir, local_results_dir):
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 10, 5, seed=13)
    ilp = _build("derivatives", "ilp")
    enum = _build("derivatives", "enumerate")

    attempt = corpus.incorrect_sources[0]
    outcome = benchmark(ilp.repair_source, attempt)

    records = []
    timing_records = []
    for source in corpus.incorrect_sources:
        started = time.perf_counter()
        ilp_outcome = ilp.repair_source(source)
        ilp_time = time.perf_counter() - started
        started = time.perf_counter()
        enum_outcome = enum.repair_source(source)
        enum_time = time.perf_counter() - started
        records.append(
            {
                "ilp_status": ilp_outcome.status,
                "enum_status": enum_outcome.status,
                "ilp_cost": ilp_outcome.repair.cost if ilp_outcome.repair else None,
                "enum_cost": enum_outcome.repair.cost if enum_outcome.repair else None,
            }
        )
        timing_records.append(
            {"ilp_time": round(ilp_time, 5), "enum_time": round(enum_time, 5)}
        )
        # The two solvers must agree on feasibility and on the optimum cost.
        assert ilp_outcome.status == enum_outcome.status
        if ilp_outcome.repair is not None and enum_outcome.repair is not None:
            assert abs(ilp_outcome.repair.cost - enum_outcome.repair.cost) < 1e-6

    (results_dir / "ablation_solvers.json").write_text(json.dumps(records, indent=2) + "\n")
    (local_results_dir / "ablation_solver_timings.json").write_text(
        json.dumps(timing_records, indent=2) + "\n"
    )
    assert outcome is not None
