"""Benchmark E10 — lazy segment paging of the indexed (v3) cluster store.

The v3 store splits a clustering into a header plus per-fingerprint-bucket
segment files (``docs/STORAGE.md``); opening a store reads only the header
and each repair pages in just the segments whose CFG-skeleton digest
matches the attempt.  This benchmark builds a widened derivatives store
whose pool contains two distinct CFG shapes — the generated single-loop
family plus a hand-written two-loop solution — and checks that

* opening the store loads **zero** segments;
* repairing one attempt loads **strictly fewer** segments than the store
  holds (the acceptance bar: header + matched bucket only);
* a full incorrect batch still never pages the shape it cannot match.

Deterministic paging counters (segment/cluster loads and skips per
scenario) are committed to ``results/store_paging.json``; wall-clock
numbers go to the gitignored ``results/local/store_paging_timings.json``.
The benchmarked unit is one cold lazy open plus a single-attempt repair.
"""

from __future__ import annotations

import json
import time

from repro import Clara
from repro.datasets import generate_corpus, get_problem
from repro.engine import BatchRepairEngine

from conftest import bench_scale

#: Correct two-loop strategy: a CFG shape the generated pool never emits,
#: so its segment is skippable by every single-loop attempt (and vice
#: versa).
TWO_LOOP = (
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

#: Same two-loop shape, wrong scaling — pages exactly one segment.
TWO_LOOP_BROKEN = TWO_LOOP.replace("float(i*poly[i])", "float(poly[i])")


def _build_store(tmp_path):
    correct, incorrect = bench_scale()
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, max(2 * correct, 30), incorrect, seed=2018)
    clara = Clara(cases=problem.cases, language=problem.language, entry=problem.entry)
    clara.add_correct_sources(list(corpus.correct_sources) + [TWO_LOOP])
    path = clara.save_clusters(tmp_path / "derivatives.json", problem="derivatives")
    return problem, corpus, path


def _lazy_engine(problem, path):
    clara = Clara(cases=problem.cases, language=problem.language, entry=problem.entry)
    return BatchRepairEngine.from_store(path, clara, workers=1)


def test_store_paging(benchmark, results_dir, local_results_dir, tmp_path):
    build_started = time.perf_counter()
    problem, corpus, path = _build_store(tmp_path)
    build_time = time.perf_counter() - build_started

    # Scenario 1: open is header-only.
    open_started = time.perf_counter()
    engine = _lazy_engine(problem, path)
    open_time = time.perf_counter() - open_started
    at_open = engine.clara.store_paging()
    assert at_open["segments_loaded"] == 0
    assert at_open["clusters_loaded"] == 0

    # Scenario 2: one attempt pages only its skeleton's segments.
    single_started = time.perf_counter()
    record = engine.run([TWO_LOOP_BROKEN]).records[0]
    single_time = time.perf_counter() - single_started
    assert record.status == "repaired"
    single = engine.clara.store_paging()
    assert single["segments_loaded"] < single["segments_total"], (
        f"repairing one attempt paged all {single['segments_total']} segments "
        "- lazy loading is not pruning anything"
    )
    assert single["segments_loaded"] == 1

    # Scenario 3: a full incorrect batch (all single-loop shapes) must
    # never touch the two-loop segment.
    batch_engine = _lazy_engine(problem, path)
    batch_started = time.perf_counter()
    report = batch_engine.run(corpus.incorrect_sources)
    batch_time = time.perf_counter() - batch_started
    batch = batch_engine.clara.store_paging()
    assert batch["segments_loaded"] < batch["segments_total"]

    payload = {
        "problem": "derivatives",
        "correct_pool": len(corpus.correct_sources) + 1,
        "incorrect_batch": len(corpus.incorrect_sources),
        "at_open": at_open,
        "after_single_attempt": single,
        "after_incorrect_batch": batch,
        "single_attempt_status": record.status,
        "batch_statuses": {
            status: count for status, count in report.status_histogram().items()
        },
    }
    (results_dir / "store_paging.json").write_text(json.dumps(payload, indent=2) + "\n")
    (local_results_dir / "store_paging_timings.json").write_text(
        json.dumps(
            {
                "build_time": round(build_time, 4),
                "open_time": round(open_time, 4),
                "single_attempt_time": round(single_time, 4),
                "batch_time": round(batch_time, 4),
            },
            indent=2,
        )
        + "\n"
    )
    print("\n" + json.dumps(payload, indent=2))

    # Steady-state unit: one cold lazy open plus a single-attempt repair.
    def cold_single_repair():
        fresh = _lazy_engine(problem, path)
        return fresh.run([TWO_LOOP_BROKEN]).records[0].status

    assert benchmark(cold_single_repair) == "repaired"
