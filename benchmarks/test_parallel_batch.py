"""Benchmark E11 — process-parallel batch repair with counter-identity evidence.

``batch --processes N`` shards a corpus across worker subprocesses by
CFG-skeleton digest and merges the per-shard streams
(:mod:`repro.engine.parallel`).  The claim this benchmark commits evidence
for: the merged report rows and the class-local counter sections — phase
counters, trace/match/repair cache counters, retrieval counters, store
paging — are **equal** to a single-process run for N ∈ {1, 2, 4}, on a
corpus spanning two skeleton families.  The expression-level TED/compile
memo counters carry no such guarantee (one process can share entries
across skeleton classes) and are recorded as summed-only.

Deterministic identity evidence goes to ``results/parallel_batch.json``
(timing-free, byte-stable across ``PYTHONHASHSEED`` — the tier-1 CI job
regenerates and diffs it); wall-clock timings per process count go to the
gitignored ``results/local/parallel_batch_timings.json``.  The benchmarked
unit is one cold two-process run over a two-family attempt pair.
"""

from __future__ import annotations

import json
import time

from repro import Clara
from repro.core.profile import PhaseProfiler
from repro.datasets import generate_corpus, get_problem
from repro.engine import BatchAttempt, BatchRepairEngine, ProcessBatchEngine
from repro.engine.cache import RepairCaches

from conftest import bench_scale

#: Correct two-loop strategy: a second CFG-skeleton family, so the shard
#: planner has real classes to distribute.
TWO_LOOP = (
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

TWO_LOOP_BROKEN = TWO_LOOP.replace("float(i*poly[i])", "float(poly[i])")

PROCESS_COUNTS = (1, 2, 4)


def _build_store(tmp_path):
    correct, incorrect = bench_scale()
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, max(2 * correct, 30), incorrect, seed=2018)
    clara = Clara(cases=problem.cases, language=problem.language, entry=problem.entry)
    clara.add_correct_sources(list(corpus.correct_sources) + [TWO_LOOP])
    path = clara.save_clusters(tmp_path / "derivatives.json", problem="derivatives")
    attempts = [
        BatchAttempt(f"attempt-{index}", source)
        for index, source in enumerate(corpus.incorrect_sources)
    ]
    # A duplicate (warm-cache path) and the second skeleton family.
    attempts.append(BatchAttempt("duplicate-0", attempts[0].source))
    attempts.append(BatchAttempt("two-loop", TWO_LOOP_BROKEN))
    return problem, path, attempts


def _identity_sections(cache_stats, payload):
    """The four sections whose merged values must equal a single process."""
    return {
        "phases": payload["phases"]["counters"],
        "cache": cache_stats.as_dict(),
        "retrieval": payload["retrieval"],
        "store_paging": payload["store_paging"],
    }


def _rows(report):
    return [
        [r.attempt_id, r.status, r.cost, r.relative_size, r.num_modified, r.feedback]
        for r in report.records
    ]


def test_parallel_batch(benchmark, results_dir, local_results_dir, tmp_path):
    problem, path, attempts = _build_store(tmp_path)

    # Single-process baseline: one in-process engine, one thread.
    clara = Clara(
        cases=problem.cases,
        language=problem.language,
        entry=problem.entry,
        caches=RepairCaches(profiler=PhaseProfiler()),
    )
    engine = BatchRepairEngine.from_store(path, clara, workers=1)
    baseline_started = time.perf_counter()
    baseline = engine.run(attempts)
    baseline_time = time.perf_counter() - baseline_started
    expected_sections = _identity_sections(baseline.cache_stats, clara.counters_payload())
    expected_rows = _rows(baseline)

    timings = {"single_process": round(baseline_time, 4)}
    identical: dict[str, bool] = {}
    for processes in PROCESS_COUNTS:
        run_started = time.perf_counter()
        report = ProcessBatchEngine(path, processes=processes, profile=True).run(
            attempts
        )
        timings[f"processes_{processes}"] = round(time.perf_counter() - run_started, 4)
        assert _rows(report) == expected_rows, (
            f"report rows diverged from the single-process run at "
            f"{processes} processes"
        )
        merged = _identity_sections(report.cache_stats, report.profile)
        for section in expected_sections:
            same = merged[section] == expected_sections[section]
            identical[section] = identical.get(section, True) and same
            assert same, (
                f"{section} counters diverged at {processes} processes:\n"
                f"  single : {expected_sections[section]}\n"
                f"  merged : {merged[section]}"
            )

    correct, _incorrect = bench_scale()
    payload = {
        "problem": "derivatives",
        "correct_pool": max(2 * correct, 30) + 1,
        "attempts": len(attempts),
        "process_counts": list(PROCESS_COUNTS),
        "counters_identical_to_single_process": identical,
        "sections": expected_sections,
        "summed_only_sections": ["ted", "compile", "solve", "cache_entries"],
        "statuses": baseline.status_histogram(),
    }
    (results_dir / "parallel_batch.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    (local_results_dir / "parallel_batch_timings.json").write_text(
        json.dumps(timings, indent=2) + "\n", encoding="utf-8"
    )
    print("\n" + json.dumps(payload, indent=2, sort_keys=True))

    # Benchmarked unit: one cold two-process run over a two-family pair —
    # dominated by worker spawn + warm-up, the fixed cost --processes pays.
    pair = [attempts[0], BatchAttempt("two-loop-unit", TWO_LOOP_BROKEN)]

    def cold_two_process_run():
        report = ProcessBatchEngine(path, processes=2).run(pair)
        return [record.status for record in report.records]

    assert benchmark.pedantic(cold_two_process_run, rounds=1, iterations=1) == [
        expected_rows[0][1],
        "repaired",
    ]
