"""Small reusable workloads timed by the benchmark suite."""

from __future__ import annotations

from repro.baseline import AutoGrader
from repro.core.pipeline import Clara
from repro.datasets import generate_corpus, get_problem
from repro.engine import RepairCaches
from repro.frontend import parse_source

__all__ = ["single_repair_workload", "autograder_workload", "clustering_workload"]


def _small_clara(problem_name: str, n_correct: int = 12, seed: int = 5) -> tuple[Clara, object]:
    problem = get_problem(problem_name)
    corpus = generate_corpus(problem, n_correct, 1, seed=seed)
    # Caching is disabled so repeated benchmark rounds keep measuring a full
    # cold repair instead of a repair-memo hit (the engine's cached path is
    # measured separately by test_batch_throughput.py).
    clara = Clara(
        cases=problem.cases,
        language=problem.language,
        entry=problem.entry,
        caches=RepairCaches(enabled=False),
    )
    clara.add_correct_sources(corpus.correct_sources)
    return clara, corpus


def single_repair_workload(problem_name: str = "derivatives"):
    """Return a zero-argument callable performing one end-to-end repair."""
    clara, corpus = _small_clara(problem_name)
    incorrect = corpus.incorrect_sources[0]

    def run():
        return clara.repair_source(incorrect)

    return run


def autograder_workload(problem_name: str = "derivatives"):
    """Return a callable performing one AutoGrader baseline repair."""
    problem = get_problem(problem_name)
    corpus = generate_corpus(problem, 4, 1, seed=5)
    grader = AutoGrader(cases=problem.cases)
    program = parse_source(
        corpus.incorrect_sources[0], language=problem.language, entry=problem.entry
    )

    def run():
        return grader.repair(program)

    return run


def clustering_workload(problem_name: str = "derivatives", n_correct: int = 12):
    """Return a callable clustering a pool of correct solutions."""
    problem = get_problem(problem_name)
    corpus = generate_corpus(problem, n_correct, 0, seed=5)

    def run():
        clara = Clara(cases=problem.cases, language=problem.language, entry=problem.entry)
        clara.add_correct_sources(corpus.correct_sources)
        return clara.cluster_count

    return run
