"""Benchmark — the resident service's warm path vs its cold first pass.

Drives a :class:`repro.service.RepairService` (no TCP — the transport adds
nothing deterministic) through the same duplicate-heavy request stream
twice over one warm per-problem engine:

* the **cold pass**: every unique attempt pays parse, execution, matching,
  TED and the ILP — the cost a batch CLI pays on *every* invocation;
* the **warm pass**: the identical stream again — the steady state of a
  long-lived daemon, where every repair is a memo hit and zero new TED DPs
  run (the service-level restatement of the PR-1..3 cache guarantees).

Statuses must be identical between the passes, the warm pass must run zero
TED DPs and re-miss nothing in the repair memo.  Deterministic counters are
committed to ``results/service_throughput.json``; wall-clock request rates
go to the gitignored ``results/local/service_throughput_timings.json``.
The benchmarked unit is one warm request end to end (admission, dispatch,
memo hit, response assembly).
"""

from __future__ import annotations

import asyncio
import json
import time

from repro import Clara
from repro.datasets import generate_corpus, get_problem
from repro.service import RepairService

#: Each unique incorrect attempt appears this many times per pass,
#: emulating resubmissions while students iterate.
DUPLICATION = 4


def _request_lines(sources):
    return [
        json.dumps(
            {"op": "repair", "problem": "derivatives", "source": source, "id": index}
        )
        for index, source in enumerate(sources)
    ]


def _drive(service, lines):
    """Send all requests sequentially on one event loop (deterministic
    counters need single-flight execution; concurrency is measured by the
    engine benchmark, not here)."""

    async def run():
        return [await service.handle_line(line) for line in lines]

    return asyncio.run(run())


def _counter_delta(before: dict, after: dict) -> dict:
    return {key: after[key] - before[key] for key in after if isinstance(after[key], int)}


def test_service_throughput(benchmark, results_dir, local_results_dir, tmp_path):
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 12, 6, seed=2018)
    store_path = tmp_path / "derivatives.json"
    builder = Clara(cases=problem.cases, language=problem.language, entry=problem.entry)
    builder.add_correct_sources(corpus.correct_sources)
    builder.save_clusters(store_path, problem=problem.name)

    service = RepairService(workers=1)
    runtime = service.add_problem(store_path)
    lines = _request_lines(list(corpus.incorrect_sources) * DUPLICATION)

    cold_cache_before = runtime.caches.stats.as_dict()
    cold_ted_before = runtime.caches.ted.counters()
    started = time.perf_counter()
    cold_responses = _drive(service, lines)
    cold_time = time.perf_counter() - started
    cold_cache = _counter_delta(cold_cache_before, runtime.caches.stats.as_dict())
    cold_ted = _counter_delta(cold_ted_before, runtime.caches.ted.counters())

    warm_cache_before = runtime.caches.stats.as_dict()
    warm_ted_before = runtime.caches.ted.counters()
    started = time.perf_counter()
    warm_responses = _drive(service, lines)
    warm_time = time.perf_counter() - started
    warm_cache = _counter_delta(warm_cache_before, runtime.caches.stats.as_dict())
    warm_ted = _counter_delta(warm_ted_before, runtime.caches.ted.counters())

    # The daemon's reason to exist: the second pass is pure memo traffic.
    assert [r["status"] for r in warm_responses] == [r["status"] for r in cold_responses]
    assert all(response["ok"] for response in cold_responses)
    assert cold_ted["dp_runs"] > 0
    assert warm_ted["dp_runs"] == 0, f"warm pass ran {warm_ted['dp_runs']} TED DPs"
    assert warm_cache["repair_misses"] == 0
    assert warm_cache["repair_hits"] == len(lines)

    histogram: dict[str, int] = {}
    for response in cold_responses:
        histogram[response["status"]] = histogram.get(response["status"], 0) + 1

    payload = {
        "problem": problem.name,
        "requests_per_pass": len(lines),
        "unique_attempts": len(corpus.incorrect_sources),
        "duplication": DUPLICATION,
        "clusters": runtime.snapshot().engine.clara.cluster_count,
        "store_revision": runtime.revision,
        "status_histogram": dict(sorted(histogram.items())),
        "cold": {"cache": cold_cache, "ted": cold_ted},
        "warm": {"cache": warm_cache, "ted": warm_ted},
    }
    (results_dir / "service_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print("\n" + json.dumps(payload, indent=2))

    timings = {
        "cold_seconds": round(cold_time, 6),
        "warm_seconds": round(warm_time, 6),
        "cold_requests_per_second": round(len(lines) / cold_time, 3) if cold_time else None,
        "warm_requests_per_second": round(len(lines) / warm_time, 3) if warm_time else None,
    }
    (local_results_dir / "service_throughput_timings.json").write_text(
        json.dumps(timings, indent=2) + "\n"
    )

    # Steady-state benchmarked unit: one warm request through the service.
    line = lines[0]
    benchmark(lambda: asyncio.run(service.handle_line(line)))
    service.close()
