"""Benchmark E6 — repair quality proxy (§6.2, result (3)).

The paper's authors manually inspected 100 random repairs and judged 81% to
be small, natural repairs.  Without human inspection we use an automated
proxy: a repair counts as good quality when the repaired program passes the
full test suite and the relative repair size stays below 0.35.  The benchmark
times the proxy computation; the assertions check the shape (a large majority
of repairs are good quality, and essentially all repaired programs pass the
tests, as guaranteed by Theorem 5.3 over the test inputs).
"""

from __future__ import annotations

import json

from repro.evalharness import quality_proxy


def test_quality_proxy(benchmark, mooc_results, results_dir):
    proxy = benchmark(quality_proxy, mooc_results)

    (results_dir / "quality_proxy.json").write_text(json.dumps(proxy, indent=2) + "\n")
    print("\nquality proxy:", proxy)

    assert proxy["total"] > 0
    # Paper: 81% good-quality repairs.
    assert proxy["good_quality"] >= 0.6
    # Soundness over the test inputs: repaired programs pass the tests.
    assert proxy["passes"] >= 0.95
    # Trivial whole-program rewrites are rare.
    assert proxy["large_rewrite"] <= 0.25
