"""Benchmark E1 — Table 1: MOOC evaluation (repair rates, cluster counts, times).

Regenerates the per-problem rows of Table 1 (Clara vs the AutoGrader-style
baseline) on the synthetic corpus and writes them to ``results/table1.txt``.
The benchmarked unit is one end-to-end repair of an incorrect ``derivatives``
attempt (the paper's headline "3.2 s on average" measurement).
"""

from __future__ import annotations

from _workloads import single_repair_workload

from repro.evalharness import format_failure_breakdown, format_table1


def test_table1_mooc(benchmark, mooc_results, results_dir, local_results_dir):
    run = single_repair_workload("derivatives")
    outcome = benchmark(run)
    assert outcome.status in ("repaired", "no-structural-match", "unsupported")

    # Committed artifact is timing-free so it stays byte-stable across
    # machines; the timed variant is written to the gitignored local report.
    breakdown = format_failure_breakdown(mooc_results)
    table = format_table1(mooc_results, with_autograder=True, with_times=False)
    (results_dir / "table1.txt").write_text(table + "\n\n" + breakdown + "\n")
    timed_table = format_table1(mooc_results, with_autograder=True)
    (local_results_dir / "table1_timed.txt").write_text(
        timed_table + "\n\n" + breakdown + "\n"
    )
    print("\n" + timed_table + "\n" + breakdown)

    total_incorrect = sum(r.n_incorrect for r in mooc_results)
    total_repaired = sum(r.n_repaired for r in mooc_results)
    total_ag = sum(r.n_autograder_repaired for r in mooc_results)

    # Shape of Table 1: Clara repairs the overwhelming majority of attempts
    # (97.44% in the paper), far more than the error-model baseline (19.29%).
    assert total_incorrect > 0
    assert total_repaired / total_incorrect >= 0.75
    assert total_repaired > total_ag
    # Every problem produces more than one cluster of correct solutions.
    assert all(r.n_clusters >= 2 for r in mooc_results)
    # Repairs are generated at interactive speed (paper: 3.2 s average on a
    # 2012-era server; our corpus and machine are smaller/faster).
    assert all(r.avg_time < 30.0 for r in mooc_results)
