"""Benchmark E11 — nearest-cluster retrieval prefilter for the repair path.

``repro.retrieval`` derives a deterministic integer feature vector per
program and uses it to order candidate clusters nearest-first and cut the
CFG shapes that provably cannot pass the Def. 4.1 structural test.  The
exact matcher still decides every repair, so outcomes are field-identical
with the prefilter on or off; what changes is how many structural-match
computations a batch pays.

The workload widens the derivatives pool with hand-written correct
strategies of *distinct* CFG shapes (guard-first, while-loop, two-loop,
in-loop guard, ...) so the store holds many shapes while the generated
incorrect attempts concentrate on one — the regime the prefilter targets.
Gate: the prefilter-off run must perform at least
:data:`MATCH_REDUCTION_THRESHOLD` times the structural-match computations
of the prefilter-on run, with every repair record identical.

Committed metrics (``results/retrieval_throughput.json``) are counters
only — deterministic for the seeded corpus, independent of machine and
``PYTHONHASHSEED``.  Wall-clock timings go to the gitignored
``results/local/retrieval_throughput_timings.json``.  The benchmarked
steady-state unit is one candidate ranking (vector + top-k ordering), the
per-repair overhead the prefilter adds.
"""

from __future__ import annotations

import json
import time

from repro import Clara
from repro.datasets import generate_corpus, get_problem
from repro.engine import BatchRepairEngine
from repro.retrieval import (
    DEFAULT_TOP_K,
    cluster_feature_vector,
    feature_vector,
    ranked_candidates,
)

from conftest import bench_scale

#: Reduction gate: prefilter-off must run at least this multiple of the
#: prefilter-on structural-match computations.
MATCH_REDUCTION_THRESHOLD = 2.0

#: Correct computeDeriv strategies with pairwise-distinct CFG skeletons.
#: Locations track loop structure (conditions fold into a location's exit
#: guards), so distinct shapes mean distinct *loop* structure: sequential
#: loop chains of different lengths and nested accumulation.  The
#: generated corpus only emits the single-loop family, so each shape here
#: widens the store by clusters that single-loop attempts can provably
#: never match.
SHAPE_VARIANTS = [
    # Two sequential for-loops.
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n",
    # For-loop feeding a while-loop copy (same two-loop shape, different
    # dynamic behaviour: a second cluster behind one skeleton).
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    result = []\n"
    "    j = 1\n"
    "    while j < len(new):\n"
    "        result.append(new[j])\n"
    "        j = j + 1\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n",
    # Three sequential loops: scale, shift, count.
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    count = 0\n"
    "    for k in range(len(result)):\n"
    "        count = count + 1\n"
    "    if count == 0:\n"
    "        return [0.0]\n"
    "    return result\n",
    # Nested accumulation: i*poly[i] as i repeated additions.
    "def computeDeriv(poly):\n"
    "    result = []\n"
    "    for i in range(1, len(poly)):\n"
    "        term = 0.0\n"
    "        for j in range(i):\n"
    "            term = term + poly[i]\n"
    "        result.append(term)\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n",
    # Nested accumulation followed by a flat copy loop.
    "def computeDeriv(poly):\n"
    "    result = []\n"
    "    for i in range(1, len(poly)):\n"
    "        term = 0.0\n"
    "        for j in range(i):\n"
    "            term = term + poly[i]\n"
    "        result.append(term)\n"
    "    out = []\n"
    "    for k in range(len(result)):\n"
    "        out.append(float(result[k]))\n"
    "    if out == []:\n"
    "        return [0.0]\n"
    "    return out\n",
    # Flat copy loop followed by nested accumulation.
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(poly[i])\n"
    "    result = []\n"
    "    for i in range(1, len(new)):\n"
    "        term = 0.0\n"
    "        for j in range(i):\n"
    "            term = term + new[i]\n"
    "        result.append(term)\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n",
    # Four sequential loops: scale, shift, copy, count.
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    tmp = []\n"
    "    for j in range(1, len(new)):\n"
    "        tmp.append(new[j])\n"
    "    result = []\n"
    "    for k in range(len(tmp)):\n"
    "        result.append(tmp[k])\n"
    "    flag = 0\n"
    "    for m in range(len(result)):\n"
    "        flag = flag + 1\n"
    "    if flag == 0:\n"
    "        return [0.0]\n"
    "    return result\n",
]


def _run(problem, corpus, *, prefilter):
    """Build clusters and repair the incorrect batch; return the pieces the
    gate needs, including the repair-phase structural-match computations."""
    clara = Clara(
        cases=problem.cases,
        language=problem.language,
        entry=problem.entry,
        retrieval_prefilter=prefilter,
    )
    build_started = time.perf_counter()
    clara.add_correct_sources(list(corpus.correct_sources) + SHAPE_VARIANTS)
    build_time = time.perf_counter() - build_started
    built = clara.caches.stats.snapshot()
    repair_started = time.perf_counter()
    report = BatchRepairEngine(clara, workers=1).run(corpus.incorrect_sources)
    repair_time = time.perf_counter() - repair_started
    match_computations = clara.caches.stats.match_misses - built.match_misses
    return clara, report, match_computations, build_time, repair_time


def _rows(report):
    return [
        (r.status, r.cost, r.relative_size, r.num_modified, r.feedback)
        for r in report.records
    ]


def test_retrieval_throughput(benchmark, results_dir, local_results_dir):
    correct, incorrect = bench_scale()
    problem = get_problem("derivatives")
    # Half-scale generated pool: the generated family all shares one CFG
    # shape, so an oversized pool only deepens the one shape the prefilter
    # must keep, diluting the many-shapes regime this benchmark measures.
    corpus = generate_corpus(problem, max(8, correct // 2), incorrect, seed=2018)

    off = _run(problem, corpus, prefilter=False)
    on = _run(problem, corpus, prefilter=True)
    off_clara, off_report, off_matches = off[0], off[1], off[2]
    on_clara, on_report, on_matches = on[0], on[1], on[2]

    # The prefilter must not change a single field of a single record.
    assert _rows(on_report) == _rows(off_report)
    assert on_clara.cluster_count == off_clara.cluster_count

    assert off_matches > 0
    reduction = off_matches / max(1, on_matches)
    assert reduction >= MATCH_REDUCTION_THRESHOLD, (
        f"prefilter-on ran {on_matches} structural matches vs {off_matches} "
        f"baseline ({reduction:.2f}x < {MATCH_REDUCTION_THRESHOLD}x reduction)"
    )

    counters = on_clara.caches.retrieval.as_dict()
    assert counters["candidates_ranked"] > 0
    assert counters["matches_skipped"] > 0
    assert off_clara.caches.retrieval.as_dict() == {
        "candidates_ranked": 0,
        "matches_attempted": 0,
        "matches_skipped": 0,
        "fallbacks": 0,
    }

    payload = {
        "problem": problem.name,
        "correct_pool": len(corpus.correct_sources) + len(SHAPE_VARIANTS),
        "shape_variants": len(SHAPE_VARIANTS),
        "incorrect_batch": len(corpus.incorrect_sources),
        "clusters": on_clara.cluster_count,
        "top_k": DEFAULT_TOP_K,
        "match_reduction_threshold": MATCH_REDUCTION_THRESHOLD,
        "match_reduction": round(reduction, 2),
        "match_computations_prefilter_off": off_matches,
        "match_computations_prefilter_on": on_matches,
        "retrieval": counters,
        "batch_statuses": {
            status: count for status, count in on_report.status_histogram().items()
        },
    }
    (results_dir / "retrieval_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    (local_results_dir / "retrieval_throughput_timings.json").write_text(
        json.dumps(
            {
                "build_time_off": round(off[3], 4),
                "build_time_on": round(on[3], 4),
                "repair_time_off": round(off[4], 4),
                "repair_time_on": round(on[4], 4),
            },
            indent=2,
        )
        + "\n"
    )
    print("\n" + json.dumps(payload, indent=2))

    # Steady-state unit: the per-repair overhead the prefilter adds — one
    # feature vector plus one top-k ranking over the full cluster list.
    clusters = on_clara.clusters
    attempt = on_clara.parse(corpus.incorrect_sources[0])

    def rank_once():
        return ranked_candidates(
            feature_vector(attempt),
            clusters,
            cluster_feature_vector,
            top_k=DEFAULT_TOP_K,
        )

    assert len(benchmark(rank_once)) == len(clusters)
