"""Benchmark E9 — clustering throughput with fingerprint pruning on vs. off.

Clustering is the front half of the pipeline (§4, Def. 4.7) and the build
step of every cluster store.  The exhaustive procedure attempts the full
dynamic match of Fig. 4 against every existing representative; the pruned
procedure (:mod:`repro.clusterstore.fingerprint`) only attempts it inside a
program's fingerprint bucket.  On a widened generated corpus this benchmark
checks that

* pruning never changes the result — identical cluster ids, sizes and
  expression pools (provenance included) per problem;
* the pruned build runs **at least 2× fewer** full ``find_matching`` calls
  than the exhaustive build, aggregated over the corpus.

Deterministic counts (match attempts and attempts saved, bucket counts and
sizes, cluster counts) are committed to ``results/clustering_scale.json``;
machine-dependent wall-clock numbers go to the gitignored
``results/local/clustering_scale_timings.json``.  The benchmarked unit is
one pruned single-threaded cluster build of the widest corpus.
"""

from __future__ import annotations

import json
import time

from repro.core.clustering import cluster_programs
from repro.datasets import generate_corpus, get_problem
from repro.frontend import parse_source

from conftest import bench_scale

#: Problems of the MOOC experiment, clustered at a widened scale.
PROBLEMS = ["derivatives", "oddTuples", "polynomials"]

#: Minimum aggregate reduction in full dynamic-match calls.
PRUNING_THRESHOLD = 2.0


def _widened_correct_pool() -> int:
    correct, _incorrect = bench_scale()
    return max(2 * correct, 30)


def _parse_pool(problem, sources):
    return [
        parse_source(source, language=problem.language, entry=problem.entry)
        for source in sources
    ]


def test_clustering_scale(benchmark, results_dir, local_results_dir):
    n_correct = _widened_correct_pool()
    per_problem = []
    timings = []
    total_exhaustive = 0
    total_pruned = 0
    widest = None

    for problem_name in PROBLEMS:
        problem = get_problem(problem_name)
        corpus = generate_corpus(problem, n_correct, 0, seed=2018)

        # Both arms disable the retrieval prefilter (benchmark E11 measures
        # it separately) so the committed counts isolate what *fingerprint
        # pruning* alone saves.
        started = time.perf_counter()
        exhaustive = cluster_programs(
            _parse_pool(problem, corpus.correct_sources),
            problem.cases,
            prune=False,
            prefilter=False,
        )
        exhaustive_time = time.perf_counter() - started

        started = time.perf_counter()
        pruned = cluster_programs(
            _parse_pool(problem, corpus.correct_sources),
            problem.cases,
            prune=True,
            prefilter=False,
        )
        pruned_time = time.perf_counter() - started

        # Pruning must be invisible in the result.
        assert pruned.signature() == exhaustive.signature()
        assert pruned.failures == exhaustive.failures

        total_exhaustive += exhaustive.stats.full_matches
        total_pruned += pruned.stats.full_matches
        per_problem.append(
            {
                "problem": problem.name,
                "correct_pool": pruned.stats.programs,
                "clusters": pruned.stats.clusters,
                "fingerprint_buckets": pruned.stats.buckets,
                "bucket_sizes": pruned.stats.bucket_sizes,
                "full_matches_exhaustive": exhaustive.stats.full_matches,
                "full_matches_pruned": pruned.stats.full_matches,
                "match_attempts_saved": exhaustive.stats.full_matches
                - pruned.stats.full_matches,
            }
        )
        timings.append(
            {
                "problem": problem.name,
                "exhaustive_time": round(exhaustive_time, 4),
                "pruned_time": round(pruned_time, 4),
            }
        )
        if widest is None or pruned.stats.programs > widest[1]:
            widest = (problem, pruned.stats.programs, corpus)

    reduction = (
        total_exhaustive / total_pruned if total_pruned else float(total_exhaustive)
    )
    payload = {
        "correct_pool_per_problem": n_correct,
        "pruning_threshold": PRUNING_THRESHOLD,
        "full_matches_exhaustive": total_exhaustive,
        "full_matches_pruned": total_pruned,
        "match_attempts_saved": total_exhaustive - total_pruned,
        "match_reduction": round(reduction, 3),
        "problems": per_problem,
    }
    (results_dir / "clustering_scale.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    (local_results_dir / "clustering_scale_timings.json").write_text(
        json.dumps({"problems": timings}, indent=2) + "\n"
    )
    print("\n" + json.dumps(payload, indent=2))

    assert reduction >= PRUNING_THRESHOLD, (
        f"fingerprint pruning reduced full matches only {reduction:.2f}x "
        f"(exhaustive {total_exhaustive} -> pruned {total_pruned}), "
        f"below the {PRUNING_THRESHOLD}x bar"
    )

    # Steady-state unit: one pruned cluster build of the widest pool.
    problem, _size, corpus = widest
    programs = _parse_pool(problem, corpus.correct_sources)
    result = benchmark(
        lambda: cluster_programs(
            programs, problem.cases, prune=True, prefilter=False
        )
    )
    assert result.cluster_count == next(
        entry["clusters"]
        for entry in per_problem
        if entry["problem"] == problem.name
    )
