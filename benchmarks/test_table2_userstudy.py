"""Benchmark E5 — Table 2: the (simulated) user study on six C problems.

Reproduces the measurable columns of Table 2 — attempt/cluster counts,
feedback rate (paper: 88.52% overall), repair-based vs generic feedback, and
feedback latency (paper: 8 s average, 60 s timeout) — and the simulated
usefulness-grade histogram (paper average: 3.4).  The benchmarked unit is one
end-to-end repair of an incorrect C attempt (``special_number``).
"""

from __future__ import annotations

from _workloads import single_repair_workload

from repro.evalharness import format_table2


def test_table2_user_study(benchmark, user_study_rows, results_dir, local_results_dir):
    run = single_repair_workload("special_number")
    benchmark(run)

    # Committed artifact is timing-free; the timed variant goes to the
    # gitignored local report (same split as Table 1).
    table = format_table2(user_study_rows, with_times=False)
    (results_dir / "table2_userstudy.txt").write_text(table + "\n")
    timed_table = format_table2(user_study_rows)
    (local_results_dir / "table2_userstudy_timed.txt").write_text(timed_table + "\n")
    print("\n" + timed_table)

    assert len(user_study_rows) == 6
    total_incorrect = sum(r.n_incorrect for r in user_study_rows)
    total_feedback = sum(r.n_feedback for r in user_study_rows)
    assert total_incorrect > 0
    # Shape: feedback is generated for the large majority of attempts
    # (88.52% in the paper) and is mostly repair-based rather than generic.
    assert total_feedback / total_incorrect >= 0.6
    repair_feedback = sum(r.n_repair_feedback for r in user_study_rows)
    assert repair_feedback >= 0.5 * total_feedback
    # Interactive latency: well under the 60 s timeout on every problem.
    assert all(r.avg_time < 60.0 for r in user_study_rows)
    # The simulated usefulness grade lands in the paper's ballpark (3.4).
    grades = [r.average_grade for r in user_study_rows if sum(r.grade_histogram.values())]
    assert grades
    overall = sum(grades) / len(grades)
    assert 2.0 <= overall <= 5.0
