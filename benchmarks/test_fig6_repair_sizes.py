"""Benchmark E2 — Figure 6: histogram of relative repair sizes.

The paper reports that 68% of repairs have relative size < 0.3 (53% < 0.2,
25% < 0.1), i.e. Clara's repairs are overwhelmingly small, targeted changes
rather than wholesale rewrites.  The benchmarked unit is the metric
computation itself over the Table-1 experiment results.
"""

from __future__ import annotations

from repro.evalharness import (
    cumulative_fraction_below,
    relative_size_histogram,
    render_fig6,
)


def test_fig6_relative_repair_sizes(benchmark, mooc_results, results_dir):
    histogram = benchmark(relative_size_histogram, mooc_results)

    figure = render_fig6(mooc_results)
    (results_dir / "fig6_relative_repair_sizes.txt").write_text(figure + "\n")
    print("\n" + figure)

    total = sum(histogram.values())
    assert total > 0
    # Shape: the distribution is dominated by small repairs.
    assert cumulative_fraction_below(mooc_results, 0.3) >= 0.6
    assert cumulative_fraction_below(mooc_results, 0.2) >= cumulative_fraction_below(
        mooc_results, 0.1
    )
    # Nothing larger than the whole program (trivial repairs are not chosen).
    assert histogram[">1.0"] <= total * 0.1
