"""Benchmark E7 — expression provenance across cluster members (§6.2 "Clusters").

The paper reports that around 50% of repairs combine expressions from at
least two different correct solutions of the same cluster, and ~3% from at
least three — the pay-off of clustering (diversity of repairs).  We measure
the same statistic over the synthetic corpus; with a much smaller correct
pool the fractions are lower, but multi-member repairs must exist.
"""

from __future__ import annotations

import json

from repro.evalharness import provenance_statistics


def test_cluster_provenance(benchmark, mooc_results, results_dir):
    stats = benchmark(provenance_statistics, mooc_results)

    (results_dir / "cluster_provenance.json").write_text(json.dumps(stats, indent=2) + "\n")
    print("\nprovenance statistics:", stats)

    assert stats["total"] > 0
    assert 0.0 <= stats["at_least_three"] <= stats["at_least_two"] <= 1.0
