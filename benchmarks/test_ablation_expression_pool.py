"""Ablation A1 — cluster expression pools vs representative-only repair.

§2.1 motivates clustering with two benefits; the second is *diversity of
repairs*: the repair algorithm may take expressions from any member of the
cluster, not just the representative.  This ablation repairs the same
incorrect attempts with the pool restricted to the representative's own
expressions and checks that the full pool never produces costlier repairs
(and typically produces cheaper ones).
"""

from __future__ import annotations

import json

from repro.evalharness import run_problem


def _run(use_pool: bool):
    return run_problem(
        "derivatives",
        n_correct=14,
        n_incorrect=8,
        seed=77,
        run_autograder=False,
        use_cluster_expressions=use_pool,
    )


def test_ablation_expression_pool(benchmark, results_dir):
    with_pool = _run(True)
    without_pool = benchmark.pedantic(_run, args=(False,), rounds=1, iterations=1)

    costs_with = {
        i: a.cost for i, a in enumerate(with_pool.attempts) if a.cost is not None
    }
    costs_without = {
        i: a.cost for i, a in enumerate(without_pool.attempts) if a.cost is not None
    }
    summary = {
        "repaired_with_pool": with_pool.n_repaired,
        "repaired_without_pool": without_pool.n_repaired,
        "avg_cost_with_pool": sum(costs_with.values()) / len(costs_with) if costs_with else 0,
        "avg_cost_without_pool": sum(costs_without.values()) / len(costs_without)
        if costs_without
        else 0,
    }
    (results_dir / "ablation_expression_pool.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    print("\nexpression-pool ablation:", summary)

    # The full pool can only help: repair rate never drops and, on attempts
    # repaired by both configurations, the cost with the pool is never higher.
    assert with_pool.n_repaired >= without_pool.n_repaired
    for index in costs_with.keys() & costs_without.keys():
        assert costs_with[index] <= costs_without[index] + 1e-9
