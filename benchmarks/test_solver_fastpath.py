"""Benchmark — the ILP solver fast path vs plain branch-and-bound.

Collects every repair-selection ILP (paper Def. 5.5) a resubmission stream
of incorrect attempts would pose — each attempt matched against each
structurally compatible cluster, with every attempt submitted twice, as
students resubmit — and solves the stream three ways:

* the **baseline**: :func:`repro.ilp.solver.solve` — one cold
  branch-and-bound per problem occurrence (the pre-fast-path behaviour,
  kept as the executable specification);
* the **fast path**: :func:`repro.ilp.solve_fast` with a shared
  :class:`repro.ilp.SolveCache` — canonical-fingerprint memoisation plus
  degenerate dispatch of pure assignment instances to the min-cost
  bipartite matcher (:func:`repro.graphs.min_cost_perfect_matching`);
* the **warm-started path**: per attempt, the best objective over earlier
  clusters bounds each later solve (the ``cost_bound`` threading of
  :func:`repro.core.repair.find_best_repair`), pruning branches that
  cannot win.

Every fast-path outcome must be objective-identical to the baseline, and
the warm-started per-attempt winners must equal the baseline winners.  The
fast path must explore at most 1/NODE_REDUCTION_THRESHOLD of the baseline's
branch-and-bound nodes.  All committed metrics are counters — deterministic
for the seeded corpus, independent of hash seed and machine — written to
``results/solver_fastpath.json``; wall-clock timings go to the gitignored
``results/local/solver_fastpath_timings.json``.
"""

from __future__ import annotations

import json
import time

from repro.core.clustering import cluster_programs
from repro.core.localrepair import generate_local_repairs
from repro.core.matching import structural_match
from repro.core.repair import _build_ilp
from repro.datasets import generate_corpus, get_problem
from repro.frontend import parse_python_source
from repro.ilp import InfeasibleError, SolveCache, solve, solve_fast

#: Reduction gate: the fast path must explore at most
#: 1/NODE_REDUCTION_THRESHOLD of the baseline's branch-and-bound nodes.
NODE_REDUCTION_THRESHOLD = 2.0


def _objective_and_nodes(solve_once):
    """Run one solve; return ``(objective | None, nodes_explored)``."""
    try:
        solution = solve_once()
    except InfeasibleError as error:
        return None, error.nodes_explored
    if solution is None:  # bounded fast-path solve that cannot beat the bound
        return None, 0
    return solution.objective, solution.nodes_explored


def _collect_problem_stream():
    """The (attempt, cluster) ILPs of a duplicated-attempt derivatives run.

    Returns a list of per-attempt lists of problems, clusters visited in
    :func:`find_best_repair`'s deterministic order.
    """
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 14, 8, seed=2018)
    correct = [parse_python_source(s) for s in corpus.correct_sources]
    clusters = cluster_programs(correct, problem.cases).clusters
    ordered = sorted(clusters, key=lambda c: (-c.size, c.cluster_id))

    attempts = [parse_python_source(s) for s in corpus.incorrect_sources]
    attempts = attempts + attempts  # the resubmission stream
    stream = []
    for attempt in attempts:
        per_attempt = []
        for cluster in ordered:
            location_map = structural_match(attempt, cluster.representative)
            if location_map is None:
                continue
            candidates = generate_local_repairs(attempt, cluster, location_map)
            ilp, _ = _build_ilp(attempt, cluster, candidates)
            per_attempt.append(ilp)
        stream.append(per_attempt)
    return problem.name, stream


def test_solver_fastpath(benchmark, results_dir, local_results_dir):
    problem_name, stream = _collect_problem_stream()
    flat = [ilp for per_attempt in stream for ilp in per_attempt]
    assert flat, "the corpus must pose at least one repair ILP"

    # Baseline pass: one cold branch-and-bound per problem occurrence.
    baseline_started = time.perf_counter()
    baseline = [_objective_and_nodes(lambda p=p: solve(p)) for p in flat]
    baseline_elapsed = time.perf_counter() - baseline_started
    baseline_nodes = sum(nodes for _, nodes in baseline)

    # Fast-path pass: shared memo + degenerate dispatch over the same stream.
    cache = SolveCache()
    fast_started = time.perf_counter()
    fast = [_objective_and_nodes(lambda p=p: solve_fast(p, cache=cache)) for p in flat]
    fast_elapsed = time.perf_counter() - fast_started

    # Objective identity, problem for problem (infeasibility included).
    assert [objective for objective, _ in fast] == [
        objective for objective, _ in baseline
    ]
    counters = cache.counters()
    fast_nodes = counters["nodes_explored"]
    assert sum(nodes for _, nodes in fast) == fast_nodes
    assert counters["hits"] + counters["misses"] == len(flat)
    assert counters["hits"] >= len(flat) // 2  # the duplicated half memoises
    node_reduction = baseline_nodes / max(1, fast_nodes)
    assert node_reduction >= NODE_REDUCTION_THRESHOLD, (
        f"fast path explored {fast_nodes} nodes vs {baseline_nodes} baseline "
        f"({node_reduction:.2f}x < {NODE_REDUCTION_THRESHOLD}x reduction)"
    )

    # Warm-started pass: thread the per-attempt best objective into each
    # later cluster's solve, exactly as find_best_repair's cost_bound does.
    # The per-attempt winner must match the baseline winner.
    warm_nodes = 0
    index = 0
    warm_started = time.perf_counter()
    for per_attempt in stream:
        best = None
        baseline_best = None
        for ilp in per_attempt:
            objective, nodes = _objective_and_nodes(
                lambda: solve_fast(ilp, upper_bound=best)
            )
            warm_nodes += nodes
            if objective is not None and (best is None or objective < best):
                best = objective
            ref_objective, _ = baseline[index]
            index += 1
            if ref_objective is not None and (
                baseline_best is None or ref_objective < baseline_best
            ):
                baseline_best = ref_objective
        assert best == baseline_best
    warm_elapsed = time.perf_counter() - warm_started
    assert warm_nodes <= baseline_nodes

    # Committed artifact: counters only — deterministic for the seeded corpus
    # and identical on every machine and hash seed.
    payload = {
        "problem": problem_name,
        "attempts": len(stream),
        "problems_posed": len(flat),
        "node_reduction_threshold": NODE_REDUCTION_THRESHOLD,
        "baseline_nodes": baseline_nodes,
        "fastpath_nodes": fast_nodes,
        "node_reduction": round(node_reduction, 2),
        "warm_start_nodes": warm_nodes,
        "solve_cache": counters,
        "infeasible_problems": sum(
            1 for objective, _ in baseline if objective is None
        ),
    }
    (results_dir / "solver_fastpath.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print("\n" + json.dumps(payload, indent=2))

    timings = {
        "baseline_pass_seconds": round(baseline_elapsed, 6),
        "fastpath_pass_seconds": round(fast_elapsed, 6),
        "warm_start_pass_seconds": round(warm_elapsed, 6),
        "fastpath_speedup": round(baseline_elapsed / max(fast_elapsed, 1e-9), 2),
    }
    (local_results_dir / "solver_fastpath_timings.json").write_text(
        json.dumps(timings, indent=2) + "\n"
    )

    # Benchmarked unit: re-solving the full problem stream against a warm
    # memo (the steady state a long-lived service runs in).
    benchmark(
        lambda: [_objective_and_nodes(lambda p=p: solve_fast(p, cache=cache)) for p in flat]
    )
