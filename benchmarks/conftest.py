"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper.  The heavy
experiments are run once per session (module fixtures below) at a reduced
scale; the ``benchmark`` fixture then times a representative unit of work
(one clustering pass, one repair, one rendering) so that pytest-benchmark's
statistics remain meaningful without re-running multi-minute experiments.

Scale can be increased via environment variables::

    REPRO_BENCH_CORRECT=120 REPRO_BENCH_INCORRECT=60 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evalharness import run_experiment, run_user_study  # noqa: E402


def bench_scale() -> tuple[int, int]:
    """(correct, incorrect) pool sizes per problem for benchmark runs."""
    correct = int(os.environ.get("REPRO_BENCH_CORRECT", "18"))
    incorrect = int(os.environ.get("REPRO_BENCH_INCORRECT", "10"))
    return correct, incorrect


RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Committed artifacts: deterministic, machine-independent metrics only.

    Wall-clock timings churn on every machine and load level, so they are
    never written here — see :func:`local_results_dir`.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def local_results_dir() -> Path:
    """Local-only (gitignored) report directory for wall-clock timings."""
    local = RESULTS_DIR / "local"
    local.mkdir(parents=True, exist_ok=True)
    return local


@pytest.fixture(scope="session")
def mooc_results():
    """Table 1 / Fig. 6 / Fig. 7 experiment: the three MOOC problems, with the
    AutoGrader baseline, at benchmark scale."""
    correct, incorrect = bench_scale()
    return run_experiment(
        ["derivatives", "oddTuples", "polynomials"],
        n_correct=correct,
        n_incorrect=incorrect,
        seed=2018,
        run_autograder=True,
    )


@pytest.fixture(scope="session")
def user_study_rows():
    """Table 2 experiment: the six C user-study problems."""
    correct, incorrect = bench_scale()
    return run_user_study(
        n_correct=max(8, correct // 2),
        n_incorrect=max(5, incorrect // 2),
        seed=2018,
    )
