"""Benchmark — the execution fast path vs the interpreted reference executor.

Executes every program of a seeded corpus (correct pool + incorrect
attempts) on every test case twice:

* the **baseline**: :func:`repro.interpreter.executor.execute_interpreted`
  — every expression re-walked through the recursive evaluator on every
  visit, the full memory dict copied twice per step (the pre-fast-path
  behaviour, kept as the executable specification of Def. 3.5);
* the **fast path**: :func:`repro.interpreter.executor.execute` — update
  expressions compiled to closures once per program through a shared
  :class:`~repro.interpreter.compile.CompileCache`, copy-on-write trace
  memories recording only the variables each location wrote.

Traces must be field-identical between the two paths (location sequences,
aborted flags, every pre/post memory), and repair outcomes driven through
the compiled candidate screening must be field-identical to the
interpreted screening.  The fast path must write at most half the dict
entries the baseline copies (in practice far fewer: a location writes one
or two of a dozen live variables).  All committed metrics are counters —
deterministic for the seeded corpus, independent of hash seed and machine
— written to ``results/exec_throughput.json``; wall-clock timings go to
the gitignored ``results/local/exec_throughput_timings.json``.
"""

from __future__ import annotations

import json
import time

from repro.core.clustering import cluster_programs
from repro.core.repair import find_best_repair
from repro.datasets import generate_corpus, get_problem
from repro.engine import RepairCaches
from repro.frontend import parse_python_source
from repro.interpreter.compile import CompileCache
from repro.interpreter.executor import ExecutionPlan, execute, execute_interpreted

#: Reduction gate: the fast path must write at most
#: 1/COPY_REDUCTION_THRESHOLD of the dict entries the baseline copies.
COPY_REDUCTION_THRESHOLD = 2.0


def _assert_traces_identical(fast, reference):
    assert fast.aborted == reference.aborted
    assert fast.location_sequence == reference.location_sequence
    for fast_step, ref_step in zip(fast.steps, reference.steps):
        assert dict(fast_step.pre) == dict(ref_step.pre)
        assert dict(fast_step.post) == dict(ref_step.post)


def _repair_fields(repair):
    return repair.comparable_fields() if repair is not None else None


def test_exec_throughput(benchmark, results_dir, local_results_dir):
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 16, 10, seed=2018)
    sources = corpus.correct_sources + corpus.incorrect_sources
    programs = [parse_python_source(source) for source in sources]
    cases = problem.cases

    # Baseline pass: interpreted evaluation, full dict snapshots.
    interpreted_started = time.perf_counter()
    interpreted_traces = [
        [execute_interpreted(program, case.memory_for(program)) for case in cases]
        for program in programs
    ]
    interpreted_elapsed = time.perf_counter() - interpreted_started

    # Fast-path pass: one shared compile cache, one plan per program.  The
    # cold pass pays one-time compilation; the warm pass (plans prebuilt,
    # cache hot) is the steady state a long-lived engine runs in.
    compile_cache = CompileCache()
    compiled_started = time.perf_counter()
    plans = [
        ExecutionPlan.for_program(program, cache=compile_cache)
        for program in programs
    ]
    compiled_traces = [
        [execute(program, case.memory_for(program), plan=plan) for case in cases]
        for program, plan in zip(programs, plans)
    ]
    compiled_cold_elapsed = time.perf_counter() - compiled_started
    warm_started = time.perf_counter()
    for program, plan in zip(programs, plans):
        for case in cases:
            execute(program, case.memory_for(program), plan=plan)
    compiled_warm_elapsed = time.perf_counter() - warm_started

    # Equivalence: every trace of every program on every case, field for field.
    steps_executed = 0
    entries_copied_baseline = 0
    entries_written_fastpath = 0
    for per_program_fast, per_program_ref in zip(compiled_traces, interpreted_traces):
        for fast, reference in zip(per_program_fast, per_program_ref):
            _assert_traces_identical(fast, reference)
            steps_executed += len(fast)
            universe = len(dict(fast.steps[0].pre)) if fast.steps else 0
            # The baseline snapshots the whole memory twice per step
            # (pre = dict(memory); post = dict(memory)).
            entries_copied_baseline += 2 * universe * len(fast)
            entries_written_fastpath += sum(
                len(step.written_vars) for step in fast.steps
            )

    assert entries_copied_baseline > 0
    copy_reduction = entries_copied_baseline / max(1, entries_written_fastpath)
    assert copy_reduction >= COPY_REDUCTION_THRESHOLD, (
        f"fast path wrote {entries_written_fastpath} entries vs "
        f"{entries_copied_baseline} baseline copies "
        f"({copy_reduction:.2f}x < {COPY_REDUCTION_THRESHOLD}x reduction)"
    )
    # Compile once, execute many: far fewer compilations than evaluations.
    compile_counters = compile_cache.counters()
    assert compile_counters["misses"] > 0
    assert compile_counters["hits"] > compile_counters["misses"]

    # Repair outcomes: compiled candidate screening == interpreted screening.
    correct = [parse_python_source(s) for s in corpus.correct_sources]
    clusters = cluster_programs(correct, cases).clusters
    attempts = [parse_python_source(s) for s in corpus.incorrect_sources]
    interpreted_repairs = [
        find_best_repair(program, clusters, caches=None, cost_bound=False)
        for program in attempts
    ]
    for cluster in clusters:  # drop reference-value memos filled above
        cluster.reset_runtime_caches()
    caches = RepairCaches()
    compiled_repairs = [
        find_best_repair(program, clusters, caches=caches, cost_bound=False)
        for program in attempts
    ]
    assert [_repair_fields(r) for r in compiled_repairs] == [
        _repair_fields(r) for r in interpreted_repairs
    ]

    # Committed artifact: counters only — deterministic for the seeded corpus
    # and identical on every machine and hash seed.
    payload = {
        "problem": problem.name,
        "programs": len(programs),
        "cases": len(cases),
        "copy_reduction_threshold": COPY_REDUCTION_THRESHOLD,
        "steps_executed": steps_executed,
        "entries_copied_baseline": entries_copied_baseline,
        "entries_written_fastpath": entries_written_fastpath,
        "entries_copy_reduction": round(copy_reduction, 2),
        "compile": compile_counters,
        "repair_screening_compile": caches.compiled.counters(),
        "repairs_checked": len(attempts),
        "repaired": sum(1 for r in compiled_repairs if r is not None),
    }
    (results_dir / "exec_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print("\n" + json.dumps(payload, indent=2))

    timings = {
        "interpreted_pass_seconds": round(interpreted_elapsed, 6),
        "compiled_cold_pass_seconds": round(compiled_cold_elapsed, 6),
        "compiled_warm_pass_seconds": round(compiled_warm_elapsed, 6),
        "warm_speedup": round(
            interpreted_elapsed / max(compiled_warm_elapsed, 1e-9), 2
        ),
    }
    (local_results_dir / "exec_throughput_timings.json").write_text(
        json.dumps(timings, indent=2) + "\n"
    )

    # Benchmarked unit: one full corpus-program execution over all cases with
    # a warm compile cache (the steady-state cost a batch run pays per
    # trace-cache miss).
    program, plan = programs[0], plans[0]
    benchmark(
        lambda: [execute(program, case.memory_for(program), plan=plan) for case in cases]
    )
