"""Benchmark E3/E4 — Figure 7: comparison with the AutoGrader baseline.

* Fig. 7(a): on attempts both tools repair, the number of modified expressions
  is usually equal (580 vs 164 vs 83 in the paper).
* Fig. 7(b): the distribution of modified expressions per repair — most of the
  baseline's repairs modify a single expression and its share falls off faster
  than Clara's.

The benchmarked unit is one AutoGrader baseline repair search.
"""

from __future__ import annotations

from _workloads import autograder_workload

from repro.evalharness import (
    autograder_comparison_counts,
    modified_expression_distribution,
    render_fig7a,
    render_fig7b,
)


def test_fig7_autograder_comparison(benchmark, mooc_results, results_dir):
    run = autograder_workload("derivatives")
    benchmark(run)

    fig7a = render_fig7a(mooc_results)
    fig7b = render_fig7b(mooc_results)
    (results_dir / "fig7_autograder_comparison.txt").write_text(fig7a + "\n\n" + fig7b + "\n")
    print("\n" + fig7a + "\n\n" + fig7b)

    counts = autograder_comparison_counts(mooc_results)
    both = sum(counts.values())
    if both:
        # Shape of Fig. 7(a): "equal" dominates the comparison.
        assert counts["equal"] >= max(counts["autograder_fewer"], counts["clara_fewer"])

    clara_dist = modified_expression_distribution(mooc_results, tool="clara")
    ag_dist = modified_expression_distribution(mooc_results, tool="autograder")
    # Shape of Fig. 7(b): the baseline's repairs are dominated by
    # single-expression modifications.
    if sum(ag_dist.values()):
        assert ag_dist["1"] >= max(v for k, v in ag_dist.items() if k != "1")
    assert sum(clara_dist.values()) >= sum(ag_dist.values())
