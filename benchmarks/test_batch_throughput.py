"""Benchmark E8 — batch engine throughput vs the uncached sequential loop.

Replays a duplicate-heavy incorrect corpus (students resubmitting identical
code, the common case in MOOC dumps) through two configurations:

* the **baseline**: ``Clara.repair_source`` in a plain loop with caching
  disabled — the pre-engine behaviour, re-executing and re-matching every
  attempt from scratch;
* the **engine**: :class:`repro.engine.batch.BatchRepairEngine` with 4
  workers sharing a :class:`repro.engine.cache.RepairCaches`.

Statuses must be identical between the two; the engine must record trace
cache hits and at least 1.5× the baseline throughput.  Deterministic metrics
(status histogram, cache hit rates) are committed to
``results/batch_throughput.json``; machine-dependent wall-clock numbers go to
the gitignored ``results/local/batch_throughput_timings.json``.  The
benchmarked unit is a warm engine run (all caches populated), i.e. the
steady-state cost of re-grading a corpus.
"""

from __future__ import annotations

import json
import time

from repro.core.pipeline import Clara
from repro.datasets import generate_corpus, get_problem
from repro.engine import BatchRepairEngine, RepairCaches

#: Each unique incorrect attempt appears this many times in the batch,
#: emulating resubmissions/plagiarism clusters.
DUPLICATION = 4


def _build_clara(problem, corpus, *, cached: bool) -> Clara:
    clara = Clara(
        cases=problem.cases,
        language=problem.language,
        entry=problem.entry,
        caches=RepairCaches(enabled=cached),
    )
    clara.add_correct_sources(corpus.correct_sources)
    return clara


def _measure(problem, corpus, sources):
    """One paired measurement: uncached sequential loop vs cached engine."""
    sequential = _build_clara(problem, corpus, cached=False)
    started = time.perf_counter()
    sequential_outcomes = [sequential.repair_source(source) for source in sources]
    sequential_time = time.perf_counter() - started

    batched = _build_clara(problem, corpus, cached=True)
    engine = BatchRepairEngine(batched, workers=4)
    report = engine.run(sources)
    return sequential_outcomes, sequential_time, engine, report


def test_batch_throughput(benchmark, results_dir, local_results_dir):
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 12, 6, seed=2018)
    sources = list(corpus.incorrect_sources) * DUPLICATION

    # Timing under transient machine load can depress the measured ratio, so
    # a paired measurement that misses the bar is re-taken once with fresh
    # pipelines (cold caches) before judging.
    for _ in range(2):
        sequential_outcomes, sequential_time, engine, report = _measure(
            problem, corpus, sources
        )
        speedup = (
            sequential_time / report.wall_time if report.wall_time > 0 else float("inf")
        )
        if speedup >= 1.5:
            break

    # Batching must not change results: statuses agree attempt by attempt.
    assert [outcome.status for outcome in sequential_outcomes] == [
        record.status for record in report.records
    ]
    # The duplicate-heavy corpus must actually exercise the caches.
    assert report.cache_stats.trace_hits > 0
    assert report.cache_stats.repair_hits > 0

    # Committed artifact: load-insensitive metrics only, so the file is
    # byte-identical across machines and runs.  Cache counters from the
    # 4-worker run depend on thread scheduling (two concurrent duplicates of
    # a not-yet-cached attempt both miss), so the committed counters come
    # from a single-worker run where each unique attempt misses exactly once.
    single = BatchRepairEngine(_build_clara(problem, corpus, cached=True), workers=1)
    single_report = single.run(sources)
    assert single_report.status_histogram() == report.status_histogram()
    payload = {
        "problem": problem.name,
        "attempts": len(sources),
        "unique_attempts": len(corpus.incorrect_sources),
        "duplication": DUPLICATION,
        "workers": engine.workers,
        "speedup_threshold": 1.5,
        "status_histogram": report.status_histogram(),
        "cache_workers": 1,
        "cache": single_report.cache_stats.as_dict(),
    }
    (results_dir / "batch_throughput.json").write_text(json.dumps(payload, indent=2) + "\n")

    # Wall-clock numbers churn with machine load; keep them local-only.
    timings = {
        "sequential_time": round(sequential_time, 4),
        "sequential_attempts_per_second": round(len(sources) / sequential_time, 3),
        "batch_time": round(report.wall_time, 4),
        "batch_attempts_per_second": round(report.attempts_per_second, 3),
        "speedup": round(speedup, 3),
        "p50_latency": round(report.p50_latency, 5),
        "p95_latency": round(report.p95_latency, 5),
        "workers_4_cache": report.cache_stats.as_dict(),
    }
    (local_results_dir / "batch_throughput_timings.json").write_text(
        json.dumps(timings, indent=2) + "\n"
    )
    print("\n" + json.dumps({**payload, **timings}, indent=2))

    assert speedup >= 1.5, f"batch speedup {speedup:.2f}x below 1.5x"

    # Steady-state: re-grading the corpus with warm caches.
    warm_report = benchmark(engine.run, sources)
    assert warm_report.status_histogram() == report.status_histogram()
