"""Soak benchmark — the fleet under a deterministic fault barrage.

Drives a two-worker :class:`~repro.fleet.FleetService` through a fixed
request stream per problem while a :class:`~repro.fleet.faults.FaultPlan`
injects every supervised failure mode at known coordinates:

* worker 0 **crashes** mid-request on its 4th repair (first incarnation),
* worker 0 **hangs** on the 8th request overall (5th repair of the second
  incarnation) until the watchdog's 0.5 s kill deadline fires,
* worker 1 answers one request through a short **delay** (slow but alive —
  no death, no counters).

Faults key on (worker, incarnation, op ordinal) — never wall-clock — and
each problem's stream is driven sequentially (concurrency only *across*
shards), so the recovery counters are identical on every run and the
committed artifact ``results/fleet_soak.json`` is byte-stable.  The soak
asserts the fleet's core invariant: **zero lost requests** — every
submitted request resolves to a repair or a structured response, with the
crashed and killed requests retried to success on the respawn.

Wall-clock timings (soak duration, recovery latency) are machine-dependent
and go to the gitignored ``results/local/fleet_soak_timings.json``.  The
benchmarked unit is one warm repair end to end through the router → pipe →
worker → memo-hit path.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro import Clara
from repro.datasets import generate_corpus, get_problem
from repro.fleet import BackoffPolicy, Fault, FaultPlan, FleetService

PROBLEMS = ("derivatives", "oddTuples")

#: Each unique incorrect attempt appears this many times per problem stream.
DUPLICATION = 4

#: Hard processing bound before a hung worker is killed.  Far above any
#: real repair in this workload (cold repairs run well under a second, and
#: a retried request pays the cold cost again on its fresh respawn) so the
#: only kill is the injected hang — a legitimate slow repair being killed
#: would make the counters machine-dependent.
KILL_AFTER = 5.0

FAULTS = FaultPlan(
    (
        # 4th repair of worker 0's first incarnation: die mid-request.
        Fault(action="crash", request=3, worker=0, incarnation=0),
        # 5th repair of the respawn (the retried request is its ordinal 0):
        # wedge until the watchdog's KILL_AFTER deadline fires.
        Fault(action="hang", request=4, worker=0, incarnation=1, seconds=3600.0),
        # Worker 1 answers its 3rd repair slowly but stays healthy.
        Fault(action="delay", request=2, worker=1, seconds=0.05),
    )
)

#: The exact recovery ledger the fault plan must produce: the crash and the
#: kill each cost one death + one restart + one retried request; the delay
#: costs nothing.  Asserted, which is what keeps the artifact byte-stable.
EXPECTED_TOTALS = {"crashes": 2, "kills": 1, "restarts": 2, "retries": 2, "shed": 0}


def _build_store(tmp_path, name, corpus):
    spec = get_problem(name)
    clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
    clara.add_correct_sources(corpus.correct_sources)
    return clara.save_clusters(tmp_path / f"{name}.json", problem=name)


def test_fleet_soak(benchmark, results_dir, local_results_dir, tmp_path):
    corpora = {
        name: generate_corpus(get_problem(name), 12, 3, seed=2018) for name in PROBLEMS
    }
    stores = [_build_store(tmp_path, name, corpora[name]) for name in PROBLEMS]
    plan_path = FAULTS.save(tmp_path / "plan.json")

    fleet = FleetService(
        stores,
        fleet_size=2,
        fault_plan_path=plan_path,
        kill_after=KILL_AFTER,
        # Heartbeats are wall-clock-driven; off, so ordinals stay exact.
        heartbeat_interval=None,
        backoff=BackoffPolicy(base=0.05, factor=2.0, max_strikes=3),
    )
    assert fleet.wait_ready(60), "fleet did not reach serving"

    streams = {
        name: [
            json.dumps(
                {"op": "repair", "problem": name, "source": source, "id": f"{name}-{index}"}
            )
            for index, source in enumerate(list(corpora[name].incorrect_sources) * DUPLICATION)
        ]
        for name in PROBLEMS
    }

    async def drive(lines):
        # Sequential per problem: each worker sees its shard's stream in a
        # deterministic order (the fleet's concurrency is across shards).
        return [await fleet.handle_line(line) for line in lines]

    async def soak():
        results = await asyncio.gather(*(drive(streams[name]) for name in PROBLEMS))
        return dict(zip(PROBLEMS, results))

    started = time.perf_counter()
    responses = asyncio.run(soak())
    soak_seconds = time.perf_counter() - started

    # Zero lost requests: every line submitted came back as a repair or a
    # structured response — across a crash, a hang + kill and two respawns.
    histograms = {}
    for name in PROBLEMS:
        assert len(responses[name]) == len(streams[name])
        assert [r.get("id") for r in responses[name]] == [
            f"{name}-{index}" for index in range(len(streams[name]))
        ]
        assert all(r["ok"] for r in responses[name]), (
            f"{name}: lost or failed requests: "
            f"{[r for r in responses[name] if not r['ok']]}"
        )
        histogram: dict[str, int] = {}
        for response in responses[name]:
            histogram[response["status"]] = histogram.get(response["status"], 0) + 1
        histograms[name] = dict(sorted(histogram.items()))

    totals = fleet.fleet_counters()
    served = totals.pop("served")
    assert served == sum(len(lines) for lines in streams.values())
    assert totals == EXPECTED_TOTALS, totals
    shards = {
        str(shard): {
            "problems": fleet._shard_problems[shard],
            "incarnation": supervisor.incarnation,
            "state": supervisor.state,
            "counters": dict(sorted(supervisor.counters.items())),
        }
        for shard, supervisor in enumerate(fleet.supervisors)
    }
    assert shards["0"]["incarnation"] == 2  # crash respawn + kill respawn
    assert shards["1"]["incarnation"] == 0  # delays are not deaths

    payload = {
        "problems": list(PROBLEMS),
        "fleet_size": fleet.fleet_size,
        "requests_per_problem": {
            name: len(streams[name]) for name in PROBLEMS
        },
        "kill_after_seconds": KILL_AFTER,
        "faults": FAULTS.to_json(),
        "status_histograms": histograms,
        "recovery": {"totals": {**EXPECTED_TOTALS, "served": served}, "shards": shards},
        "invariant": "zero lost requests: every submitted request resolved",
    }
    (results_dir / "fleet_soak.json").write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + json.dumps(payload, indent=2))

    timings = {
        "soak_seconds": round(soak_seconds, 6),
        "requests_per_second": (
            round(served / soak_seconds, 3) if soak_seconds else None
        ),
    }
    (local_results_dir / "fleet_soak_timings.json").write_text(
        json.dumps(timings, indent=2) + "\n"
    )

    # Steady state: one warm repair through router, pipe and worker memo.
    warm_line = streams["oddTuples"][0]
    benchmark(lambda: asyncio.run(fleet.handle_line(warm_line)))
    fleet.close()
