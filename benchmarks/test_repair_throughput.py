"""Benchmark — repair fast path vs the unpruned candidate-generation loop.

Repairs an incorrect corpus against its clusters twice over the *same*
cluster objects:

* the **baseline**: caching disabled and no cost bound — every candidate
  pays a full Zhang–Shasha DP, the pre-fast-path behaviour;
* the **fast path**: expression interning + memoized TED (annotations and
  pair distances) + indexed pools + best-cost-so-far branch-and-bound
  (``find_best_repair(..., cost_bound=True)``).

Repair outcomes must be field-identical between the two (the pruning
argument of :func:`repro.core.repair.find_best_repair` says they provably
share the winning repair's cost; this asserts the stronger property that
the whole repair coincides).  The fast path must execute at most half the
baseline's TED DPs.  All committed metrics are counters — deterministic
for the seeded corpus and machine-independent — written to
``results/repair_throughput.json``; no wall-clock numbers are stored.
"""

from __future__ import annotations

import json

from repro.core.clustering import cluster_programs
from repro.core.repair import find_best_repair
from repro.datasets import generate_corpus, get_problem
from repro.engine import RepairCaches
from repro.frontend import parse_python_source

#: Reduction gate: the fast path must run at most 1/DP_REDUCTION_THRESHOLD
#: of the baseline's TED dynamic programs.
DP_REDUCTION_THRESHOLD = 2.0


def _repair_fields(repair):
    """Everything observable about a repair except wall-clock solve time."""
    return repair.comparable_fields() if repair is not None else None


def test_repair_throughput(benchmark, results_dir):
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 16, 10, seed=2018)
    correct = [parse_python_source(s) for s in corpus.correct_sources]
    clusters = cluster_programs(correct, problem.cases).clusters
    attempts = [parse_python_source(s) for s in corpus.incorrect_sources]

    baseline = RepairCaches(enabled=False)
    baseline_repairs = [
        find_best_repair(program, clusters, caches=baseline, cost_bound=False)
        for program in attempts
    ]

    fast = RepairCaches()
    fast_repairs = [
        find_best_repair(program, clusters, caches=fast, cost_bound=True)
        for program in attempts
    ]

    # The fast path must not change a single field of a single repair.
    assert [_repair_fields(r) for r in fast_repairs] == [
        _repair_fields(r) for r in baseline_repairs
    ]

    baseline_ted = baseline.ted.counters()
    fast_ted = fast.ted.counters()
    assert baseline_ted["dp_runs"] > 0
    reduction = baseline_ted["dp_runs"] / max(1, fast_ted["dp_runs"])
    assert reduction >= DP_REDUCTION_THRESHOLD, (
        f"fast path ran {fast_ted['dp_runs']} TED DPs vs {baseline_ted['dp_runs']} "
        f"baseline ({reduction:.2f}x < {DP_REDUCTION_THRESHOLD}x reduction)"
    )

    # Committed artifact: counters only — deterministic for the seeded corpus
    # and identical on every machine.
    payload = {
        "problem": problem.name,
        "attempts": len(attempts),
        "clusters": len(clusters),
        "repaired": sum(1 for r in fast_repairs if r is not None),
        "dp_reduction_threshold": DP_REDUCTION_THRESHOLD,
        "dp_reduction": round(reduction, 2),
        "ted_baseline": baseline_ted,
        "ted_fastpath": fast_ted,
        "ted_entries": fast.ted.entry_counts(),
    }
    (results_dir / "repair_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print("\n" + json.dumps(payload, indent=2))

    # Steady-state benchmarked unit: one attempt against all clusters with a
    # warm TED memo (the cost a long-lived grading engine actually pays).
    benchmark(
        find_best_repair, attempts[0], clusters, caches=fast, cost_bound=True
    )
