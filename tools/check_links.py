#!/usr/bin/env python3
"""Fail on dead relative links in the repository's markdown documentation.

Scans ``README.md`` and every ``docs/*.md`` file for inline markdown links
and images (``[text](target)`` / ``![alt](target)``) and checks that each
relative target exists on disk, resolved against the file that references
it.  External schemes (``http://``, ``https://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped; an anchor suffix on a file
target (``FILE.md#section``) is stripped before the existence check —
anchor names themselves are not validated.  Fenced code blocks are ignored
so shell snippets like ``tar [options](file)`` never false-positive.

Stdlib only; exit status 0 when every link resolves, 1 otherwise (one
``file: target`` line per dead link on stderr).  Run from anywhere::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown link or image: ``[text](target)`` with no nested
#: brackets in the text and no whitespace in the target.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

FENCE = re.compile(r"^(```|~~~)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_links(text: str):
    """Yield link targets outside fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            yield match.group(1)


def check_file(path: Path) -> list[str]:
    """Dead relative link targets referenced by ``path``."""
    dead = []
    for target in iter_links(path.read_text()):
        if target.startswith(SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            dead.append(target)
    return dead


def main() -> int:
    files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    failures = 0
    checked = 0
    for path in files:
        if not path.exists():
            continue
        checked += 1
        for target in check_file(path):
            failures += 1
            print(f"{path.relative_to(REPO_ROOT)}: {target}", file=sys.stderr)
    if failures:
        print(f"{failures} dead link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
