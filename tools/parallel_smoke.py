#!/usr/bin/env python
"""Smoke-check ``batch --processes``: merged counters must equal one process.

Drives the real CLI end to end (the same entry points an operator uses):

1. ``cluster build`` a small derivatives store;
2. ``batch --processes 1 --workers 1 --profile`` over a smoke corpus that
   spans two CFG-skeleton families plus a duplicate and a non-ASCII
   attempt;
3. ``batch --processes 2 --profile`` over the same corpus;
4. assert the two runs' JSONL reports are identical modulo per-attempt
   wall-clock, and that the deterministic counter sections of
   ``results/local/batch_profile.json`` — phase counters, trace/match/
   repair cache counters, retrieval counters, store paging — are *equal*.

Exit code 0 on identity, 1 with a section-by-section diff on divergence.
Used by the ``batch-parallel-smoke`` CI job and ``make
batch-parallel-smoke``; everything runs in a temp directory, nothing in
the repository is touched.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Sections of the profile payload that must be equal, not merely summed.
#: (ted/compile/cache_entries may differ: expression-level memos can share
#: entries across skeleton classes inside one process.)
IDENTICAL_SECTIONS = ("cache", "retrieval", "store_paging")

TWO_LOOP_BROKEN = (
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

SINGLE_LOOP_BROKEN = (
    "def computeDeriv(poly):\n"
    "    result = []\n"
    "    for e in range(len(poly)):\n"
    "        result.append(float(poly[e]*e))\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

NON_ASCII = (
    "def computeDeriv(poly):\n"
    "    # dérivée du polynôme\n"
    "    rés = []\n"
    "    for i in range(len(poly)):\n"
    "        rés.append(float(i*poly[i]))\n"
    "    if rés == []:\n"
    "        return [0.0]\n"
    "    return rés\n"
)


def _cli(workdir: Path, *arguments: str) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *arguments],
        cwd=workdir,
        env=env,
        check=True,
    )


def _rows(report_path: Path) -> list[dict]:
    rows = []
    for line in report_path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        if "summary" in record:
            continue
        record.pop("elapsed", None)
        rows.append(record)
    return rows


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="parallel-smoke-") as tmp:
        workdir = Path(tmp)
        store = workdir / "derivatives.json"
        _cli(workdir, "cluster", "build", "--problem", "derivatives",
             "--correct", "12", "--output", str(store))

        attempts = workdir / "attempts"
        attempts.mkdir()
        (attempts / "a-single.py").write_text(SINGLE_LOOP_BROKEN, encoding="utf-8")
        (attempts / "b-duplicate.py").write_text(SINGLE_LOOP_BROKEN, encoding="utf-8")
        (attempts / "c-two-loop.py").write_text(TWO_LOOP_BROKEN, encoding="utf-8")
        (attempts / "d-unicode.py").write_text(NON_ASCII, encoding="utf-8")

        profiles: dict[int, dict] = {}
        reports: dict[int, list[dict]] = {}
        for processes in (1, 2):
            report_path = workdir / f"report-p{processes}.jsonl"
            _cli(
                workdir, "batch",
                "--problem", "derivatives",
                "--attempts", str(attempts),
                "--clusters", str(store),
                "--workers", "1",
                "--processes", str(processes),
                "--profile",
                "--output", str(report_path),
            )
            payload = json.loads(
                (workdir / "results" / "local" / "batch_profile.json").read_text(
                    encoding="utf-8"
                )
            )
            profiles[processes] = payload
            reports[processes] = _rows(report_path)

        failures = []
        if reports[1] != reports[2]:
            failures.append(
                "JSONL report rows diverged:\n"
                f"  --processes 1: {json.dumps(reports[1])}\n"
                f"  --processes 2: {json.dumps(reports[2])}"
            )
        single = dict(profiles[1], phases=profiles[1]["phases"]["counters"])
        merged = dict(profiles[2], phases=profiles[2]["phases"]["counters"])
        for section in ("phases",) + IDENTICAL_SECTIONS:
            if single[section] != merged[section]:
                failures.append(
                    f"profile section {section!r} diverged:\n"
                    f"  --processes 1: {json.dumps(single[section], sort_keys=True)}\n"
                    f"  --processes 2: {json.dumps(merged[section], sort_keys=True)}"
                )

        if failures:
            print("batch --processes smoke FAILED:", file=sys.stderr)
            for failure in failures:
                print(failure, file=sys.stderr)
            return 1
        checked = ", ".join(("phases",) + IDENTICAL_SECTIONS)
        print(
            f"batch --processes smoke OK: {len(reports[1])} records and "
            f"counter sections [{checked}] identical across 1 and 2 processes"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
