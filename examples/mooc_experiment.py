"""MOOC-style evaluation on one assignment (a miniature Table 1 row).

Generates a synthetic corpus for the ``oddTuples`` assignment, clusters the
correct attempts, repairs every incorrect attempt with both Clara and the
AutoGrader-style baseline, and prints the comparison.  Run with::

    python examples/mooc_experiment.py
"""

from repro.evalharness import (
    format_failure_breakdown,
    format_table1,
    render_fig6,
    run_problem,
)


def main() -> None:
    result = run_problem(
        "oddTuples",
        n_correct=25,
        n_incorrect=12,
        seed=7,
        run_autograder=True,
    )
    print(format_table1([result]))
    print()
    print(format_failure_breakdown([result]))
    print()
    print(render_fig6([result]))
    print()
    print("slowest repairs:")
    for attempt in sorted(result.attempts, key=lambda a: -a.elapsed)[:3]:
        print(f"  {attempt.fault_label:<30} {attempt.status:<12} {attempt.elapsed:.2f}s")


if __name__ == "__main__":
    main()
