"""Using the library on your own assignment.

Shows the full public API surface for a brand-new problem that is not part of
the paper's benchmark: define test cases, provide a handful of correct
solutions, and repair student attempts.  Run with::

    python examples/custom_problem.py
"""

from repro import Clara, InputCase
from repro.core.inputs import is_correct
from repro.frontend import parse_source

CORRECT_SOLUTIONS = [
    """
def countEven(numbers):
    count = 0
    for n in numbers:
        if n % 2 == 0:
            count += 1
    return count
""",
    """
def countEven(numbers):
    total = 0
    i = 0
    while i < len(numbers):
        if numbers[i] % 2 == 0:
            total = total + 1
        i += 1
    return total
""",
]

STUDENT_ATTEMPT = """
def countEven(numbers):
    count = 0
    for n in numbers:
        if n % 2 == 1:
            count += 1
    return count
"""


def main() -> None:
    cases = [
        InputCase(args=(values,), expected_return=sum(1 for v in values if v % 2 == 0))
        for values in ([], [1], [2], [1, 2, 3, 4], [7, 7, 8], list(range(10)))
    ]

    clara = Clara(cases)
    clara.add_correct_sources(CORRECT_SOLUTIONS)

    outcome = clara.repair_source(STUDENT_ATTEMPT)
    print(f"status: {outcome.status}, repair cost {outcome.repair.cost:.0f}")
    print(outcome.feedback.text())

    repaired = outcome.repair.repaired_program
    print("\nrepaired program passes the test suite:", is_correct(repaired, cases))

    # The lower-level API: parse and inspect the program model directly.
    model = parse_source(STUDENT_ATTEMPT)
    print(f"\nmodel of the student attempt ({len(model.locations)} locations):")
    print(model.describe())


if __name__ == "__main__":
    main()
