"""Interactive-teaching scenario on a C assignment (the paper's user study).

Builds the cluster pool for the ``special_number`` problem, then plays the
role of a student submitting three successive attempts, printing the feedback
Clara would show after each submission.  Run with::

    python examples/c_user_study.py
"""

from repro.core.pipeline import Clara
from repro.datasets import generate_corpus, get_problem

ATTEMPT_1 = r"""
#include <stdio.h>
int main() {
    int n, sum = 0, d, m;
    scanf("%d", &n);
    m = n;
    while (m > 0) {
        d = m % 10;
        sum = sum + d*d;
        m = m / 10;
    }
    if (sum == n) printf("YES\n");
    else printf("NO\n");
    return 0;
}
"""

ATTEMPT_2 = r"""
#include <stdio.h>
int main() {
    int n, sum = 0, d, m;
    scanf("%d", &n);
    m = n;
    while (m > 0) {
        d = m % 10;
        sum = sum + d*d*d;
        m = m / 10;
    }
    if (sum == n) printf("NO\n");
    else printf("YES\n");
    return 0;
}
"""

ATTEMPT_3 = r"""
#include <stdio.h>
int main() {
    int n, sum = 0, d, m;
    scanf("%d", &n);
    m = n;
    while (m > 0) {
        d = m % 10;
        sum = sum + d*d*d;
        m = m / 10;
    }
    if (sum == n) printf("YES\n");
    else printf("NO\n");
    return 0;
}
"""


def main() -> None:
    problem = get_problem("special_number")
    corpus = generate_corpus(problem, n_correct=20, n_incorrect=0, seed=11)
    clara = Clara(
        cases=problem.cases,
        language="c",
        timeout=60.0,
        generic_threshold=100.0,
    )
    clara.add_correct_sources(corpus.correct_sources)
    print(f"{clara.cluster_count} clusters built from {len(corpus.correct)} correct solutions\n")

    for round_number, source in enumerate((ATTEMPT_1, ATTEMPT_2, ATTEMPT_3), start=1):
        outcome = clara.repair_source(source)
        print(f"--- submission {round_number}: {outcome.status} ({outcome.elapsed:.2f}s)")
        if outcome.feedback is not None:
            print(outcome.feedback.text())
        print()


if __name__ == "__main__":
    main()
