"""Quickstart: repair the paper's running example (Fig. 2).

Clusters two correct solutions of the ``derivatives`` assignment and repairs
the two incorrect attempts I1 and I2 from the paper, printing the generated
feedback.  Run with::

    python examples/quickstart.py
"""

from repro import Clara, InputCase

CORRECT_1 = """
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
"""

CORRECT_2 = """
def computeDeriv(poly):
    deriv = []
    for i in range(1, len(poly)):
        deriv += [float(i)*poly[i]]
    if len(deriv) == 0:
        return [0.0]
    return deriv
"""

INCORRECT_I1 = """
def computeDeriv(poly):
    new = []
    for i in range(1, len(poly)):
        new.append(float(i*poly[i]))
    if new == []:
        return 0.0
    return new
"""

INCORRECT_I2 = """
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result[i] = float(i*poly[i])
    return result
"""


def expected_derivative(poly):
    result = [float(i * poly[i]) for i in range(1, len(poly))]
    return result if result else [0.0]


def main() -> None:
    inputs = [[6.3, 7.6, 12.14], [], [1.0], [1.0, 2.0, 3.0, 4.0], [0.0, 5.0]]
    cases = [
        InputCase(args=(list(poly),), expected_return=expected_derivative(poly))
        for poly in inputs
    ]

    clara = Clara(cases)
    clara.add_correct_sources([CORRECT_1, CORRECT_2])
    print(f"clustered 2 correct solutions into {clara.cluster_count} cluster(s)\n")

    for name, source in (("I1", INCORRECT_I1), ("I2", INCORRECT_I2)):
        outcome = clara.repair_source(source)
        print(f"=== attempt {name}: {outcome.status} "
              f"(cost {outcome.repair.cost:.0f}, "
              f"relative size {outcome.repair.relative_size():.2f})")
        print(outcome.feedback.text())
        print()


if __name__ == "__main__":
    main()
