PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench tier1 lint batch-parallel-smoke clean

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q

tier1:
	$(PYTHON) -m pytest -x -q

# Mirror of the CI batch-parallel-smoke job: drive the real CLI with
# --processes 2 vs --processes 1 and require identical reports and
# deterministic profile counter sections.
batch-parallel-smoke:
	$(PYTHON) tools/parallel_smoke.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; bytecode compile check only (CI runs ruff)"; \
	fi

clean:
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
