"""Setup shim.

The execution environment has an older setuptools without the ``wheel``
package, so PEP 517 editable installs fail with ``invalid command
'bdist_wheel'``.  Keeping a legacy ``setup.py`` allows::

    pip install -e . --no-build-isolation --no-use-pep517

which is what the README and CI instructions use.
"""

from setuptools import setup

setup()
