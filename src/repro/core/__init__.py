"""Core Clara algorithms: matching, clustering, repair, feedback, pipeline."""

from .clustering import Cluster, ClusteringResult, cluster_programs
from .feedback import Feedback, FeedbackItem, GENERIC_FEEDBACK_THRESHOLD, generate_feedback
from .inputs import InputCase, is_correct, passes_case, program_traces, run_case
from .localrepair import LocalRepairCandidate, expressions_match, generate_local_repairs
from .matching import MatchResult, find_matching, programs_match, structural_match
from .pipeline import Clara, RepairOutcome, RepairStatus
from .repair import Repair, RepairAction, find_best_repair, repair_against_cluster

__all__ = [
    "Cluster",
    "ClusteringResult",
    "cluster_programs",
    "Feedback",
    "FeedbackItem",
    "GENERIC_FEEDBACK_THRESHOLD",
    "generate_feedback",
    "InputCase",
    "is_correct",
    "passes_case",
    "program_traces",
    "run_case",
    "LocalRepairCandidate",
    "expressions_match",
    "generate_local_repairs",
    "MatchResult",
    "find_matching",
    "programs_match",
    "structural_match",
    "Clara",
    "RepairOutcome",
    "RepairStatus",
    "Repair",
    "RepairAction",
    "find_best_repair",
    "repair_against_cluster",
]
