"""The repair algorithm (paper §5, Fig. 5 and Def. 5.5).

Given an incorrect implementation and a cluster of correct solutions with the
same control flow, the algorithm:

1. generates local repair candidates for every location/variable site
   (:mod:`repro.core.localrepair`);
2. encodes the search for a *consistent* subset of minimum total cost as a
   0-1 ILP -- one indicator per candidate, one per variable pair, plus
   addition/deletion indicators implementing the extension of §5 ("Adding and
   Deleting Variables");
3. decodes the ILP solution into a :class:`Repair`: the list of concrete
   modifications, the repaired program, and provenance information.

An independent exhaustive solver over total variable relations
(:func:`solve_by_enumeration`) is provided for cross-validation of the ILP
encoding in tests and for the solver ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..ilp import IlpProblem, InfeasibleError, solve_fast
from ..model.expr import Expr, Var
from ..model.program import Program
from .clustering import Cluster
from .localrepair import LocalRepairCandidate, Site, generate_local_repairs
from .matching import FIXED_VARS, structural_match, variables_for_matching
from .profile import profiled

if TYPE_CHECKING:  # pragma: no cover - engine imports core; annotation only
    from ..engine.cache import RepairCaches

__all__ = [
    "RepairAction",
    "Repair",
    "repair_against_cluster",
    "find_best_repair",
    "RepairError",
]


class RepairError(Exception):
    """Raised when a repair cannot be constructed for an unexpected reason."""


@dataclass(frozen=True)
class RepairAction:
    """One concrete modification of the implementation.

    ``kind`` is one of ``"modify"`` (replace an expression), ``"add"``
    (introduce an assignment for a fresh variable), ``"delete"`` (remove an
    assignment of a deleted variable) or ``"remove-assignment"`` (drop a
    spurious assignment of a kept variable).
    """

    kind: str
    loc_id: int
    var: str
    old_expr: Expr | None
    new_expr: Expr | None
    cost: int
    rep_var: str | None = None
    line: int | None = None
    location_name: str = ""


@dataclass
class Repair:
    """A whole-program repair against one cluster (Def. 5.2)."""

    cluster_id: int
    cost: float
    actions: list[RepairAction]
    variable_map: dict[str, str]
    added_vars: dict[str, str] = field(default_factory=dict)
    deleted_vars: list[str] = field(default_factory=list)
    repaired_program: Program | None = None
    provenance_members: frozenset[int] = frozenset()
    solve_time: float = 0.0
    original_ast_size: int = 0

    @property
    def num_modified_expressions(self) -> int:
        """Number of expressions touched by the repair (Fig. 7's metric)."""
        return len(self.actions)

    def relative_size(self) -> float:
        """Tree-edit distance of the repair divided by the program AST size.

        Matches the paper's "relative repair size" (Fig. 6); returns ``inf``
        for empty programs.
        """
        if self.original_ast_size == 0:
            return float("inf")
        return self.cost / self.original_ast_size

    def comparable_fields(self) -> dict:
        """Every observable field except wall-clock ``solve_time``.

        Used to assert that two search configurations (e.g. the
        cost-bounded fast path vs the exhaustive path) produced *the same
        repair*, field for field; the repaired program is represented by
        its structure key.
        """
        return {
            "cluster_id": self.cluster_id,
            "cost": self.cost,
            "actions": self.actions,
            "variable_map": self.variable_map,
            "added_vars": self.added_vars,
            "deleted_vars": self.deleted_vars,
            "provenance": self.provenance_members,
            "original_ast_size": self.original_ast_size,
            "repaired": self.repaired_program.structure_key()
            if self.repaired_program is not None
            else None,
        }


# ---------------------------------------------------------------------------
# ILP encoding
# ---------------------------------------------------------------------------


def _pair_var(rep_var: str, impl_var: str) -> str:
    return f"pair::{rep_var}::{impl_var}"


def _add_var(rep_var: str) -> str:
    return f"add::{rep_var}"


def _del_var(impl_var: str) -> str:
    return f"del::{impl_var}"


def _candidate_var(index: int) -> str:
    return f"lr::{index}"


def _addition_cost(representative: Program, rep_var: str) -> int:
    total = 0
    for loc_id, var, expr in representative.iter_updates():
        if var == rep_var and expr != Var(var):
            total += expr.size()
    return total


def _deletion_cost(implementation: Program, impl_var: str) -> int:
    total = 0
    for loc_id, var, expr in implementation.iter_updates():
        if var == impl_var and expr != Var(var):
            total += expr.size()
    return total


def _build_ilp(
    implementation: Program,
    cluster: Cluster,
    candidates: Mapping[Site, Sequence[LocalRepairCandidate]],
) -> tuple[IlpProblem, list[tuple[Site, LocalRepairCandidate, str]]]:
    representative = cluster.representative
    impl_vars = variables_for_matching(implementation)
    rep_vars = variables_for_matching(representative)

    problem = IlpProblem(minimize=True)
    indexed: list[tuple[Site, LocalRepairCandidate, str]] = []

    for rep_var in rep_vars:
        problem.add_variable(_add_var(rep_var), objective=_addition_cost(representative, rep_var))
        for impl_var in impl_vars:
            problem.add_variable(_pair_var(rep_var, impl_var))
    for impl_var in impl_vars:
        problem.add_variable(_del_var(impl_var), objective=_deletion_cost(implementation, impl_var))

    # (1) every representative variable is paired with exactly one
    #     implementation variable or freshly added.
    for rep_var in rep_vars:
        members = [_pair_var(rep_var, impl_var) for impl_var in impl_vars]
        members.append(_add_var(rep_var))
        problem.add_exactly_one(members, name=f"rep::{rep_var}")

    # (2) every implementation variable is paired with exactly one
    #     representative variable or deleted.
    for impl_var in impl_vars:
        members = [_pair_var(rep_var, impl_var) for rep_var in rep_vars]
        members.append(_del_var(impl_var))
        problem.add_exactly_one(members, name=f"impl::{impl_var}")

    # (3) exactly one local repair per site (or the variable is deleted).
    counter = 0
    for site, site_candidates in candidates.items():
        names: list[str] = []
        for candidate in site_candidates:
            name = _candidate_var(counter)
            counter += 1
            problem.add_variable(name, objective=float(candidate.cost))
            indexed.append((site, candidate, name))
            names.append(name)
            # (4) consistency of the candidate's ω with the pairing.
            for impl_var, rep_var in candidate.omega:
                problem.add_implication(name, _pair_var(rep_var, impl_var))
        if site.fixed:
            if names:
                problem.add_exactly_one(names, name=f"site::{site.loc_id}::{site.var}")
            else:
                # A fixed site with no candidate at all: unrepairable against
                # this cluster (e.g. no matching loop condition exists).
                problem.add_constraint([], "==", 1.0, name="infeasible")
        else:
            group = names + [_del_var(site.var)]
            problem.add_exactly_one(group, name=f"site::{site.loc_id}::{site.var}")

    return problem, indexed


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _fresh_name(rep_var: str, taken: set[str]) -> str:
    base = rep_var.lstrip("$") or "var"
    name = f"new_{base}"
    suffix = 1
    while name in taken:
        suffix += 1
        name = f"new_{base}_{suffix}"
    taken.add(name)
    return name


def _decode_solution(
    values: Mapping[str, int],
    implementation: Program,
    cluster: Cluster,
    location_map: Mapping[int, int],
    indexed: Sequence[tuple[Site, LocalRepairCandidate, str]],
    objective: float,
) -> Repair:
    representative = cluster.representative
    impl_vars = variables_for_matching(implementation)
    rep_vars = variables_for_matching(representative)

    variable_map: dict[str, str] = {var: var for var in FIXED_VARS}
    deleted: list[str] = []
    added: dict[str, str] = {}
    taken_names = set(implementation.variables)

    for impl_var in impl_vars:
        if values.get(_del_var(impl_var), 0):
            deleted.append(impl_var)
    for rep_var in rep_vars:
        if values.get(_add_var(rep_var), 0):
            added[rep_var] = _fresh_name(rep_var, taken_names)
        for impl_var in impl_vars:
            if values.get(_pair_var(rep_var, impl_var), 0):
                variable_map[impl_var] = rep_var

    # Translation of representative variables into (possibly fresh)
    # implementation variables, used to materialise added assignments.
    rep_to_impl: dict[str, str] = {var: var for var in FIXED_VARS}
    for impl_var, rep_var in variable_map.items():
        if impl_var not in FIXED_VARS:
            rep_to_impl[rep_var] = impl_var
    rep_to_impl.update(added)

    selected: dict[Site, LocalRepairCandidate] = {}
    provenance: set[int] = set()
    for site, candidate, name in indexed:
        if values.get(name, 0):
            selected[site] = candidate
            if candidate.new_expr is not None and candidate.cost > 0:
                provenance |= set(candidate.provenance)

    actions: list[RepairAction] = []
    repaired = implementation.copy()
    inverse_locations = {rep_loc: impl_loc for impl_loc, rep_loc in location_map.items()}

    # Modifications of kept variables.
    for site, candidate in selected.items():
        if candidate.new_expr is None:
            continue
        old_expr = implementation.update_for(site.loc_id, site.var)
        new_expr = candidate.new_expr
        if new_expr == old_expr:
            continue
        location = implementation.locations[site.loc_id]
        if new_expr == Var(site.var):
            kind = "remove-assignment"
            repaired.locations[site.loc_id].updates.pop(site.var, None)
        else:
            kind = "modify"
            repaired.locations[site.loc_id].updates[site.var] = new_expr
        actions.append(
            RepairAction(
                kind=kind,
                loc_id=site.loc_id,
                var=site.var,
                old_expr=None if old_expr == Var(site.var) else old_expr,
                new_expr=None if new_expr == Var(site.var) else new_expr,
                cost=candidate.cost,
                rep_var=candidate.rep_var,
                line=location.line,
                location_name=location.name,
            )
        )

    # Deleted variables: drop their assignments.
    for impl_var in deleted:
        for loc_id in implementation.location_ids():
            old_expr = implementation.update_for(loc_id, impl_var)
            if old_expr == Var(impl_var):
                continue
            location = implementation.locations[loc_id]
            repaired.locations[loc_id].updates.pop(impl_var, None)
            actions.append(
                RepairAction(
                    kind="delete",
                    loc_id=loc_id,
                    var=impl_var,
                    old_expr=old_expr,
                    new_expr=None,
                    cost=old_expr.size(),
                    rep_var=None,
                    line=location.line,
                    location_name=location.name,
                )
            )

    # Added variables: copy the representative's assignments, translated.
    for rep_var, fresh in added.items():
        for rep_loc in representative.location_ids():
            expr = representative.update_for(rep_loc, rep_var)
            if expr == Var(rep_var):
                continue
            impl_loc = inverse_locations[rep_loc]
            translated = expr.rename_vars(rep_to_impl)
            repaired.locations[impl_loc].updates[fresh] = translated
            location = implementation.locations[impl_loc]
            actions.append(
                RepairAction(
                    kind="add",
                    loc_id=impl_loc,
                    var=fresh,
                    old_expr=None,
                    new_expr=translated,
                    cost=expr.size(),
                    rep_var=rep_var,
                    line=location.line,
                    location_name=location.name,
                )
            )

    actions.sort(key=lambda a: (a.loc_id, a.var))
    return Repair(
        cluster_id=cluster.cluster_id,
        cost=objective,
        actions=actions,
        variable_map=variable_map,
        added_vars=added,
        deleted_vars=deleted,
        repaired_program=repaired,
        provenance_members=frozenset(provenance),
        original_ast_size=implementation.ast_size(),
    )


# ---------------------------------------------------------------------------
# Exhaustive enumeration solver (cross-check / ablation)
# ---------------------------------------------------------------------------


def solve_by_enumeration(
    implementation: Program,
    cluster: Cluster,
    candidates: Mapping[Site, Sequence[LocalRepairCandidate]],
) -> tuple[dict[str, int], float] | None:
    """Solve the repair selection by enumerating total variable relations.

    Returns an assignment in the same variable naming scheme as the ILP
    encoding (so it can be decoded identically), or ``None`` when no
    consistent repair exists.  Exponential in the number of variables; used
    for cross-checking the ILP on small programs and for the solver ablation.
    """
    representative = cluster.representative
    impl_vars = variables_for_matching(implementation)
    rep_vars = variables_for_matching(representative)

    add_costs = {v: _addition_cost(representative, v) for v in rep_vars}
    del_costs = {v: _deletion_cost(implementation, v) for v in impl_vars}

    sites = list(candidates)
    best: tuple[float, dict[str, str], dict[Site, LocalRepairCandidate]] | None = None

    def site_choice(
        mapping: dict[str, str], site: Site
    ) -> LocalRepairCandidate | None:
        options = []
        for candidate in candidates[site]:
            if not site.fixed and mapping.get(site.var) != candidate.rep_var:
                continue
            consistent = all(
                mapping.get(impl_var) == rep_var for impl_var, rep_var in candidate.omega
            )
            if consistent:
                options.append(candidate)
        if not options:
            return None
        return min(options, key=lambda c: c.cost)

    def evaluate_mapping(mapping: dict[str, str]) -> None:
        nonlocal best
        used_rep = set(mapping.values())
        cost = 0.0
        cost += sum(add_costs[v] for v in rep_vars if v not in used_rep)
        cost += sum(del_costs[v] for v, target in mapping.items() if target == "-")
        chosen: dict[Site, LocalRepairCandidate] = {}
        for site in sites:
            if not site.fixed and mapping.get(site.var) == "-":
                continue
            candidate = site_choice(mapping, site)
            if candidate is None:
                return
            cost += candidate.cost
            chosen[site] = candidate
            if best is not None and cost >= best[0]:
                return
        if best is None or cost < best[0]:
            best = (cost, dict(mapping), chosen)

    def assign(index: int, mapping: dict[str, str], used: set[str]) -> None:
        if index == len(impl_vars):
            evaluate_mapping(mapping)
            return
        var = impl_vars[index]
        for rep_var in rep_vars:
            if rep_var in used:
                continue
            mapping[var] = rep_var
            used.add(rep_var)
            assign(index + 1, mapping, used)
            used.remove(rep_var)
        mapping[var] = "-"
        assign(index + 1, mapping, used)
        del mapping[var]

    assign(0, {}, set())
    if best is None:
        return None

    cost, mapping, chosen = best
    values: dict[str, int] = {}
    for impl_var, rep_var in mapping.items():
        if rep_var == "-":
            values[_del_var(impl_var)] = 1
        else:
            values[_pair_var(rep_var, impl_var)] = 1
    used_rep = {v for v in mapping.values() if v != "-"}
    for rep_var in rep_vars:
        if rep_var not in used_rep:
            values[_add_var(rep_var)] = 1
    # Re-use the ILP naming for selected candidates by rebuilding the index.
    index = 0
    for site, site_candidates in candidates.items():
        for candidate in site_candidates:
            name = _candidate_var(index)
            index += 1
            if chosen.get(site) is candidate:
                values[name] = 1
    return values, cost


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def repair_against_cluster(
    implementation: Program,
    cluster: Cluster,
    *,
    solver: str = "ilp",
    ilp_node_limit: int = 200_000,
    location_map: Mapping[int, int] | None = None,
    caches: "RepairCaches | None" = None,
    cost_bound: float | None = None,
) -> Repair | None:
    """Repair an implementation against one cluster (Fig. 5).

    Args:
        implementation: The parsed incorrect attempt.
        cluster: Cluster of correct solutions to draw expressions from.
        solver: ``"ilp"`` (default) or ``"enumerate"`` (exhaustive
            cross-check solver).
        ilp_node_limit: Branch-and-bound node budget for the ILP solver.
        location_map: Pre-computed structural match (Def. 4.1) between
            ``implementation`` and the cluster representative, e.g. from
            :meth:`repro.engine.cache.RepairCaches.structural_match`.  When
            omitted it is computed here.
        caches: Optional :class:`repro.engine.cache.RepairCaches`; provides
            the TED memo table, the compiled-expression cache, the ILP
            solve memo (:class:`repro.ilp.SolveCache`) and the per-phase
            profiler to candidate generation and solving.
        cost_bound: Branch-and-bound budget, the cost of the best repair
            found so far.  Candidates costing at least this much are pruned
            during generation, and the bound warm-starts the ILP solve as
            its initial incumbent (:func:`repro.ilp.solve_fast`); any
            repair *cheaper* than the bound is returned exactly as on the
            unpruned path, while a cluster whose cheapest repair reaches
            the bound may return a different same-or-costlier repair or
            ``None`` — callers comparing with a strict ``<``
            (:func:`find_best_repair`) are unaffected.

    Returns:
        The cheapest consistent repair, or ``None`` when the control flow
        does not match or no consistent repair exists.
    """
    start = time.perf_counter()
    ted_cache = caches.ted if caches is not None else None
    compile_cache = caches.compiled if caches is not None else None
    profiler = caches.profiler if caches is not None else None
    if location_map is None:
        location_map = structural_match(implementation, cluster.representative)
    if location_map is None:
        return None

    with profiled(profiler, "candidate_gen"):
        candidates = generate_local_repairs(
            implementation,
            cluster,
            location_map,
            ted_cache=ted_cache,
            compile_cache=compile_cache,
            cost_bound=cost_bound,
            profiler=profiler,
        )

    if solver == "enumerate":
        with profiled(profiler, "ilp"):
            solved = solve_by_enumeration(implementation, cluster, candidates)
        if solved is None:
            return None
        values, objective = solved
        indexed = _rebuild_index(candidates)
    elif solver == "ilp":
        problem, indexed = _build_ilp(implementation, cluster, candidates)
        solve_cache = caches.solve if caches is not None else None
        try:
            with profiled(profiler, "ilp"):
                solution = solve_fast(
                    problem,
                    node_limit=ilp_node_limit,
                    cache=solve_cache,
                    upper_bound=cost_bound,
                )
        except InfeasibleError:
            return None
        if solution is None:
            # Nothing beats the caller's bound: under the cost_bound
            # contract this cluster contributes no candidate repair.
            return None
        if profiler is not None:
            profiler.count("ilp_solves")
            profiler.count("ilp_nodes", solution.nodes_explored)
        values, objective = solution.values, solution.objective
    else:
        raise ValueError(f"unknown solver {solver!r}")

    repair = _decode_solution(
        values, implementation, cluster, location_map, indexed, objective
    )
    repair.solve_time = time.perf_counter() - start
    return repair


def _rebuild_index(
    candidates: Mapping[Site, Sequence[LocalRepairCandidate]],
) -> list[tuple[Site, LocalRepairCandidate, str]]:
    indexed = []
    counter = 0
    for site, site_candidates in candidates.items():
        for candidate in site_candidates:
            indexed.append((site, candidate, _candidate_var(counter)))
            counter += 1
    return indexed


def find_best_repair(
    implementation: Program,
    clusters: Sequence[Cluster],
    *,
    solver: str = "ilp",
    timeout: float | None = None,
    max_clusters: int | None = None,
    match_lookup: Callable[[Program, Program], Mapping[int, int] | None] | None = None,
    caches: "RepairCaches | None" = None,
    cost_bound: bool = True,
) -> Repair | None:
    """Run the repair algorithm against every cluster and keep the cheapest.

    Clusters are visited in decreasing size order (bigger clusters contain
    more expression variety and usually produce the smallest repairs first,
    improving both the effect of the timeout and the branch-and-bound
    pruning below), with ties broken by ascending ``cluster_id`` so the
    visit order — and therefore which clusters fit inside a timeout budget —
    is deterministic.

    With ``cost_bound`` (the default), the best cost found so far is
    threaded into each subsequent cluster's candidate generation as a
    branch-and-bound budget: candidates that cannot possibly beat it are
    dropped, and their tree-edit-distance DPs skipped, without ever changing
    the returned repair.  The argument: candidate costs are non-negative
    and additive, so any repair using a candidate of cost ≥ bound itself
    costs ≥ bound; since the selection below is *strict* (``<``), such a
    repair could never replace ``best`` — pruning it (or, transitively,
    returning ``None`` for a cluster whose repairs all reach the bound) is
    unobservable.  The same bound warm-starts each cluster's ILP solve as
    the branch-and-bound's initial incumbent (see
    :func:`repro.ilp.solve_fast`), pruning solver branches that cannot
    produce a winning repair; a warm-started solve that does beat the bound
    finds exactly the solution the cold solve would have (see
    :func:`repro.ilp.solver.solve`).  ``cost_bound=False`` keeps the
    exhaustive path alive for cross-checks and measurement
    (``benchmarks/test_repair_throughput.py`` asserts field-identical
    outcomes).

    Args:
        implementation: The parsed incorrect attempt.
        clusters: Candidate clusters of correct solutions.
        solver: Repair-selection solver, ``"ilp"`` or ``"enumerate"``.
        timeout: Wall-clock budget in seconds; cluster iteration stops once
            it is exceeded.
        max_clusters: Upper bound on the number of (largest) clusters tried.
        match_lookup: Structural-match provider ``(implementation,
            representative) -> location map or None``.  Defaults to
            ``caches.structural_match`` when ``caches`` is given (so each
            (attempt, cluster) pair is matched exactly once across the
            pipeline's gate check and the search), else to computing the
            match directly.
        caches: Optional :class:`repro.engine.cache.RepairCaches`; provides
            the structural-match memo, the TED memo and the profiler.
        cost_bound: Enable best-cost-so-far pruning (see above).

    Returns:
        The cheapest repair over all clusters, or ``None``.
    """
    if match_lookup is None:
        match_lookup = (
            caches.structural_match if caches is not None else structural_match
        )
    ordered = sorted(clusters, key=lambda c: (-c.size, c.cluster_id))
    if max_clusters is not None:
        ordered = ordered[:max_clusters]
    best: Repair | None = None
    start = time.perf_counter()
    for cluster in ordered:
        if timeout is not None and time.perf_counter() - start > timeout:
            break
        bound = best.cost if (cost_bound and best is not None) else None
        if bound is not None and bound <= 0:
            # Nothing can strictly beat a zero-cost repair.
            break
        location_map = match_lookup(implementation, cluster.representative)
        if location_map is None:
            continue
        repair = repair_against_cluster(
            implementation,
            cluster,
            solver=solver,
            location_map=location_map,
            caches=caches,
            cost_bound=bound,
        )
        if repair is None:
            continue
        if best is None or repair.cost < best.cost:
            best = repair
    return best
