"""Local repair generation (paper §5, Def. 5.1/5.4 and Fig. 5 lines 4-14).

For every location/variable pair of the implementation, a set of *local
repair candidates* is generated:

* ``(ω, •)`` candidates keep the implementation expression unchanged; they
  exist when the expression already matches the corresponding representative
  expression under some partial variable relation ω (cost 0);
* ``(ω, e)`` candidates replace the implementation expression with an
  expression ``e`` drawn from the cluster's expression pool, translated to
  range over implementation variables; their cost is the tree edit distance
  between the old and new expression.

Partial variable relations are enumerated only over the variables occurring
in the expression at hand (plus the assigned variable), which the paper notes
keeps the enumeration feasible.

The fast path (docs/ARCHITECTURE.md, "Repair fast path" and "Execution
fast path"):

* the representative expression's value at each trace visit is evaluated
  once per (location, variable) — via :meth:`Cluster.reference_values` —
  instead of once per candidate relation;
* candidate screening (Def. 4.5) evaluates candidates through the
  compiled-expression cache when one is threaded in
  (:class:`repro.interpreter.compile.CompileCache`, from
  ``RepairCaches.compiled``): each translated candidate compiles to a
  closure once and is then applied to every recorded pre-state, instead of
  re-walking its tree per visit.  ``compile_cache=None`` keeps the
  interpreted reference semantics (:func:`repro.interpreter.evaluate`),
  which benchmarks compare against;
* pool expressions carry precomputed indexes
  (:class:`repro.core.clustering.PoolEntryIndex`): their variable sets feed
  the relation enumeration, and their tree annotations are *renamed* (an
  O(n) label substitution, shape shared) to seed the TED cache for each
  translated candidate, so the Zhang–Shasha preprocessing never re-walks a
  pool expression;
* edit distances run through a :class:`repro.ted.TedCache` (annotation +
  distance memo), with an optional branch-and-bound ``cost_bound``: a
  candidate whose cost reaches the bound cannot be part of a repair
  cheaper than the best already found (costs are non-negative and
  additive), so it is dropped — and the TED DP itself is skipped whenever
  the cheap lower bound already reaches the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Iterable, Iterator, Mapping, Sequence

from ..interpreter.compile import CompileCache
from ..interpreter.evaluator import evaluate
from ..interpreter.values import values_equal
from ..model.expr import Expr, Var, intern_expr
from ..model.program import Program
from ..model.trace import Trace
from ..ted import TedCache, expr_edit_distance
from .clustering import Cluster, PoolEntryIndex
from .matching import FIXED_VARS, variables_for_matching
from .profile import PhaseProfiler, profiled

__all__ = [
    "LocalRepairCandidate",
    "expressions_match",
    "enumerate_partial_relations",
    "generate_local_repairs",
    "Site",
]

#: Guard against combinatorial blow-up when an expression mentions unusually
#: many variables (student code in intro courses rarely exceeds 3-4).
MAX_RELATIONS_PER_EXPRESSION = 4096


@dataclass(frozen=True)
class LocalRepairCandidate:
    """One possible local repair for an implementation site ``(loc, var)``.

    Attributes:
        loc_id: Implementation location.
        var: Implementation variable (the paper's ``v2``).
        rep_var: Related representative variable (the paper's ``v1``).
        omega: Partial variable relation, implementation variable →
            representative variable, restricted to non-fixed variables.
        new_expr: ``None`` to keep the implementation expression (the paper's
            ``•``); otherwise the replacement expression over implementation
            variables.
        cost: Tree edit distance between old and new expression (0 for keep).
        provenance: Indices of cluster members whose expressions produced
            this candidate (empty for keep candidates).
    """

    loc_id: int
    var: str
    rep_var: str
    omega: tuple[tuple[str, str], ...]
    new_expr: Expr | None
    cost: int
    provenance: frozenset[int] = frozenset()

    @property
    def keeps_original(self) -> bool:
        return self.new_expr is None


@dataclass(frozen=True)
class Site:
    """An implementation location/variable pair to be repaired."""

    loc_id: int
    var: str
    fixed: bool  # True when ``var`` is a fixed special variable


def expressions_match(
    candidate: Expr,
    reference: Expr,
    traces: Sequence[Trace],
    loc_id: int,
    *,
    compile_cache: CompileCache | None = None,
) -> bool:
    """Expression matching ``candidate ≃_{Γ,ℓ} reference`` (Def. 4.5).

    Both expressions must range over the representative's variables; they are
    evaluated on the pre-state of every visit to ``loc_id`` in the
    representative traces (via the per-location step index,
    :meth:`Trace.steps_at`).  With a ``compile_cache``, both expressions are
    compiled once and the closures applied per visit.
    """
    if candidate == reference:
        return True
    if compile_cache is not None:
        left_fn = compile_cache.fn(candidate)
        right_fn = compile_cache.fn(reference)
        for trace in traces:
            for step in trace.steps_at(loc_id):
                if not values_equal(left_fn(step.pre), right_fn(step.pre)):
                    return False
        return True
    for trace in traces:
        for step in trace.steps_at(loc_id):
            left = evaluate(candidate, step.pre)
            right = evaluate(reference, step.pre)
            if not values_equal(left, right):
                return False
    return True


def _matches_reference(
    candidate: Expr,
    reference: Expr,
    pre_states: Sequence,
    reference_values: Sequence,
    compile_cache: CompileCache | None = None,
) -> bool:
    """Def. 4.5 against precomputed reference values (the hoisted fast path).

    ``reference_values[i]`` is ``evaluate(reference, pre_states[i])``,
    computed once per (location, variable) by
    :meth:`Cluster.reference_values` instead of once per candidate.  With a
    ``compile_cache``, the candidate compiles to a closure once (a memo hit
    for every duplicate candidate across sites, attempts and clusters) and
    the closure runs per pre-state.
    """
    if candidate == reference:
        return True
    if compile_cache is not None:
        fn = compile_cache.fn(candidate)
        for pre, expected in zip(pre_states, reference_values):
            if not values_equal(fn(pre), expected):
                return False
        return True
    for pre, expected in zip(pre_states, reference_values):
        if not values_equal(evaluate(candidate, pre), expected):
            return False
    return True


def enumerate_partial_relations(
    source_vars: Iterable[str],
    targets: Sequence[str],
    forced: tuple[str, str],
) -> Iterator[dict[str, str]]:
    """Enumerate injective partial relations ``source → target``.

    ``forced`` pins the assigned variable's image (ω(v2) = v1).  Fixed special
    variables always map to themselves and are skipped from enumeration.  At
    most :data:`MAX_RELATIONS_PER_EXPRESSION` relations are produced.
    """
    forced_source, forced_target = forced
    free_sources: list[str] = []
    base: dict[str, str] = {}
    for var in dict.fromkeys(source_vars):
        if var == forced_source:
            continue
        if var in FIXED_VARS:
            base[var] = var
            continue
        free_sources.append(var)
    if forced_source in FIXED_VARS and forced_source != forced_target:
        return
    base[forced_source] = forced_target

    candidate_targets = [
        t for t in targets if t != forced_target and t not in FIXED_VARS
    ]
    if len(free_sources) > len(candidate_targets):
        return

    produced = 0
    for assignment in permutations(candidate_targets, len(free_sources)):
        relation = dict(base)
        relation.update(zip(free_sources, assignment))
        yield relation
        produced += 1
        if produced >= MAX_RELATIONS_PER_EXPRESSION:
            return


def _apply_relation(expr: Expr, relation: Mapping[str, str]) -> Expr:
    return expr.rename_vars(dict(relation))


def _invert(relation: Mapping[str, str]) -> dict[str, str]:
    return {target: source for source, target in relation.items()}


def sites_for(implementation: Program) -> list[Site]:
    """All location/variable sites of the implementation.

    Every matchable variable is considered at every location (missing updates
    are implicit identities); fixed special variables are only considered at
    locations where either the implementation or any cluster member assigns
    them -- handled by the caller, which passes the cluster.
    """
    sites: list[Site] = []
    variables = variables_for_matching(implementation)
    for loc_id in implementation.location_ids():
        for var in variables:
            sites.append(Site(loc_id, var, fixed=False))
    return sites


def generate_local_repairs(
    implementation: Program,
    cluster: Cluster,
    location_map: Mapping[int, int],
    *,
    ted_cache: TedCache | None = None,
    compile_cache: CompileCache | None = None,
    cost_bound: float | None = None,
    profiler: PhaseProfiler | None = None,
) -> dict[Site, list[LocalRepairCandidate]]:
    """Generate the candidate sets ``LR(ℓ, v)`` (Fig. 5, lines 4-14).

    Args:
        implementation: The incorrect attempt.
        cluster: Cluster to repair against (provides the representative, its
            traces and the expression pools).
        location_map: Structural matching π, implementation location →
            representative location.
        ted_cache: Memo table for tree-edit distances and annotations
            (defaults to the module-level cache of :mod:`repro.ted`).
        compile_cache: Compiled-expression memo used to screen candidates
            against the recorded pre-states; ``None`` evaluates
            interpretively (the reference path).
        cost_bound: Branch-and-bound budget — the cost of the best repair
            already found.  Candidates whose cost reaches it are dropped;
            repairs cheaper than the bound are unaffected (see
            :func:`repro.core.repair.find_best_repair`).
        profiler: Optional per-phase profiler (``ted`` phase + candidate
            counters).
    """
    representative = cluster.representative
    impl_vars = variables_for_matching(implementation)
    rep_vars = variables_for_matching(representative)

    candidates: dict[Site, list[LocalRepairCandidate]] = {}

    # Ordinary (non-fixed) variables: every location × variable site.
    for loc_id in implementation.location_ids():
        rep_loc = location_map[loc_id]
        for var in impl_vars:
            site = Site(loc_id, var, fixed=False)
            impl_expr = implementation.update_for(loc_id, var)
            site_candidates: list[LocalRepairCandidate] = []
            for rep_var in rep_vars:
                site_candidates.extend(
                    _candidates_for_target(
                        implementation,
                        cluster,
                        loc_id,
                        rep_loc,
                        var,
                        impl_expr,
                        rep_var,
                        rep_vars,
                        impl_vars,
                        ted_cache=ted_cache,
                        compile_cache=compile_cache,
                        cost_bound=cost_bound,
                        profiler=profiler,
                    )
                )
            candidates[site] = _dedupe(site_candidates)

    # Fixed special variables ($cond, $ret, $out, ...): they are related
    # identically, but their expressions still have to match and may need
    # repair (e.g. a wrong loop condition or a wrong return expression).
    fixed_vars = sorted(
        (set(implementation.variables) | set(representative.variables)) & FIXED_VARS
    )
    for loc_id in implementation.location_ids():
        rep_loc = location_map[loc_id]
        for var in fixed_vars:
            impl_expr = implementation.update_for(loc_id, var)
            rep_expr = representative.update_for(rep_loc, var)
            pool = cluster.expressions_for(rep_loc, var)
            if impl_expr == Var(var) and rep_expr == Var(var) and not pool:
                continue
            site = Site(loc_id, var, fixed=True)
            site_candidates = _candidates_for_target(
                implementation,
                cluster,
                loc_id,
                rep_loc,
                var,
                impl_expr,
                var,
                rep_vars,
                impl_vars,
                ted_cache=ted_cache,
                compile_cache=compile_cache,
                cost_bound=cost_bound,
                profiler=profiler,
            )
            candidates[site] = _dedupe(site_candidates)

    if profiler is not None:
        # Counter-only: the size of the ILP the solver fast path receives
        # (one indicator variable per surviving candidate, see
        # :func:`repro.core.repair._build_ilp`).  Deterministic per corpus,
        # so it may appear in committed reports.
        profiler.count(
            "candidates_generated",
            sum(len(site_candidates) for site_candidates in candidates.values()),
        )
    return candidates


def _candidates_for_target(
    implementation: Program,
    cluster: Cluster,
    loc_id: int,
    rep_loc: int,
    var: str,
    impl_expr: Expr,
    rep_var: str,
    rep_vars: Sequence[str],
    impl_vars: Sequence[str],
    *,
    ted_cache: TedCache | None,
    compile_cache: CompileCache | None,
    cost_bound: float | None,
    profiler: PhaseProfiler | None,
) -> list[LocalRepairCandidate]:
    """Candidates for one implementation site against one representative variable."""
    representative = cluster.representative
    rep_expr = representative.update_for(rep_loc, rep_var)
    pre_states = cluster.reference_pre_states(rep_loc)
    ref_values = cluster.reference_values(rep_loc, rep_var, compile_cache=compile_cache)
    out: list[LocalRepairCandidate] = []

    # Step 1 (Fig. 5, lines 9-11): keep the implementation expression if it
    # matches the representative expression under some partial relation.
    for relation in enumerate_partial_relations(
        impl_expr.variables() | {var}, rep_vars, forced=(var, rep_var)
    ):
        translated = _apply_relation(impl_expr, relation)
        if _matches_reference(
            translated, rep_expr, pre_states, ref_values, compile_cache
        ):
            out.append(
                LocalRepairCandidate(
                    loc_id=loc_id,
                    var=var,
                    rep_var=rep_var,
                    omega=_omega_items(relation),
                    new_expr=None,
                    cost=0,
                )
            )

    # Step 2 (Fig. 5, lines 12-14): take expressions from the cluster pool.
    pool = cluster.expressions_for(rep_loc, rep_var)
    if not pool and rep_expr == Var(rep_var):
        # The representative never assigns rep_var here: offer the identity
        # expression so that a spurious implementation assignment can be
        # dropped.
        out.extend(
            _identity_candidates(
                loc_id, var, rep_var, impl_expr, ted_cache, cost_bound, profiler
            )
        )
    if pool:
        pool_index = cluster.pool_index_for(rep_loc, rep_var)
        for entry, entry_index in zip(pool, pool_index):
            out.extend(
                _pool_candidates(
                    entry.expr,
                    entry_index,
                    entry.member_index,
                    loc_id,
                    rep_loc,
                    var,
                    impl_expr,
                    rep_var,
                    impl_vars,
                    ted_cache=ted_cache,
                    cost_bound=cost_bound,
                    profiler=profiler,
                )
            )
    return out


def _pool_candidates(
    expr: Expr,
    entry_index: PoolEntryIndex,
    member_index: int,
    loc_id: int,
    rep_loc: int,
    var: str,
    impl_expr: Expr,
    rep_var: str,
    impl_vars: Sequence[str],
    *,
    ted_cache: TedCache | None,
    cost_bound: float | None,
    profiler: PhaseProfiler | None,
) -> list[LocalRepairCandidate]:
    """Replacement candidates drawn from one pool expression."""
    out: list[LocalRepairCandidate] = []
    source_vars: Iterable[str] = entry_index.variables
    if rep_var not in entry_index.variables:
        source_vars = (*entry_index.variables, rep_var)
    for relation in enumerate_partial_relations(
        source_vars, impl_vars, forced=(rep_var, var)
    ):
        replacement = intern_expr(_apply_relation(expr, relation))
        if ted_cache is not None:
            # Derive the translated expression's annotation from the pool
            # index (labels substituted, shape shared) so the TED never has
            # to re-walk it.
            ted_cache.seed_annotation(
                replacement, entry_index.annotation.rename_vars(relation)
            )
        if profiler is None:  # innermost loop: skip the context-manager cost
            cost = expr_edit_distance(
                impl_expr, replacement, cache=ted_cache, budget=cost_bound
            )
        else:
            with profiler.phase("ted"):
                cost = expr_edit_distance(
                    impl_expr, replacement, cache=ted_cache, budget=cost_bound
                )
        if cost_bound is not None and cost >= cost_bound:
            # A repair using this candidate costs at least ``cost`` —
            # already no better than the best repair found so far.
            continue
        out.append(
            LocalRepairCandidate(
                loc_id=loc_id,
                var=var,
                rep_var=rep_var,
                omega=_omega_items(_invert(relation)),
                new_expr=replacement,
                cost=cost,
                provenance=frozenset({member_index}),
            )
        )
    return out


def _identity_candidates(
    loc_id: int,
    var: str,
    rep_var: str,
    impl_expr: Expr,
    ted_cache: TedCache | None = None,
    cost_bound: float | None = None,
    profiler: PhaseProfiler | None = None,
) -> list[LocalRepairCandidate]:
    """Offer "remove this assignment" when the representative has none."""
    identity = Var(var)
    if impl_expr == identity:
        return []
    with profiled(profiler, "ted"):
        cost = expr_edit_distance(
            impl_expr, identity, cache=ted_cache, budget=cost_bound
        )
    if cost_bound is not None and cost >= cost_bound:
        return []
    return [
        LocalRepairCandidate(
            loc_id=loc_id,
            var=var,
            rep_var=rep_var,
            omega=((var, rep_var),) if var not in FIXED_VARS else (),
            new_expr=identity,
            cost=cost,
        )
    ]


def _omega_items(relation: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    """Normalise a relation to sorted items, dropping fixed self-mappings."""
    items = [
        (source, target)
        for source, target in relation.items()
        if source not in FIXED_VARS
    ]
    return tuple(sorted(items))


def _dedupe(
    candidates: Sequence[LocalRepairCandidate],
) -> list[LocalRepairCandidate]:
    """Remove duplicates, keeping the cheapest candidate per (rep_var, ω, expr)."""
    best: dict[tuple, LocalRepairCandidate] = {}
    for candidate in candidates:
        key = (candidate.rep_var, candidate.omega, candidate.new_expr)
        existing = best.get(key)
        if existing is None or candidate.cost < existing.cost:
            best[key] = candidate
    return sorted(best.values(), key=lambda c: c.cost)
