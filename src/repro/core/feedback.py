"""Textual feedback generation (paper §6.1 "Feedback generation").

The tool in the paper outputs "the location and a textual description of the
required modifications", very much like the examples in Fig. 2(g)/(h) and
Figs. 8-10 of the appendix.  For very large repairs the user study (§6.3,
"Note") falls back to a generic strategy message because detailed feedback on
an essentially rewritten program is not useful; we reproduce that behaviour
with the same default cost threshold (100).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.expr import render_expression
from ..model.program import Program
from .repair import Repair, RepairAction

__all__ = ["FeedbackItem", "Feedback", "generate_feedback", "GENERIC_FEEDBACK_THRESHOLD"]

#: Repairs costlier than this produce generic strategy feedback (paper §6.3).
GENERIC_FEEDBACK_THRESHOLD = 100

_GENERIC_MESSAGE = (
    "Your attempt is quite far from a working solution. Re-read the problem "
    "statement, start from the overall structure (input, loop, output), and "
    "test your program on the provided examples step by step."
)


@dataclass(frozen=True)
class FeedbackItem:
    """One feedback sentence tied to a source location."""

    message: str
    line: int | None = None

    def __str__(self) -> str:
        return self.message


@dataclass
class Feedback:
    """Feedback shown to the student for one attempt."""

    items: list[FeedbackItem]
    generic: bool
    cost: float

    def text(self) -> str:
        return "\n".join(f"{i + 1}. {item.message}" for i, item in enumerate(self.items))

    @property
    def is_repair_based(self) -> bool:
        return not self.generic


def _describe_location(action: RepairAction) -> str:
    names = {
        "entry": "at the beginning of the function",
        "loop-cond": "in the loop condition",
        "loop-body": "inside the loop body",
        "after-loop": "after the loop",
        "if-cond": "in the branch condition",
        "if-then": "in the then-branch",
        "if-else": "in the else-branch",
        "if-join": "after the if statement",
    }
    where = names.get(action.location_name, f"at location {action.loc_id}")
    if action.line is not None:
        return f"{where} (around line {action.line})"
    return where


def _describe_variable(action: RepairAction) -> str:
    if action.var == "$ret":
        return "the return value"
    if action.var == "$cond":
        return "the condition"
    if action.var == "$out":
        return "the printed output"
    if action.var.startswith("$iter"):
        return "the loop iterator expression"
    return f"variable '{action.var}'"


def describe_action(action: RepairAction) -> FeedbackItem:
    """Render a single repair action as a feedback sentence."""
    target = _describe_variable(action)
    where = _describe_location(action)
    if action.kind == "modify":
        if action.old_expr is None:
            message = (
                f"Add an assignment to {target} {where}: "
                f"{render_expression(action.new_expr)}."
            )
        else:
            message = (
                f"In the expression for {target} {where}, change "
                f"{render_expression(action.old_expr)} to "
                f"{render_expression(action.new_expr)}."
            )
    elif action.kind == "remove-assignment":
        message = f"Remove the assignment to {target} {where}."
    elif action.kind == "add":
        message = (
            f"Add a new variable '{action.var}' with the assignment "
            f"{action.var} = {render_expression(action.new_expr)} {where}."
        )
    elif action.kind == "delete":
        message = f"Delete the assignment to {target} {where}; it is not needed."
    else:  # pragma: no cover - defensive
        message = f"Adjust {target} {where}."
    return FeedbackItem(message=message, line=action.line)


def generate_feedback(
    repair: Repair,
    program: Program | None = None,
    *,
    generic_threshold: float = GENERIC_FEEDBACK_THRESHOLD,
) -> Feedback:
    """Turn a repair into student-facing feedback.

    Args:
        repair: The minimal repair found by the pipeline.
        program: The original (incorrect) program; reserved for richer
            feedback rendering.
        generic_threshold: Cost above which a generic strategy message is
            produced instead of per-expression feedback (§2.2's guard
            against overwhelming suggestions).

    Returns:
        A :class:`Feedback` whose ``items`` hold one located, numbered
        instruction per repair action — or a single generic strategy hint
        when the repair cost exceeds ``generic_threshold``.

    Thread safety: a pure function of its arguments; safe to call from any
    thread.  The returned ``Feedback`` is shared by the repair memo across
    duplicate attempts and must be treated as immutable.
    """
    if repair.cost > generic_threshold:
        return Feedback(
            items=[FeedbackItem(_GENERIC_MESSAGE)], generic=True, cost=repair.cost
        )
    if not repair.actions:
        return Feedback(
            items=[FeedbackItem("Your program already matches a correct solution.")],
            generic=False,
            cost=repair.cost,
        )
    items = [describe_action(action) for action in repair.actions]
    return Feedback(items=items, generic=False, cost=repair.cost)
