"""Per-phase profiling of the repair pipeline (``repro-clara batch --profile``).

A :class:`PhaseProfiler` accumulates wall-clock time and call counts per
pipeline phase — ``parse``, ``exec``, ``match``, ``candidate_gen``, ``ted``
and ``ilp`` — across every attempt of a batch run.  The ``exec`` phase
covers Def. 3.5 trace execution (the compiled fast path of
:mod:`repro.interpreter`); its companion ``exec_steps`` counter records how
many location steps those executions took.  The ``ilp`` phase covers repair
selection solves (:func:`repro.ilp.solve_fast`), with counter-only
companions ``ilp_solves`` (solves that produced a solution), ``ilp_nodes``
(branch-and-bound nodes those solves explored — zero for memo hits and
degenerate assignment dispatches) and ``candidates_generated`` (indicator
variables handed to the solver).  It is attached to the
pipeline's :class:`repro.engine.cache.RepairCaches` (``caches.profiler``)
and threaded from there into the repair core, so instrumentation costs
nothing when no profiler is attached (the common case): every hook goes
through :func:`profiled`, which is a no-op for ``profiler=None``.

Counters are deterministic for a given corpus and single-worker run, which
is what the CI fast-tests exercise; timings are machine-dependent and only
ever written to the gitignored ``results/local/``.

Profilers are mergeable: :meth:`PhaseProfiler.merge` sums two accumulators
field by field (commutative, with a fresh profiler as the identity) and
:meth:`PhaseProfiler.diff` subtracts one snapshot from another.  The
process-parallel batch engine (:mod:`repro.engine.parallel`) relies on
merge to fold per-worker profiler payloads — shipped across the pipe as
:meth:`as_dict` / :meth:`from_dict` — into one report whose *counters*
equal the single-process run exactly.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseProfiler", "profiled", "PHASES"]

#: Canonical phase order for reports.
PHASES = ("parse", "exec", "match", "candidate_gen", "ted", "ilp")


class PhaseProfiler:
    """Thread-safe accumulator of per-phase timings and call counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Record ``seconds`` of work (and ``calls`` invocations) for a phase."""
        with self._lock:
            self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
            self._calls[phase] = self._calls.get(phase, 0) + calls

    def count(self, phase: str, calls: int = 1) -> None:
        """Record invocations without timing (counter-only instrumentation).

        Counter-only phases (e.g. ``exec_steps``) never appear in
        :meth:`timings`, so reports don't list spurious 0-second phases.
        """
        with self._lock:
            self._calls[phase] = self._calls.get(phase, 0) + calls

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block of work under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    # -- reports ---------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Timing-free call counts per phase (deterministic for a corpus)."""
        with self._lock:
            ordered = [p for p in PHASES if p in self._calls]
            ordered += sorted(set(self._calls) - set(PHASES))
            return {phase: self._calls[phase] for phase in ordered}

    def timings(self) -> dict[str, float]:
        """Accumulated wall-clock seconds per phase (machine-dependent)."""
        with self._lock:
            ordered = [p for p in PHASES if p in self._seconds]
            ordered += sorted(set(self._seconds) - set(PHASES))
            return {phase: round(self._seconds[phase], 6) for phase in ordered}

    def as_dict(self) -> dict:
        """``{"counters": {...}, "timings": {...}}`` for JSON reports."""
        return {"counters": self.counters(), "timings": self.timings()}

    # -- algebra ---------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: dict) -> "PhaseProfiler":
        """Rebuild a profiler from an :meth:`as_dict` payload.

        The inverse of :meth:`as_dict` (modulo its 6-decimal timing
        rounding); this is how per-worker profilers cross the process
        boundary in :mod:`repro.engine.parallel`.  Unknown payload shapes
        (missing keys) read as empty sections.
        """
        profiler = cls()
        for phase, seconds in (payload.get("timings") or {}).items():
            profiler._seconds[phase] = float(seconds)
        for phase, calls in (payload.get("counters") or {}).items():
            profiler._calls[phase] = int(calls)
        return profiler

    def merge(self, other: "PhaseProfiler") -> "PhaseProfiler":
        """Return a new profiler with both operands' phases summed.

        Commutative (``a.merge(b)`` equals ``b.merge(a)``) with a fresh
        profiler as the identity, so folding any permutation of per-worker
        profilers yields the same counters — the property the
        process-parallel batch merge rests on.  Neither operand is
        mutated.
        """
        merged = PhaseProfiler()
        with self._lock:
            merged._seconds.update(self._seconds)
            merged._calls.update(self._calls)
        with other._lock:
            for phase, seconds in other._seconds.items():
                merged._seconds[phase] = merged._seconds.get(phase, 0.0) + seconds
            for phase, calls in other._calls.items():
                merged._calls[phase] = merged._calls.get(phase, 0) + calls
        return merged

    def diff(self, other: "PhaseProfiler") -> "PhaseProfiler":
        """Return a new profiler holding ``self - other`` per phase.

        The inverse of :meth:`merge` (``a.merge(b).diff(b)`` reports the
        same values as ``a``): use it to isolate the work done between two
        snapshots.  Phases that cancel to exactly zero are pruned — so the
        inverse law holds even for phases only ``other`` knew — while a
        *negative* residue is kept visible rather than silently dropped.
        Neither operand is mutated.
        """
        result = PhaseProfiler()
        with self._lock:
            result._seconds.update(self._seconds)
            result._calls.update(self._calls)
        with other._lock:
            for phase, seconds in other._seconds.items():
                result._seconds[phase] = result._seconds.get(phase, 0.0) - seconds
            for phase, calls in other._calls.items():
                result._calls[phase] = result._calls.get(phase, 0) - calls
        result._seconds = {p: s for p, s in result._seconds.items() if s != 0.0}
        result._calls = {p: c for p, c in result._calls.items() if c != 0}
        return result


@contextmanager
def profiled(profiler: PhaseProfiler | None, name: str) -> Iterator[None]:
    """Time a block under ``name`` when a profiler is attached; else no-op."""
    if profiler is None:
        yield
        return
    with profiler.phase(name):
        yield
