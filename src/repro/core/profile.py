"""Per-phase profiling of the repair pipeline (``repro-clara batch --profile``).

A :class:`PhaseProfiler` accumulates wall-clock time and call counts per
pipeline phase — ``parse``, ``exec``, ``match``, ``candidate_gen``, ``ted``
and ``ilp`` — across every attempt of a batch run.  The ``exec`` phase
covers Def. 3.5 trace execution (the compiled fast path of
:mod:`repro.interpreter`); its companion ``exec_steps`` counter records how
many location steps those executions took.  The ``ilp`` phase covers repair
selection solves (:func:`repro.ilp.solve_fast`), with counter-only
companions ``ilp_solves`` (solves that produced a solution), ``ilp_nodes``
(branch-and-bound nodes those solves explored — zero for memo hits and
degenerate assignment dispatches) and ``candidates_generated`` (indicator
variables handed to the solver).  It is attached to the
pipeline's :class:`repro.engine.cache.RepairCaches` (``caches.profiler``)
and threaded from there into the repair core, so instrumentation costs
nothing when no profiler is attached (the common case): every hook goes
through :func:`profiled`, which is a no-op for ``profiler=None``.

Counters are deterministic for a given corpus and single-worker run, which
is what the CI fast-tests exercise; timings are machine-dependent and only
ever written to the gitignored ``results/local/``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseProfiler", "profiled", "PHASES"]

#: Canonical phase order for reports.
PHASES = ("parse", "exec", "match", "candidate_gen", "ted", "ilp")


class PhaseProfiler:
    """Thread-safe accumulator of per-phase timings and call counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Record ``seconds`` of work (and ``calls`` invocations) for a phase."""
        with self._lock:
            self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
            self._calls[phase] = self._calls.get(phase, 0) + calls

    def count(self, phase: str, calls: int = 1) -> None:
        """Record invocations without timing (counter-only instrumentation).

        Counter-only phases (e.g. ``exec_steps``) never appear in
        :meth:`timings`, so reports don't list spurious 0-second phases.
        """
        with self._lock:
            self._calls[phase] = self._calls.get(phase, 0) + calls

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block of work under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    # -- reports ---------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Timing-free call counts per phase (deterministic for a corpus)."""
        with self._lock:
            ordered = [p for p in PHASES if p in self._calls]
            ordered += sorted(set(self._calls) - set(PHASES))
            return {phase: self._calls[phase] for phase in ordered}

    def timings(self) -> dict[str, float]:
        """Accumulated wall-clock seconds per phase (machine-dependent)."""
        with self._lock:
            ordered = [p for p in PHASES if p in self._seconds]
            ordered += sorted(set(self._seconds) - set(PHASES))
            return {phase: round(self._seconds[phase], 6) for phase in ordered}

    def as_dict(self) -> dict:
        """``{"counters": {...}, "timings": {...}}`` for JSON reports."""
        return {"counters": self.counters(), "timings": self.timings()}


@contextmanager
def profiled(profiler: PhaseProfiler | None, name: str) -> Iterator[None]:
    """Time a block under ``name`` when a profiler is attached; else no-op."""
    if profiler is None:
        yield
        return
    with profiler.phase(name):
        yield
