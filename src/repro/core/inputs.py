"""Test inputs and correctness checking.

The paper distinguishes correct from incorrect attempts "by running them on a
set of inputs, and comparing their output to the expected output" (§1,
footnote 1).  :class:`InputCase` is one such input together with the expected
observable behaviour: a return value (Python assignments) and/or printed
output (C assignments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..interpreter.compile import CompileCache
from ..interpreter.executor import (
    ExecutionLimits,
    ExecutionPlan,
    execute,
    printed_output,
    returned_value,
)
from ..interpreter.values import is_undef, values_equal
from ..model.expr import VAR_STDIN
from ..model.program import Program
from ..model.trace import Trace

__all__ = [
    "InputCase",
    "run_case",
    "passes_case",
    "trace_passes_case",
    "is_correct",
    "program_traces",
]

#: Marker meaning "this case does not constrain that observable".
_UNCONSTRAINED = object()


@dataclass(frozen=True)
class InputCase:
    """One test input with its expected behaviour.

    Attributes:
        args: Positional arguments bound to the program's parameters.
        stdin: Values available to ``scanf``-style reads (C programs).
        expected_return: Expected return value, or unconstrained.
        expected_output: Expected printed output, or unconstrained.
    """

    args: tuple = ()
    stdin: tuple = ()
    expected_return: object = _UNCONSTRAINED
    expected_output: object = _UNCONSTRAINED

    def memory_for(self, program: Program) -> dict[str, object]:
        """Bind the case to a program's parameters (positionally)."""
        memory: dict[str, object] = {}
        for name, value in zip(program.params, self.args):
            memory[name] = value
        if self.stdin:
            memory[VAR_STDIN] = list(self.stdin)
        return memory

    def checks_return(self) -> bool:
        return self.expected_return is not _UNCONSTRAINED

    def checks_output(self) -> bool:
        return self.expected_output is not _UNCONSTRAINED

    def describe(self) -> str:
        parts = []
        if self.args:
            parts.append(", ".join(repr(a) for a in self.args))
        if self.stdin:
            parts.append(f"stdin={list(self.stdin)!r}")
        return "(" + "; ".join(parts) + ")"


def run_case(
    program: Program,
    case: InputCase,
    limits: ExecutionLimits | None = None,
    *,
    plan: ExecutionPlan | None = None,
    compile_cache: CompileCache | None = None,
) -> Trace:
    """Execute ``program`` on one case and return the trace.

    A precompiled ``plan`` may be passed when the caller runs the same
    program on many cases (see :func:`program_traces`); ``compile_cache``
    selects the compile memo used when building a plan here.
    """
    return execute(
        program,
        case.memory_for(program),
        limits,
        plan=plan,
        compile_cache=compile_cache,
    )


def passes_case(
    program: Program,
    case: InputCase,
    limits: ExecutionLimits | None = None,
    *,
    plan: ExecutionPlan | None = None,
    compile_cache: CompileCache | None = None,
) -> bool:
    """Return ``True`` when the program's behaviour matches the case."""
    trace = run_case(program, case, limits, plan=plan, compile_cache=compile_cache)
    return trace_passes_case(trace, case)


def trace_passes_case(trace: Trace, case: InputCase) -> bool:
    """Check an already computed trace against a case's expectations.

    Separated from :func:`passes_case` so callers holding cached traces
    (:class:`repro.engine.cache.RepairCaches`) can re-check without
    re-executing.
    """
    if trace.aborted:
        return False
    if case.checks_return():
        actual = returned_value(trace)
        if is_undef(actual) or not values_equal(actual, case.expected_return):
            return False
    if case.checks_output():
        if printed_output(trace) != case.expected_output:
            return False
    return True


def is_correct(
    program: Program,
    cases: Sequence[InputCase],
    limits: ExecutionLimits | None = None,
    *,
    compile_cache: CompileCache | None = None,
) -> bool:
    """A program is correct when it passes every case."""
    plan = ExecutionPlan.for_program(program, cache=compile_cache)
    return all(passes_case(program, case, limits, plan=plan) for case in cases)


def program_traces(
    program: Program,
    cases: Sequence[InputCase],
    limits: ExecutionLimits | None = None,
    *,
    compile_cache: CompileCache | None = None,
) -> list[Trace]:
    """Execute a program on every case, returning one trace per case.

    Used by matching, clustering and the engine's trace cache; the returned
    list is parallel to ``cases``.  The program's update expressions are
    compiled once (through ``compile_cache``, defaulting to the
    process-wide cache) and the resulting plan is shared across cases.
    """
    plan = ExecutionPlan.for_program(program, cache=compile_cache)
    return [run_case(program, case, limits, plan=plan) for case in cases]
