"""Clustering of correct student solutions (paper §4, Def. 4.7).

Clusters are the equivalence classes of the matching relation ``∼_I``.  The
clusterer processes correct programs one by one; on a match the program
joins the cluster and its expressions (translated into the representative's
variables via the matching witness) are added to the cluster's expression
pools ``E_C(ℓ, v)``, which the repair algorithm later draws from.

Scaling (``repro.clusterstore``): instead of attempting the full dynamic
matching of Fig. 4 against *every* existing representative — O(n × clusters)
expensive matches — programs are sharded into buckets by a cheap
matching-invariant fingerprint (control-flow skeleton + variable-arity +
output-trace signature, see :mod:`repro.clusterstore.fingerprint`).  Two
programs in different buckets can never match, so each program only runs
full matches against the representatives of its own bucket, and buckets can
be clustered concurrently.  The final clustering is *identical* to the
exhaustive sequential one: clusters are merged deterministically in order
of their first member's original index, and members keep their original
relative order.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..interpreter.compile import CompileCache
from ..interpreter.evaluator import evaluate
from ..model.expr import Expr, intern_expr
from ..model.program import Program
from ..model.trace import Trace
from ..ted import AnnotatedTree
from .inputs import InputCase, program_traces
from .matching import MatchResult, find_matching

if TYPE_CHECKING:  # pragma: no cover - engine imports core; annotation only
    from ..engine.cache import RepairCaches

__all__ = [
    "ClusterExpression",
    "PoolEntryIndex",
    "Cluster",
    "ClusteringResult",
    "ClusteringStats",
    "cluster_programs",
]


@dataclass(frozen=True)
class ClusterExpression:
    """An expression contributed to a pool, with provenance.

    Attributes:
        expr: The expression, already translated to range over the
            representative's variables.
        member_index: Index (within the cluster's ``members`` list) of the
            solution the expression came from.
    """

    expr: Expr
    member_index: int


@dataclass(frozen=True)
class PoolEntryIndex:
    """Precomputed per-pool-expression data consumed by the repair fast path.

    Everything candidate generation needs about a pool expression *besides*
    the expression itself: its size, the variables it mentions (drives the
    partial-relation enumeration), a stable shape digest (persisted by the
    cluster store for integrity/debugging), and its Zhang–Shasha annotation
    — from which the annotation of any variable *renaming* of the
    expression is derived in O(n) (:meth:`AnnotatedTree.rename_vars`),
    because renaming never changes tree shape.
    """

    shape_key: str
    size: int
    variables: tuple[str, ...]
    annotation: AnnotatedTree

    @classmethod
    def from_expr(cls, expr: Expr) -> "PoolEntryIndex":
        interned = intern_expr(expr)
        annotation = AnnotatedTree.from_expr(interned)
        digest = hashlib.sha256(
            repr(interned.structural_key()).encode()
        ).hexdigest()
        return cls(
            shape_key=digest,
            size=len(annotation),
            variables=tuple(sorted(interned.variables())),
            annotation=annotation,
        )


@dataclass
class Cluster:
    """One equivalence class of ``∼_I`` with its representative and pools."""

    cluster_id: int
    representative: Program
    representative_traces: list[Trace]
    members: list[Program] = field(default_factory=list)
    #: ``(loc_id, var) -> list of distinct expressions`` over representative
    #: variables (the paper's ``E_C(ℓ, v)``).
    expressions: dict[tuple[int, str], list[ClusterExpression]] = field(
        default_factory=dict
    )
    #: Hex digest of the members' shared fingerprint
    #: (:class:`repro.clusterstore.fingerprint.Fingerprint`), populated when
    #: clustering runs with pruning enabled and persisted by the cluster
    #: store.  Informational: matching never consults it.
    fingerprint_digest: str | None = None
    #: Runtime caches (never serialized, excluded from comparisons).  Lazily
    #: built, idempotent and derived purely from immutable inputs, so racing
    #: rebuilds by batch workers are benign duplicate work.
    _pool_indexes: dict[tuple[int, str], list[PoolEntryIndex]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _pre_state_cache: dict[int, tuple] = field(
        default_factory=dict, repr=False, compare=False
    )
    _ref_value_cache: dict[tuple[int, str], tuple] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def size(self) -> int:
        return len(self.members)

    def expressions_for(self, loc_id: int, var: str) -> list[ClusterExpression]:
        return self.expressions.get((loc_id, var), [])

    def distinct_expression_count(self, loc_id: int, var: str) -> int:
        return len(self.expressions_for(loc_id, var))

    def add_member(self, program: Program, witness: MatchResult) -> None:
        """Add a member and merge its expressions into the pools.

        ``witness`` maps the member's variables/locations to the
        representative's.  Translated expressions are interned so identical
        expressions contributed by different members share one object (and
        one cached hash/annotation).
        """
        member_index = len(self.members)
        self.members.append(program)
        rename = dict(witness.variable_map)
        for member_loc, member_location in program.locations.items():
            rep_loc = witness.location_map[member_loc]
            for var, expr in member_location.updates.items():
                rep_var = rename.get(var, var)
                translated = intern_expr(expr.rename_vars(rename))
                key = (rep_loc, rep_var)
                pool = self.expressions.setdefault(key, [])
                if all(existing.expr != translated for existing in pool):
                    pool.append(ClusterExpression(translated, member_index))

    # -- fast-path indexes (see docs/ARCHITECTURE.md "Repair fast path") -------

    def pool_index_for(self, loc_id: int, var: str) -> list[PoolEntryIndex]:
        """Per-entry index of the pool at ``(loc_id, var)``, built lazily.

        Parallel to :meth:`expressions_for`.  A stale cache (the pool grew
        via :meth:`add_member`, or was filtered by the representative-only
        ablation) is detected by length — pool lists are append-or-replace,
        never mutated in place — and rebuilt.
        """
        key = (loc_id, var)
        pool = self.expressions.get(key, [])
        index = self._pool_indexes.get(key)
        if index is None or len(index) != len(pool):
            index = [PoolEntryIndex.from_expr(entry.expr) for entry in pool]
            self._pool_indexes[key] = index
        return index

    def build_pool_indexes(self) -> dict[tuple[int, str], list[PoolEntryIndex]]:
        """Materialize indexes for every pool (cluster-build/persist time)."""
        return {key: self.pool_index_for(*key) for key in self.expressions}

    def seed_pool_index(
        self, loc_id: int, var: str, index: list[PoolEntryIndex]
    ) -> None:
        """Install a precomputed pool index (used by the cluster-store loader)."""
        self._pool_indexes[(loc_id, var)] = index

    def reset_runtime_caches(self) -> None:
        """Drop lazily built indexes and value caches (pools changed)."""
        self._pool_indexes.clear()
        self._pre_state_cache.clear()
        self._ref_value_cache.clear()

    def reference_pre_states(self, loc_id: int) -> tuple:
        """Pre-states of every representative-trace visit to ``loc_id``.

        Visits come from each trace's per-location step index
        (:meth:`repro.model.trace.Trace.steps_at`) instead of a full scan.
        """
        states = self._pre_state_cache.get(loc_id)
        if states is None:
            states = tuple(
                step.pre
                for trace in self.representative_traces
                for step in trace.steps_at(loc_id)
            )
            self._pre_state_cache[loc_id] = states
        return states

    def reference_values(
        self, loc_id: int, var: str, *, compile_cache: CompileCache | None = None
    ) -> tuple:
        """Representative expression values at each visit to ``loc_id``.

        ``evaluate(representative.update_for(loc_id, var), pre)`` for every
        pre-state of :meth:`reference_pre_states` — hoisted out of the
        per-candidate matching loop of Def. 4.5, where it used to be
        recomputed identically for every candidate at a site.  With a
        ``compile_cache`` the expression is compiled once and the closure
        applied per pre-state; the values are identical either way (the two
        evaluators are semantics-equivalent by construction and by test),
        so the memoized tuple is shared between callers regardless of which
        path filled it.
        """
        key = (loc_id, var)
        values = self._ref_value_cache.get(key)
        if values is None:
            expr = self.representative.update_for(loc_id, var)
            if compile_cache is not None:
                fn = compile_cache.fn(expr)
                values = tuple(
                    fn(pre) for pre in self.reference_pre_states(loc_id)
                )
            else:
                values = tuple(
                    evaluate(expr, pre) for pre in self.reference_pre_states(loc_id)
                )
            self._ref_value_cache[key] = values
        return values

    def pool_signature(self) -> dict[tuple[int, str], list[tuple[str, int]]]:
        """Comparable view of the pools: rendered expression + provenance.

        Two clusters with equal signatures draw from identical expression
        pools; tests and benchmarks use this (via
        :meth:`ClusteringResult.signature`) to assert that pruned, parallel
        and persisted clusterings are *identical* to the exhaustive one.
        """
        return {
            key: [(str(entry.expr), entry.member_index) for entry in pool]
            for key, pool in self.expressions.items()
        }


@dataclass
class ClusteringStats:
    """Deterministic counters describing one clustering run.

    ``full_matches`` counts invocations of the full dynamic-matching
    procedure (Fig. 4) — the expensive step pruning exists to avoid.
    Comparing the counter between a pruned and an exhaustive run of the same
    corpus measures the saving (``benchmarks/test_clustering_scale.py``).
    """

    programs: int = 0
    clusters: int = 0
    full_matches: int = 0
    #: Number of distinct fingerprint buckets (1 when pruning is off).
    buckets: int = 0
    #: Bucket sizes in descending order.
    bucket_sizes: list[int] = field(default_factory=list)


@dataclass
class ClusteringResult:
    """Clusters plus per-program failure diagnostics."""

    clusters: list[Cluster]
    #: Programs that could not be clustered (index, reason).  Indices refer
    #: to the iterable passed to :func:`cluster_programs`; callers that
    #: filter their inputs first (``Clara.add_correct_sources``) translate
    #: them back to positions in the caller-supplied list.
    failures: list[tuple[int, str]] = field(default_factory=list)
    stats: ClusteringStats = field(default_factory=ClusteringStats)

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def total_members(self) -> int:
        return sum(cluster.size for cluster in self.clusters)

    def sorted_by_size(self) -> list[Cluster]:
        return sorted(self.clusters, key=lambda c: (-c.size, c.cluster_id))

    def signature(self) -> list[tuple[int, int, dict]]:
        """Order-sensitive comparable view of the whole clustering."""
        return [
            (cluster.cluster_id, cluster.size, cluster.pool_signature())
            for cluster in self.clusters
        ]


def _identity_witness(program: Program) -> MatchResult:
    return MatchResult(
        variable_map={v: v for v in program.variables},
        location_map={lid: lid for lid in program.location_ids()},
    )


def _canonical_order(program: Program) -> tuple[int, ...] | None:
    """Canonical location order, or ``None`` when not fully reachable."""
    order, _skeleton = program.cfg_skeleton()
    return order if len(order) == len(program.locations) else None


def _cluster_bucket(
    items: Sequence[tuple[int, Program, list[Trace]]],
    cases: Sequence[InputCase],
    *,
    shared_skeleton: bool = False,
    prefilter: bool = True,
) -> tuple[list[tuple[int, Cluster]], int]:
    """Cluster one fingerprint bucket sequentially.

    Returns ``(clusters, full_match_calls)`` where each cluster is tagged
    with its first member's original index (the deterministic merge key).
    Programs arrive in original order, so member order and
    first-match-wins semantics are exactly those of the exhaustive loop.

    With ``shared_skeleton`` (fingerprint buckets) every pair of fully
    reachable programs in the bucket is structurally matchable by
    construction, and the Def. 4.1 witness is the correspondence of their
    canonical CFG orders — it is handed to :func:`find_matching` so the
    lockstep structural walk runs zero times inside a bucket.

    With ``prefilter`` (default), existing clusters are *tried* in
    nearest-first feature-vector order (:mod:`repro.retrieval`) instead of
    creation order.  ``∼_I`` is an equivalence relation, so at most one
    cluster can accept any program — reordering a first-match-wins scan
    cannot change which cluster that is, it only lets the scan stop after
    ~1 full match instead of ~half the bucket.  ``full_match_calls`` still
    counts every :func:`find_matching` invocation actually made.
    """
    from ..retrieval import DEFAULT_TOP_K, cluster_feature_vector, feature_vector, ranked_candidates

    clusters: list[tuple[int, Cluster, tuple[int, ...] | None]] = []
    match_calls = 0
    for index, program, traces in items:
        order = _canonical_order(program) if shared_skeleton else None
        placed = False
        if prefilter and len(clusters) > 1:
            scan = ranked_candidates(
                feature_vector(program),
                clusters,
                lambda entry: cluster_feature_vector(entry[1]),
                top_k=DEFAULT_TOP_K,
            )
        else:
            scan = clusters
        for _, cluster, rep_order in scan:
            match_calls += 1
            location_map = (
                dict(zip(order, rep_order))
                if order is not None and rep_order is not None
                else None
            )
            witness = find_matching(
                program,
                cluster.representative,
                cases,
                query_traces=traces,
                base_traces=cluster.representative_traces,
                location_map=location_map,
            )
            if witness is not None:
                cluster.add_member(program, witness)
                placed = True
                break
        if placed:
            continue
        cluster = Cluster(
            cluster_id=-1,  # assigned by the deterministic merge
            representative=program,
            representative_traces=list(traces),
        )
        cluster.add_member(program, _identity_witness(program))
        clusters.append((index, cluster, order))
    return [(index, cluster) for index, cluster, _ in clusters], match_calls


def cluster_programs(
    programs: Iterable[Program],
    cases: Sequence[InputCase],
    *,
    prune: bool = True,
    workers: int = 1,
    caches: "RepairCaches | None" = None,
    prefilter: bool = True,
) -> ClusteringResult:
    """Cluster correct programs by dynamic equivalence.

    Programs are processed in order; each joins the first existing cluster
    it matches (``∼_I`` is an equivalence relation, so the first match is
    the only possible one up to symmetry).  Programs whose execution fails
    outright are reported in ``failures`` instead of silently dropped.

    Args:
        programs: Correct programs, already parsed.
        cases: Test inputs defining the matching relation ``∼_I``.
        prune: Index clusters by matching-invariant fingerprint and only
            attempt full matches within a program's own bucket.  The result
            is identical to the exhaustive ``prune=False`` path; the
            exhaustive path exists for cross-checking and measurement.
        workers: Worker threads for clustering fingerprint buckets
            concurrently.  Buckets are independent (programs in different
            buckets can never match) and the merge is deterministic, so the
            result does not depend on ``workers``.  Ignored when ``prune``
            is off (there is a single bucket).
        caches: Optional :class:`repro.engine.cache.RepairCaches` through
            which program executions are routed, so a solution that also
            appears elsewhere in a batch is traced once.
        prefilter: Try existing clusters in nearest-first feature-vector
            order (:mod:`repro.retrieval`) instead of creation order.  The
            resulting clustering is identical either way (at most one
            cluster can match any program); only ``stats.full_matches``
            shrinks.  ``prefilter=False`` restores the creation-order scan
            for measurement.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    stats = ClusteringStats()
    failures: list[tuple[int, str]] = []

    executed: list[tuple[int, Program, list[Trace]]] = []
    for index, program in enumerate(programs):
        stats.programs += 1
        try:
            if caches is not None:
                traces = caches.traces(program, cases)
            else:
                traces = program_traces(program, cases)
        except Exception as exc:  # noqa: BLE001 - defensive: report, don't crash
            failures.append((index, f"execution error: {exc}"))
            continue
        executed.append((index, program, traces))

    # Shard into fingerprint buckets (insertion order, so every bucket sees
    # its programs in original order).
    buckets: dict[object, list[tuple[int, Program, list[Trace]]]] = {}
    digests: dict[object, str | None] = {}
    if prune:
        from ..clusterstore.fingerprint import program_fingerprint

        for index, program, traces in executed:
            if caches is not None:
                fingerprint = caches.fingerprint(program, cases, traces=traces)
            else:
                fingerprint = program_fingerprint(program, traces)
            buckets.setdefault(fingerprint, []).append((index, program, traces))
            digests[fingerprint] = fingerprint.digest
    else:
        if executed:
            buckets[None] = executed
            digests[None] = None

    if workers == 1 or len(buckets) <= 1:
        bucket_results = [
            _cluster_bucket(items, cases, shared_skeleton=prune, prefilter=prefilter)
            for items in buckets.values()
        ]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            bucket_results = list(
                pool.map(
                    lambda items: _cluster_bucket(
                        items, cases, shared_skeleton=prune, prefilter=prefilter
                    ),
                    buckets.values(),
                )
            )

    # Deterministic merge: order clusters by first member's original index —
    # exactly the creation order of the exhaustive sequential loop.
    tagged: list[tuple[int, Cluster]] = []
    for (key, _items), (bucket_clusters, match_calls) in zip(
        buckets.items(), bucket_results
    ):
        stats.full_matches += match_calls
        for first_index, cluster in bucket_clusters:
            cluster.fingerprint_digest = digests[key]
            tagged.append((first_index, cluster))
    tagged.sort(key=lambda entry: entry[0])
    clusters = []
    for cluster_id, (_first, cluster) in enumerate(tagged):
        cluster.cluster_id = cluster_id
        clusters.append(cluster)

    stats.clusters = len(clusters)
    stats.buckets = len(buckets)
    stats.bucket_sizes = sorted((len(items) for items in buckets.values()), reverse=True)
    return ClusteringResult(clusters=clusters, failures=failures, stats=stats)
