"""Clustering of correct student solutions (paper §4, Def. 4.7).

Clusters are the equivalence classes of the matching relation ``∼_I``.  The
clusterer processes correct programs one by one, matching each against the
representative of every existing cluster; on a match the program joins the
cluster and its expressions (translated into the representative's variables
via the matching witness) are added to the cluster's expression pools
``E_C(ℓ, v)``, which the repair algorithm later draws from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..model.expr import Expr, Var
from ..model.program import Program
from ..model.trace import Trace
from .inputs import InputCase, program_traces
from .matching import MatchResult, find_matching

__all__ = ["ClusterExpression", "Cluster", "ClusteringResult", "cluster_programs"]


@dataclass(frozen=True)
class ClusterExpression:
    """An expression contributed to a pool, with provenance.

    Attributes:
        expr: The expression, already translated to range over the
            representative's variables.
        member_index: Index (within the cluster's ``members`` list) of the
            solution the expression came from.
    """

    expr: Expr
    member_index: int


@dataclass
class Cluster:
    """One equivalence class of ``∼_I`` with its representative and pools."""

    cluster_id: int
    representative: Program
    representative_traces: list[Trace]
    members: list[Program] = field(default_factory=list)
    #: ``(loc_id, var) -> list of distinct expressions`` over representative
    #: variables (the paper's ``E_C(ℓ, v)``).
    expressions: dict[tuple[int, str], list[ClusterExpression]] = field(
        default_factory=dict
    )

    @property
    def size(self) -> int:
        return len(self.members)

    def expressions_for(self, loc_id: int, var: str) -> list[ClusterExpression]:
        return self.expressions.get((loc_id, var), [])

    def distinct_expression_count(self, loc_id: int, var: str) -> int:
        return len(self.expressions_for(loc_id, var))

    def add_member(self, program: Program, witness: MatchResult) -> None:
        """Add a member and merge its expressions into the pools.

        ``witness`` maps the member's variables/locations to the
        representative's.
        """
        member_index = len(self.members)
        self.members.append(program)
        rename = dict(witness.variable_map)
        for member_loc, member_location in program.locations.items():
            rep_loc = witness.location_map[member_loc]
            for var, expr in member_location.updates.items():
                rep_var = rename.get(var, var)
                translated = expr.rename_vars(rename)
                key = (rep_loc, rep_var)
                pool = self.expressions.setdefault(key, [])
                if all(existing.expr != translated for existing in pool):
                    pool.append(ClusterExpression(translated, member_index))


@dataclass
class ClusteringResult:
    """Clusters plus per-program failure diagnostics."""

    clusters: list[Cluster]
    #: Programs that could not be clustered (index, reason).
    failures: list[tuple[int, str]] = field(default_factory=list)

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def total_members(self) -> int:
        return sum(cluster.size for cluster in self.clusters)

    def sorted_by_size(self) -> list[Cluster]:
        return sorted(self.clusters, key=lambda c: -c.size)


def cluster_programs(
    programs: Iterable[Program],
    cases: Sequence[InputCase],
) -> ClusteringResult:
    """Cluster correct programs by dynamic equivalence.

    Programs are processed in order; each is matched against existing cluster
    representatives and joins the first cluster it matches (``∼_I`` is an
    equivalence relation, so the first match is the only possible one up to
    symmetry).  Programs whose execution fails outright are reported in
    ``failures`` instead of silently dropped.
    """
    clusters: list[Cluster] = []
    failures: list[tuple[int, str]] = []

    for index, program in enumerate(programs):
        try:
            traces = program_traces(program, cases)
        except Exception as exc:  # noqa: BLE001 - defensive: report, don't crash
            failures.append((index, f"execution error: {exc}"))
            continue

        placed = False
        for cluster in clusters:
            witness = find_matching(
                program,
                cluster.representative,
                cases,
                query_traces=traces,
                base_traces=cluster.representative_traces,
            )
            if witness is not None:
                cluster.add_member(program, witness)
                placed = True
                break
        if placed:
            continue

        cluster = Cluster(
            cluster_id=len(clusters),
            representative=program,
            representative_traces=list(traces),
        )
        identity = MatchResult(
            variable_map={v: v for v in program.variables},
            location_map={lid: lid for lid in program.location_ids()},
        )
        cluster.add_member(program, identity)
        clusters.append(cluster)

    return ClusteringResult(clusters=clusters, failures=failures)
