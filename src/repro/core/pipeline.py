"""End-to-end Clara pipeline: parse → cluster → repair → feedback.

This module stitches the pieces together exactly as Fig. 1 of the paper
describes: correct solutions are clustered once, then each incorrect attempt
is repaired against all clusters and the minimal repair is selected.  It is
the main public entry point of the library:

    >>> clara = Clara(cases)
    >>> clara.add_correct_sources(correct_sources)
    >>> outcome = clara.repair_source(incorrect_source)
    >>> print(outcome.feedback.text())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..frontend import FrontendError, ParseError, UnsupportedFeatureError, parse_source
from ..model.program import Program
from .clustering import Cluster, ClusteringResult, cluster_programs
from .feedback import Feedback, GENERIC_FEEDBACK_THRESHOLD, generate_feedback
from .inputs import InputCase, is_correct
from .matching import structural_match
from .repair import Repair, find_best_repair

__all__ = ["RepairStatus", "RepairOutcome", "Clara"]


class RepairStatus:
    """Outcome categories, mirroring the failure analysis of §6.2."""

    REPAIRED = "repaired"
    ALREADY_CORRECT = "already-correct"
    PARSE_ERROR = "parse-error"
    UNSUPPORTED = "unsupported"
    NO_STRUCTURAL_MATCH = "no-structural-match"
    NO_REPAIR = "no-repair"
    TIMEOUT = "timeout"


@dataclass
class RepairOutcome:
    """Result of attempting to repair one incorrect attempt."""

    status: str
    repair: Repair | None = None
    feedback: Feedback | None = None
    elapsed: float = 0.0
    detail: str = ""

    @property
    def succeeded(self) -> bool:
        return self.status == RepairStatus.REPAIRED


@dataclass
class Clara:
    """The clustering-and-repair tool.

    Args:
        cases: Test inputs with expected behaviour defining correctness.
        language: Source language of the attempts ("python" or "c").
        entry: Entry function name (``None`` = first function / ``main``).
        solver: Repair-selection solver, ``"ilp"`` (default) or
            ``"enumerate"``.
        timeout: Wall-clock budget per repaired attempt, in seconds.
        use_cluster_expressions: When ``False``, the repair algorithm only
            draws expressions from the cluster representative instead of the
            whole cluster (the ablation of §2.1's "diversity of repairs").
        generic_threshold: Cost above which feedback becomes a generic
            strategy message.
    """

    cases: Sequence[InputCase]
    language: str = "python"
    entry: str | None = None
    solver: str = "ilp"
    timeout: float | None = None
    use_cluster_expressions: bool = True
    generic_threshold: float = GENERIC_FEEDBACK_THRESHOLD
    clusters: list[Cluster] = field(default_factory=list)
    clustering_failures: list[tuple[int, str]] = field(default_factory=list)

    # -- clustering -------------------------------------------------------------

    def parse(self, source: str) -> Program:
        """Parse one attempt into the program model."""
        return parse_source(source, language=self.language, entry=self.entry)

    def add_correct_programs(self, programs: Iterable[Program]) -> ClusteringResult:
        """Cluster correct programs and register the clusters for repair."""
        result = cluster_programs(programs, self.cases)
        offset = len(self.clusters)
        for cluster in result.clusters:
            cluster.cluster_id += offset
        self.clusters.extend(result.clusters)
        self.clustering_failures.extend(result.failures)
        if not self.use_cluster_expressions:
            for cluster in self.clusters:
                self._restrict_to_representative(cluster)
        return result

    def add_correct_sources(
        self, sources: Iterable[str], *, verify: bool = True
    ) -> ClusteringResult:
        """Parse, optionally verify and cluster correct solutions.

        Attempts that fail to parse or that do not actually pass the test
        cases are skipped (MOOC dumps routinely contain mislabelled data).
        """
        programs: list[Program] = []
        for source in sources:
            try:
                program = self.parse(source)
            except FrontendError:
                continue
            if verify and not is_correct(program, self.cases):
                continue
            programs.append(program)
        return self.add_correct_programs(programs)

    @staticmethod
    def _restrict_to_representative(cluster: Cluster) -> None:
        representative = cluster.representative
        restricted = {}
        for (loc_id, var), pool in cluster.expressions.items():
            rep_expr = representative.update_for(loc_id, var)
            restricted[(loc_id, var)] = [
                entry for entry in pool if entry.expr == rep_expr
            ]
        cluster.expressions = restricted

    # -- repair -------------------------------------------------------------------

    def repair_program(self, program: Program) -> RepairOutcome:
        """Repair an already-parsed incorrect attempt."""
        start = time.perf_counter()
        if is_correct(program, self.cases):
            return RepairOutcome(
                status=RepairStatus.ALREADY_CORRECT,
                elapsed=time.perf_counter() - start,
            )
        if not self.clusters:
            return RepairOutcome(
                status=RepairStatus.NO_REPAIR,
                detail="no clusters available",
                elapsed=time.perf_counter() - start,
            )
        if not any(
            structural_match(program, cluster.representative) is not None
            for cluster in self.clusters
        ):
            return RepairOutcome(
                status=RepairStatus.NO_STRUCTURAL_MATCH,
                detail="no correct solution with the same control flow",
                elapsed=time.perf_counter() - start,
            )
        repair = find_best_repair(
            program,
            self.clusters,
            solver=self.solver,
            timeout=self.timeout,
        )
        elapsed = time.perf_counter() - start
        if repair is None:
            status = (
                RepairStatus.TIMEOUT
                if self.timeout is not None and elapsed >= self.timeout
                else RepairStatus.NO_REPAIR
            )
            return RepairOutcome(status=status, elapsed=elapsed)
        feedback = generate_feedback(
            repair, program, generic_threshold=self.generic_threshold
        )
        return RepairOutcome(
            status=RepairStatus.REPAIRED,
            repair=repair,
            feedback=feedback,
            elapsed=elapsed,
        )

    def repair_source(self, source: str) -> RepairOutcome:
        """Parse and repair one incorrect attempt from source text."""
        start = time.perf_counter()
        try:
            program = self.parse(source)
        except UnsupportedFeatureError as exc:
            return RepairOutcome(
                status=RepairStatus.UNSUPPORTED,
                detail=str(exc),
                elapsed=time.perf_counter() - start,
            )
        except ParseError as exc:
            return RepairOutcome(
                status=RepairStatus.PARSE_ERROR,
                detail=str(exc),
                elapsed=time.perf_counter() - start,
            )
        outcome = self.repair_program(program)
        outcome.elapsed += time.perf_counter() - start - outcome.elapsed
        return outcome

    # -- introspection -----------------------------------------------------------

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def cluster_sizes(self) -> list[int]:
        return sorted((cluster.size for cluster in self.clusters), reverse=True)
