"""End-to-end Clara pipeline: parse → cluster → repair → feedback.

This module stitches the pieces together exactly as Fig. 1 of the paper
describes: correct solutions are clustered once, then each incorrect attempt
is repaired against all clusters and the minimal repair is selected.  It is
the main public entry point of the library:

    >>> clara = Clara(cases)
    >>> clara.add_correct_sources(correct_sources)
    >>> outcome = clara.repair_source(incorrect_source)
    >>> print(outcome.feedback.text())

Every ``Clara`` owns a :class:`repro.engine.cache.RepairCaches` instance
through which all correctness checks and structural matches are routed, so
repeated work — the same attempt resubmitted, the same (attempt, cluster)
pair matched by the gate check and again by the search — is computed once.
Single-attempt repair is the batch-size-1 case of
:class:`repro.engine.batch.BatchRepairEngine`; to repair a whole corpus
concurrently, hand the configured ``Clara`` to an engine instead of looping
over ``repair_source``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..frontend import FrontendError, ParseError, UnsupportedFeatureError, parse_source
from ..model.program import Program
from ..retrieval import (
    DEFAULT_TOP_K,
    cluster_feature_vector,
    cluster_skeleton,
    feature_vector,
    ranked_candidates,
)
from .clustering import Cluster, ClusteringResult, cluster_programs
from .feedback import Feedback, GENERIC_FEEDBACK_THRESHOLD, generate_feedback
from .inputs import InputCase
from .profile import profiled
from .repair import Repair, find_best_repair

if TYPE_CHECKING:  # pragma: no cover - engine imports core; annotation only
    from ..engine.cache import RepairCaches

__all__ = ["RepairStatus", "RepairOutcome", "Clara"]


class RepairStatus:
    """Outcome categories, mirroring the failure analysis of §6.2."""

    REPAIRED = "repaired"
    ALREADY_CORRECT = "already-correct"
    PARSE_ERROR = "parse-error"
    UNSUPPORTED = "unsupported"
    NO_STRUCTURAL_MATCH = "no-structural-match"
    NO_REPAIR = "no-repair"
    TIMEOUT = "timeout"
    #: An unexpected exception escaped the repair of this one attempt (an
    #: interpreter or solver bug tripped by a pathological submission).
    #: The batch engine reports it as a per-attempt terminal status so one
    #: bad attempt cannot take down a whole batch or a serving worker.
    INTERNAL_ERROR = "internal-error"


@dataclass
class RepairOutcome:
    """Result of attempting to repair one incorrect attempt.

    Attributes:
        status: One of the :class:`RepairStatus` categories.
        repair: The selected minimal repair (``None`` unless repaired).
        feedback: Generated feedback (``None`` unless repaired).
        elapsed: Wall-clock seconds for the whole attempt, parse included.
        detail: Human-readable failure detail for non-repaired statuses.
    """

    status: str
    repair: Repair | None = None
    feedback: Feedback | None = None
    elapsed: float = 0.0
    detail: str = ""

    @property
    def succeeded(self) -> bool:
        return self.status == RepairStatus.REPAIRED


@dataclass
class Clara:
    """The clustering-and-repair tool.

    Args:
        cases: Test inputs with expected behaviour defining correctness.
        language: Source language of the attempts ("python" or "c").
        entry: Entry function name (``None`` = first function / ``main``).
        solver: Repair-selection solver, ``"ilp"`` (default) or
            ``"enumerate"``.
        timeout: Wall-clock budget per repaired attempt, in seconds; a batch
            engine may override it per attempt.
        use_cluster_expressions: When ``False``, the repair algorithm only
            draws expressions from the cluster representative instead of the
            whole cluster (the ablation of §2.1's "diversity of repairs").
        generic_threshold: Cost above which feedback becomes a generic
            strategy message.
        cluster_fingerprint_pruning: When ``True`` (default), clustering
            indexes existing clusters by matching-invariant fingerprint and
            only runs the full dynamic match within a program's own bucket
            (:mod:`repro.clusterstore.fingerprint`); the resulting clusters
            are identical to the exhaustive path, which remains available
            for measurement.
        cluster_workers: Worker threads used to cluster fingerprint buckets
            concurrently when building clusters (the result is independent
            of this setting).
        retrieval_prefilter: Rank candidate clusters nearest-first by
            deterministic feature vector (:mod:`repro.retrieval`) before
            the expensive exact procedures — full dynamic matching at
            build time, the Def. 4.1 structural gate at repair time — and
            cut repair candidates whose CFG skeleton provably precludes a
            match.  The exact matcher still decides, so outcomes are
            field-identical with the prefilter on or off
            (``tests/test_retrieval_differential.py``); only the match
            counters change.  ``False`` (the ``--no-prefilter`` escape
            hatch) restores the unranked scans.
        retrieval_top_k: Size of the nearest-first head the structural
            gate probes before falling back to the remaining candidates in
            original order (counted under ``retrieval.fallbacks``).
        caches: Shared memoization of traces, matches and repairs
            (:class:`repro.engine.cache.RepairCaches`).  Defaults to a fresh
            enabled instance; pass ``RepairCaches(enabled=False)`` to measure
            uncached baselines.

    Thread safety: build the pipeline — ``add_correct_sources`` /
    ``load_clusters`` — from a single thread, then repair from as many
    threads as you like: the cluster list is treated as read-only during
    repair and every mutable lookup goes through the lock-guarded caches.
    That split is exactly how :class:`repro.engine.batch.BatchRepairEngine`
    (worker threads) and :class:`repro.service.RepairService` (one warm
    pipeline per problem, swapped whole on hot reload) use it.
    """

    cases: Sequence[InputCase]
    language: str = "python"
    entry: str | None = None
    solver: str = "ilp"
    timeout: float | None = None
    use_cluster_expressions: bool = True
    generic_threshold: float = GENERIC_FEEDBACK_THRESHOLD
    cluster_fingerprint_pruning: bool = True
    cluster_workers: int = 1
    retrieval_prefilter: bool = True
    retrieval_top_k: int = DEFAULT_TOP_K
    clusters: list[Cluster] = field(default_factory=list)
    clustering_failures: list[tuple[int, str]] = field(default_factory=list)
    caches: "RepairCaches | None" = None
    #: Incremented whenever the cluster set changes; part of the repair-memo
    #: key so cached outcomes never outlive the clustering they came from.
    _cluster_version: int = field(default=0, init=False, repr=False)
    #: Identity token distinguishing this pipeline's repair memos when one
    #: ``RepairCaches`` is shared by several ``Clara`` instances (memo keys
    #: hold a strong reference, so tokens are never confused even after a
    #: pipeline is garbage-collected).
    _memo_token: object = field(
        default_factory=object, init=False, repr=False, compare=False
    )
    #: Lazily paged cluster source installed by :meth:`attach_lazy_clusters`
    #: (``None`` = eager ``clusters`` list).  When set, repair consults only
    #: the store segments whose CFG-skeleton digest matches the attempt.
    _lazy_clusters: object = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.caches is None:
            # Imported lazily: the engine package imports core modules at
            # module level, so the core must not import it back eagerly.
            from ..engine.cache import RepairCaches

            self.caches = RepairCaches()

    # -- clustering -------------------------------------------------------------

    def parse(self, source: str) -> Program:
        """Parse one attempt into the program model."""
        return parse_source(source, language=self.language, entry=self.entry)

    def add_correct_programs(
        self,
        programs: Iterable[Program],
        *,
        source_indices: Sequence[int] | None = None,
    ) -> ClusteringResult:
        """Cluster correct programs and register the clusters for repair.

        Invalidates memoized repair outcomes (the caches key them on the
        clustering version), but keeps trace and match entries, which stay
        valid across cluster growth.

        Args:
            programs: Parsed correct programs.
            source_indices: Optional positions of ``programs`` in some
                original caller-side list; when given, failure indices in
                the returned result (and in ``clustering_failures``) are
                translated so diagnostics point at the caller's items even
                after filtering (``add_correct_sources`` passes this).
        """
        result = cluster_programs(
            programs,
            self.cases,
            prune=self.cluster_fingerprint_pruning,
            workers=self.cluster_workers,
            caches=self.caches,
            prefilter=self.retrieval_prefilter,
        )
        if source_indices is not None:
            result.failures = [
                (source_indices[index], reason) for index, reason in result.failures
            ]
        self._register_clusters(result.clusters)
        self.clustering_failures.extend(result.failures)
        return result

    def add_correct_sources(
        self, sources: Iterable[str], *, verify: bool = True
    ) -> ClusteringResult:
        """Parse, optionally verify and cluster correct solutions.

        Attempts that fail to parse or that do not actually pass the test
        cases are skipped (MOOC dumps routinely contain mislabelled data).
        Verification runs through the trace cache, so a program that later
        shows up as an incorrect attempt is not re-executed.

        Failure indices in the returned result refer to positions in
        ``sources`` — not the post-filtering program list — so diagnostics
        name the right submission even when earlier sources were skipped.
        """
        programs: list[Program] = []
        kept_indices: list[int] = []
        for index, source in enumerate(sources):
            try:
                program = self.parse(source)
            except FrontendError:
                continue
            if verify and not self.caches.is_correct(program, self.cases):
                continue
            programs.append(program)
            kept_indices.append(index)
        return self.add_correct_programs(programs, source_indices=kept_indices)

    def _register_clusters(self, clusters: Sequence[Cluster]) -> None:
        """Append clusters, renumbering ids and invalidating repair memos."""
        if self._lazy_clusters is not None:
            raise ValueError(
                "this pipeline serves clusters from a lazily paged store "
                "(attach_lazy_clusters); update the store and reopen instead "
                "of registering clusters in memory"
            )
        offset = len(self.clusters)
        for cluster in clusters:
            cluster.cluster_id += offset
        self.clusters.extend(clusters)
        self._cluster_version += 1
        if not self.use_cluster_expressions:
            for cluster in self.clusters:
                self._restrict_to_representative(cluster)

    # -- persistence --------------------------------------------------------------

    def save_clusters(self, path: "str | Path", *, problem: str | None = None) -> "Path":
        """Write the current clusters to a versioned store file.

        The store records the case-set signature, so only a pipeline with
        the same cases can load it back (see
        :func:`repro.clusterstore.store.save_clusters`).
        """
        from ..clusterstore.store import save_clusters as _save

        return _save(
            path,
            self.clusters,
            self.cases,
            language=self.language,
            entry=self.entry,
            problem=problem,
        )

    def load_clusters(self, path: "str | Path", *, check_cases: bool = True) -> int:
        """Load clusters from a store file instead of re-clustering.

        Validates the format version, the source language and (by default)
        the case-set signature, re-executes each representative on this
        pipeline's cases to rebuild its traces, and registers the clusters
        exactly as ``add_correct_programs`` would.  Returns the number of
        clusters loaded.
        """
        from ..clusterstore.store import load_clusters as _load

        stored = _load(path, cases=self.cases, check_cases=check_cases)
        return self.register_stored_clustering(stored, origin=str(path))

    def register_stored_clustering(self, stored, *, origin: str | None = None) -> int:
        """Register an already-decoded :class:`~repro.clusterstore.store.\
StoredClustering`.

        Callers that decoded the store themselves (the service layer reads
        each store exactly once, so the revision it reports is the revision
        it loaded) use this instead of :meth:`load_clusters`.  Validates the
        language, re-executes each representative on this pipeline's cases,
        and registers the clusters.  Returns the number of clusters.

        Args:
            stored: The decoded store.
            origin: Where the store came from (a path), named in error
                messages so an operator serving several stores can tell
                which file mismatched.
        """
        from ..clusterstore.store import ClusterStoreError

        if stored.language != self.language:
            label = f"cluster store {origin}" if origin else "cluster store"
            raise ClusterStoreError(
                f"{label} holds {stored.language!r} programs, but this "
                f"pipeline repairs {self.language!r} attempts"
            )
        for cluster in stored.clusters:
            cluster.representative_traces = list(
                self.caches.traces(cluster.representative, self.cases)
            )
        self._register_clusters(stored.clusters)
        return len(stored.clusters)

    def attach_lazy_clusters(self, source) -> int:
        """Serve clusters from a lazily paged store view instead of a list.

        ``source`` is a :class:`~repro.clusterstore.store.LazyStoredClustering`
        (from :func:`repro.clusterstore.store.open_lazy`): only the store
        header has been read, and repair pages in just the segments whose
        CFG-skeleton digest matches the attempt at hand — skeleton equality
        is necessary for a structural match (Def. 4.1), so outcomes are
        identical to an eager :meth:`load_clusters`, minus the I/O for
        segments no attempt ever matches.  Representatives are executed on
        this pipeline's cases at page-in time, through the shared caches,
        under the pager's lock (so concurrent repair workers each see fully
        initialized clusters).

        Mutually exclusive with the eager cluster list: attaching to a
        pipeline that already has clusters — or registering clusters after
        attaching — raises.  Returns the store's total cluster count (from
        the header; nothing is paged in by this call).

        Raises:
            ClusterStoreError: The store's language does not match.
            ValueError: The pipeline already has clusters registered.
        """
        from ..clusterstore.store import ClusterStoreError

        if self.clusters or self._lazy_clusters is not None:
            raise ValueError(
                "attach_lazy_clusters requires a pipeline with no clusters "
                "registered yet"
            )
        if source.language != self.language:
            raise ClusterStoreError(
                f"cluster store {source.pager.store_path} holds "
                f"{source.language!r} programs, but this pipeline repairs "
                f"{self.language!r} attempts"
            )

        def _on_load(clusters: "list[Cluster]") -> None:
            for cluster in clusters:
                cluster.representative_traces = list(
                    self.caches.traces(cluster.representative, self.cases)
                )
                if not self.use_cluster_expressions:
                    self._restrict_to_representative(cluster)

        source.pager.on_load = _on_load
        self._lazy_clusters = source
        self._cluster_version += 1
        return source.cluster_count

    def store_paging(self) -> dict | None:
        """Loaded/skipped segment counters of the attached lazy store.

        ``None`` when clusters are held eagerly in memory.  Deterministic
        for a given sequence of repairs (see
        :meth:`repro.clusterstore.segments.SegmentPager.counters`), which is
        what ``batch --profile`` and the service ``stats`` op surface.
        """
        if self._lazy_clusters is None:
            return None
        return self._lazy_clusters.paging_counters()

    def counters_payload(self) -> dict:
        """All deterministic counter sections of this pipeline, as one dict.

        The single vocabulary shared by ``batch --profile`` (which writes
        it to ``results/local/batch_profile.json``) and the
        process-parallel batch workers (which ship it over the pipe so the
        parent can merge shard payloads by commutative sum,
        :mod:`repro.engine.parallel`).  Sections: ``phases`` (the attached
        :class:`~repro.core.profile.PhaseProfiler`, empty when none),
        ``ted``/``compile``/``solve`` cache counters, ``cache_entries``,
        ``store_paging`` (``None`` unless a lazy store is attached) and
        ``retrieval``.  Everything here is deterministic for a fixed
        sequence of repairs on a single-threaded engine — timings inside
        ``phases`` are the one machine-dependent part and never leave
        ``results/local/``.
        """
        profiler = self.caches.profiler
        return {
            "phases": (
                profiler.as_dict()
                if profiler is not None
                else {"counters": {}, "timings": {}}
            ),
            "ted": self.caches.ted.counters(),
            "compile": self.caches.compiled.counters(),
            "solve": self.caches.solve.counters(),
            "cache_entries": self.caches.entry_counts(),
            "store_paging": self.store_paging(),
            "retrieval": self.caches.retrieval.as_dict(),
        }

    @staticmethod
    def _restrict_to_representative(cluster: Cluster) -> None:
        representative = cluster.representative
        restricted = {}
        for (loc_id, var), pool in cluster.expressions.items():
            rep_expr = representative.update_for(loc_id, var)
            restricted[(loc_id, var)] = [
                entry for entry in pool if entry.expr == rep_expr
            ]
        cluster.expressions = restricted
        cluster.reset_runtime_caches()

    # -- repair -------------------------------------------------------------------

    def repair_program(
        self, program: Program, *, budget: float | None = None
    ) -> RepairOutcome:
        """Repair an already-parsed incorrect attempt.

        Args:
            program: The parsed attempt.  Must not be mutated afterwards by
                the caller (its fingerprint keys the caches).
            budget: Per-attempt wall-clock budget in seconds, overriding the
                pipeline-wide ``timeout`` when given.

        The correctness check and the structural gate run through the shared
        caches; the cluster search itself is memoized on the attempt
        fingerprint, so a duplicate attempt skips the ILP entirely and only
        pays for parsing.
        """
        start = time.perf_counter()
        timeout = self.timeout if budget is None else budget
        if self.caches.is_correct(program, self.cases):
            return RepairOutcome(
                status=RepairStatus.ALREADY_CORRECT,
                elapsed=time.perf_counter() - start,
            )
        if not self.cluster_count:
            return RepairOutcome(
                status=RepairStatus.NO_REPAIR,
                detail="no clusters available",
                elapsed=time.perf_counter() - start,
            )
        # In lazy mode this pages in only the segments whose skeleton digest
        # matches the attempt; every skipped cluster is provably unmatchable,
        # so the gate below and the search see the same effective candidate
        # set an eager load would.
        candidates = self._candidate_clusters(program)
        gate_order, candidates, ranked, skeleton_skipped = self._prefilter_candidates(
            program, candidates
        )
        matched = False
        attempted = 0
        for cluster in gate_order:
            attempted += 1
            if self.caches.structural_match(program, cluster.representative) is not None:
                matched = True
                break
        if ranked:
            self.caches.retrieval.record(
                ranked=len(gate_order),
                attempted=attempted,
                skipped=skeleton_skipped + (len(gate_order) - attempted),
                # The match sat beyond the top-k head: the exact-fallback
                # tail caught it, exactly as the soundness argument requires.
                fallbacks=1 if matched and attempted > self.retrieval_top_k else 0,
            )
        if not matched:
            return RepairOutcome(
                status=RepairStatus.NO_STRUCTURAL_MATCH,
                detail="no correct solution with the same control flow",
                elapsed=time.perf_counter() - start,
            )
        context_key = (
            self._memo_token,
            self._cluster_version,
            self.solver,
            timeout,
            self.generic_threshold,
            # Line numbers and location names flow into feedback text but are
            # not part of structure_key, so structurally identical attempts
            # with shifted source positions must not share a memo entry.
            self._position_key(program),
        )
        status, repair, feedback, detail = self.caches.repair_outcome(
            program,
            context_key,
            lambda: self._search_clusters(program, candidates, timeout),
            # A timeout reflects machine load at that moment, not a property
            # of the attempt; memoizing it would make one slow moment sticky
            # for every future duplicate.
            store_if=lambda value: value[0] != RepairStatus.TIMEOUT,
        )
        return RepairOutcome(
            status=status,
            repair=repair,
            feedback=feedback,
            detail=detail,
            elapsed=time.perf_counter() - start,
        )

    @staticmethod
    def _position_key(program: Program) -> tuple:
        """Source-position signature: (loc_id, line, name) per location."""
        return tuple(
            (loc_id, program.locations[loc_id].line, program.locations[loc_id].name)
            for loc_id in program.location_ids()
        )

    def _candidate_clusters(self, program: Program) -> "Sequence[Cluster]":
        """The clusters that could possibly repair ``program``.

        Eager mode returns the full list; lazy mode pages in only the
        skeleton-matching (and unfingerprinted) segments of the attached
        store — a sound pruning, since a differing canonical CFG skeleton
        precludes the structural match every repair needs.
        """
        if self._lazy_clusters is None:
            return self.clusters
        return self._lazy_clusters.clusters_for_program(program)

    def _prefilter_candidates(
        self, program: Program, candidates: "Sequence[Cluster]"
    ) -> "tuple[Sequence[Cluster], Sequence[Cluster], bool, int]":
        """Apply the nearest-cluster prefilter to the repair candidate set.

        Returns ``(gate_order, search_candidates, ranked, skeleton_skipped)``:
        the order in which the structural gate should probe candidates, the
        set the cluster search may draw repairs from, whether the prefilter
        actually ranked (counters are only recorded when it did), and how
        many candidates the CFG-skeleton cut removed.

        Soundness: the skeleton cut only drops clusters that provably fail
        the Def. 4.1 test (skeleton equality is necessary for a structural
        match — the same argument the lazy pager's segment pruning rests
        on), and the ranking is a permutation that keeps every surviving
        candidate, so both the gate verdict and the search's candidate pool
        are unchanged — repairs stay field-identical.

        Degrade path: a lazily attached store whose header lacks usable
        vectors for some candidate (built before retrieval existed, or with
        a foreign feature version) silently disables the prefilter for this
        repair and counts one ``fallbacks`` tick.
        """
        if not self.retrieval_prefilter or not candidates:
            return candidates, candidates, False, 0
        if self._lazy_clusters is not None:
            # Candidates are already skeleton-cut by the pager; rank them
            # strictly from the header's persisted vectors (no recompute).
            vectors = self._lazy_clusters.retrieval_vectors()
            if any(cluster.cluster_id not in vectors for cluster in candidates):
                self.caches.retrieval.record(fallbacks=1)
                return candidates, candidates, False, 0
            survivors: "Sequence[Cluster]" = candidates
            skipped = 0

            def vector_of(cluster: Cluster) -> tuple[int, ...]:
                return vectors[cluster.cluster_id]

        else:
            skeleton = program.cfg_skeleton()[1]
            survivors = [
                cluster
                for cluster in candidates
                if cluster_skeleton(cluster) == skeleton
            ]
            skipped = len(candidates) - len(survivors)
            vector_of = cluster_feature_vector
        gate_order = ranked_candidates(
            feature_vector(program),
            survivors,
            vector_of,
            top_k=self.retrieval_top_k,
        )
        return gate_order, survivors, True, skipped

    def _search_clusters(
        self,
        program: Program,
        clusters: "Sequence[Cluster]",
        timeout: float | None,
    ) -> tuple[str, Repair | None, Feedback | None, str]:
        """Run the cluster search and package the memoizable outcome."""
        started = time.perf_counter()
        repair = find_best_repair(
            program,
            clusters,
            solver=self.solver,
            timeout=timeout,
            caches=self.caches,
        )
        search_elapsed = time.perf_counter() - started
        if repair is None:
            status = (
                RepairStatus.TIMEOUT
                if timeout is not None and search_elapsed >= timeout
                else RepairStatus.NO_REPAIR
            )
            return (status, None, None, "")
        feedback = generate_feedback(
            repair, program, generic_threshold=self.generic_threshold
        )
        return (RepairStatus.REPAIRED, repair, feedback, "")

    def repair_source(self, source: str, *, budget: float | None = None) -> RepairOutcome:
        """Parse and repair one incorrect attempt from source text.

        Single-attempt repair is the batch-size-1 case of the engine: this
        delegates to :class:`repro.engine.batch.BatchRepairEngine` with one
        inline worker, so it shares the exact code path (budgets, caching,
        accounting) that corpus runs use.
        """
        from ..engine.batch import BatchRepairEngine

        engine = BatchRepairEngine(self, workers=1, budget=budget)
        return engine.run([source]).outcomes[0]

    def _repair_attempt(
        self, source: str, *, budget: float | None = None
    ) -> RepairOutcome:
        """Parse-and-repair primitive invoked by the batch engine.

        ``elapsed`` on the returned outcome covers the whole attempt — parse
        time included — measured with a single start timestamp.
        """
        start = time.perf_counter()
        try:
            with profiled(self.caches.profiler, "parse"):
                program = self.parse(source)
        except UnsupportedFeatureError as exc:
            return RepairOutcome(
                status=RepairStatus.UNSUPPORTED,
                detail=str(exc),
                elapsed=time.perf_counter() - start,
            )
        except ParseError as exc:
            return RepairOutcome(
                status=RepairStatus.PARSE_ERROR,
                detail=str(exc),
                elapsed=time.perf_counter() - start,
            )
        outcome = self.repair_program(program, budget=budget)
        outcome.elapsed = time.perf_counter() - start
        return outcome

    # -- introspection -----------------------------------------------------------

    def forget_repair_memos(self) -> int:
        """Evict this pipeline's memoized repair outcomes from the caches.

        Call when retiring a pipeline whose ``RepairCaches`` lives on (a
        service hot reload hands the shared caches to a successor): entries
        keyed on this pipeline's identity would otherwise stay unreachable
        in the cache forever.  Returns the number of entries evicted.
        """
        return self.caches.drop_repair_memos(self._memo_token)

    @property
    def cluster_count(self) -> int:
        """Total clusters — from the store header in lazy mode (no paging)."""
        if self._lazy_clusters is not None:
            return self._lazy_clusters.cluster_count
        return len(self.clusters)

    def cluster_sizes(self) -> list[int]:
        """Member counts per cluster, largest first.

        In lazy mode this pages in **every** segment of the attached store —
        it is an introspection helper, not a serving-path call.
        """
        if self._lazy_clusters is not None:
            return sorted(
                (cluster.size for cluster in self._lazy_clusters.all_clusters()),
                reverse=True,
            )
        return sorted((cluster.size for cluster in self.clusters), reverse=True)
