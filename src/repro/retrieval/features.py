"""Deterministic per-program feature vectors for nearest-cluster retrieval.

The vector is a small tuple of non-negative integers derived purely from
the program *model* — fingerprint-style scalars (location count, variable
arity), CFG-skeleton shape counts (back edges, branch points), update-site
statistics, and a fixed-width histogram of Zhang–Shasha annotation labels
over the update expressions.  Two deliberate design constraints:

* **Trace-free.**  Unlike the clustering fingerprint
  (:mod:`repro.clusterstore.fingerprint`), the vector never looks at
  execution traces.  ``cluster import`` migrates stores from decoded,
  traceless clusters and must produce headers byte-identical to a fresh
  build of the same clusters (asserted in ``tests/test_store_segments.py``),
  so every persisted derived quantity has to be a pure function of the
  program model.  Nothing is lost: all clusters in one fingerprint bucket
  share a full trace signature by construction, so a trace-derived
  component would have zero discriminating power exactly where the
  prefilter does its ranking.
* **Hash-seed independent.**  Histogram bucketing uses ``zlib.crc32`` and
  iteration orders are canonical (sorted location ids, sorted variable
  names), so the same program yields byte-identical vectors across
  ``PYTHONHASHSEED`` values and model construction orders (asserted in
  ``tests/test_retrieval_differential.py``).

Distances between vectors are squared-L2 over plain Python integers
(:func:`repro.retrieval.index.squared_distance`) — no floats anywhere, so
rankings cannot drift across platforms.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

from ..core.matching import variables_for_matching
from ..model.expr import intern_expr
from ..model.program import Program
from ..ted import AnnotatedTree

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core import cycle
    from ..core.clustering import Cluster

__all__ = [
    "FEATURE_VERSION",
    "HISTOGRAM_BUCKETS",
    "feature_vector",
    "cluster_feature_vector",
    "cluster_skeleton",
    "centroid_payload",
    "retrieval_payload",
    "decode_retrieval_payload",
]

#: Bump whenever the vector composition changes.  Persisted alongside the
#: vectors in the store header; a reader finding a different version treats
#: the store as vectorless (prefilter disabled) instead of ranking by
#: incomparable coordinates.
FEATURE_VERSION = 1

#: Width of the annotation-label histogram tail of the vector.
HISTOGRAM_BUCKETS = 16


def feature_vector(program: Program) -> tuple[int, ...]:
    """The retrieval feature vector of one program.

    Layout (all coordinates non-negative ints):
    ``(locations, back_edges, branches, arity, update_sites, update_nodes,
    hist_0 .. hist_15)`` where ``hist_i`` counts update-expression
    annotation labels whose CRC-32 falls in bucket ``i``.

    Byte stability: canonical iteration orders and CRC-32 bucketing make
    the result independent of hash seeds and of the order updates were
    added to the model.  Thread safety: pure function of an
    immutable-after-parse program.
    """
    _order, skeleton = program.cfg_skeleton()
    shape = skeleton[0]
    back_edges = 0
    branches = 0
    if isinstance(shape, tuple):
        for index, (on_true, on_false) in enumerate(shape):
            if on_true is not None and on_false is not None and on_true != on_false:
                branches += 1
            for succ in (on_true, on_false):
                if succ is not None and succ <= index:
                    back_edges += 1
    update_sites = 0
    update_nodes = 0
    histogram = [0] * HISTOGRAM_BUCKETS
    for loc_id in program.location_ids():
        for _var, expr in sorted(program.locations[loc_id].updates.items()):
            update_sites += 1
            annotation = AnnotatedTree.from_expr(intern_expr(expr))
            update_nodes += len(annotation)
            for label in annotation.labels:
                bucket = zlib.crc32(label.encode("utf-8")) % HISTOGRAM_BUCKETS
                histogram[bucket] += 1
    return (
        len(program.locations),
        back_edges,
        branches,
        len(variables_for_matching(program)),
        update_sites,
        update_nodes,
        *histogram,
    )


def cluster_feature_vector(cluster: "Cluster") -> tuple[int, ...]:
    """The feature vector of a cluster — its representative's vector.

    Memoized on the cluster object (representatives never change once a
    cluster exists, so the memo can never go stale; it lives outside the
    dataclass fields, like the other runtime caches, and is excluded from
    comparisons and serialisation).  Thread safety: racing computations
    store the same value; benign duplicate work, never corruption.
    """
    vector = getattr(cluster, "_retrieval_vector", None)
    if vector is None:
        vector = feature_vector(cluster.representative)
        cluster._retrieval_vector = vector
    return vector


def cluster_skeleton(cluster: "Cluster") -> tuple:
    """The canonical CFG skeleton of a cluster's representative, memoized.

    Skeleton equality is *necessary* for a Def. 4.1 structural match
    (:meth:`repro.model.program.Program.cfg_skeleton`), so the eager-mode
    prefilter can drop skeleton-mismatched clusters from the repair
    candidate set without changing any outcome — the same cut the lazy
    store pager applies per segment.  Memoized like
    :func:`cluster_feature_vector`; representatives are immutable.
    """
    skeleton = getattr(cluster, "_retrieval_skeleton", None)
    if skeleton is None:
        skeleton = cluster.representative.cfg_skeleton()[1]
        cluster._retrieval_skeleton = skeleton
    return skeleton


def centroid_payload(vectors: "list[tuple[int, ...]]") -> dict:
    """Segment centroid as an exact integer payload: count + coordinate sums.

    Stored instead of a float mean so the header stays byte-stable; a
    reader compares a query against centroids by cross-multiplying
    (``dist(q, sum/count)`` ordering is preserved under integer
    arithmetic).  Thread safety: pure function.
    """
    if not vectors:
        return {"count": 0, "sum": []}
    total = [0] * len(vectors[0])
    for vector in vectors:
        for index, coordinate in enumerate(vector):
            total[index] += coordinate
    return {"count": len(vectors), "sum": total}


def retrieval_payload(clusters: "list[Cluster]") -> dict:
    """The per-segment retrieval payload embedded in the store header.

    ``{"feature_version", "centroid", "vectors"}`` with one vector per
    cluster keyed by the cluster id **as a string** (JSON object keys), so
    a sorted-keys dump of the header stays byte-stable.  Pure function of
    the clusters' representatives — a migrated (traceless) and a freshly
    built segment produce identical payloads.
    """
    vectors = {
        str(cluster.cluster_id): list(cluster_feature_vector(cluster))
        for cluster in clusters
    }
    return {
        "feature_version": FEATURE_VERSION,
        "centroid": centroid_payload(
            [cluster_feature_vector(cluster) for cluster in clusters]
        ),
        "vectors": vectors,
    }


def decode_retrieval_payload(payload: object) -> dict[int, tuple[int, ...]] | None:
    """Per-cluster vectors from a header payload, or ``None`` when unusable.

    Tolerant by design: headers written before retrieval existed carry no
    payload, and a payload with a different :data:`FEATURE_VERSION` holds
    incomparable coordinates — both decode to ``None``, which readers treat
    as "prefilter unavailable" (they fall back to the exact ladder and
    count a ``fallbacks`` tick) rather than an error.
    """
    if not isinstance(payload, dict):
        return None
    if payload.get("feature_version") != FEATURE_VERSION:
        return None
    vectors = payload.get("vectors")
    if not isinstance(vectors, dict):
        return None
    try:
        return {
            int(cluster_id): tuple(int(value) for value in vector)
            for cluster_id, vector in vectors.items()
        }
    except (TypeError, ValueError):
        return None
