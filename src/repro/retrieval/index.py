"""Top-k nearest-neighbour ordering of candidate clusters, plus counters.

:func:`ranked_candidates` is the single ordering primitive shared by the
build-time placement loops (:func:`repro.core.clustering.cluster_programs`,
:meth:`repro.clusterstore.store.ClusterStore.add_correct_source`) and the
repair-time structural gate (:meth:`repro.core.pipeline.Clara.repair_program`).
It never *drops* a candidate: the ``k`` nearest come first (by squared-L2
distance, ties broken by position so the ordering is total and
deterministic), and every remaining candidate follows in its original
order as the exact-fallback tail.  Since dynamic equivalence ``∼_I`` is an
equivalence relation, at most one existing cluster can accept any given
program — so a first-match-wins scan over *any* permutation of the
candidates reaches the same cluster; the permutation only decides how many
expensive exact matches run before the hit.

:class:`RetrievalStats` carries the deterministic counters surfaced by
``batch --profile``, the service ``stats`` op and the committed
``results/retrieval_throughput.json`` gate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

__all__ = ["DEFAULT_TOP_K", "RetrievalStats", "ranked_candidates", "squared_distance"]

T = TypeVar("T")

#: Default size of the nearest-first head.  Large enough that the exact
#: fallback tail is essentially never consulted on MOOC-shaped corpora
#: (duplicate-heavy, a handful of genuinely distinct solutions per shape),
#: small enough that the gate stays O(k) when a pool holds hundreds of
#: clusters.
DEFAULT_TOP_K = 8


def squared_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Squared L2 distance between two integer vectors.

    Exact integer arithmetic — no floats — so comparisons (and therefore
    rankings) are identical across platforms and hash seeds.  Vectors of
    unequal length compare over the shared prefix with the excess counted
    against (a foreign-version vector never silently ranks equal).
    """
    shared = min(len(a), len(b))
    total = 0
    for index in range(shared):
        delta = a[index] - b[index]
        total += delta * delta
    for tail in (a[shared:], b[shared:]):
        for value in tail:
            total += value * value
    return total


def ranked_candidates(
    query: Sequence[int],
    candidates: Sequence[T],
    vector_of: Callable[[T], Sequence[int]],
    *,
    top_k: int,
) -> list[T]:
    """Order ``candidates`` nearest-first, keeping every one of them.

    The ``top_k`` nearest to ``query`` lead (distance ascending, original
    position as the deterministic tie-break); the rest follow in their
    original order — the exact-fallback tail that makes a first-match-wins
    scan over the result provably reach the same candidate as a scan over
    ``candidates`` itself.  ``top_k <= 0`` disables reordering entirely.
    Thread safety: pure function.
    """
    if top_k <= 0 or len(candidates) <= 1:
        return list(candidates)
    scored = sorted(
        range(len(candidates)),
        key=lambda index: (squared_distance(query, vector_of(candidates[index])), index),
    )
    head = scored[:top_k]
    chosen = set(head)
    return [candidates[index] for index in head] + [
        candidate
        for index, candidate in enumerate(candidates)
        if index not in chosen
    ]


@dataclass
class RetrievalStats:
    """Deterministic counters for the nearest-cluster prefilter.

    Attributes:
        candidates_ranked: Candidate clusters ordered by the prefilter
            before the repair-time structural gate.
        matches_attempted: Structural-match probes the gate actually made
            over prefiltered candidates (the quantity the top-k ordering
            shrinks from O(pool) towards O(1)).
        matches_skipped: Prefiltered candidates the gate never had to
            probe — cut by the CFG-skeleton test or short-circuited once a
            nearer candidate matched.
        fallbacks: Repairs where the prefilter could not rank (store header
            carries no usable vectors) or where the match sat beyond the
            top-k head and the exact-fallback tail found it.

    All counters are per-process totals guarded by an internal lock, so
    one instance is safe to share across batch worker threads; for a fixed
    sequence of repairs the values are independent of thread scheduling
    (each attempt contributes a fixed amount).
    """

    candidates_ranked: int = 0
    matches_attempted: int = 0
    matches_skipped: int = 0
    fallbacks: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(
        self,
        *,
        ranked: int = 0,
        attempted: int = 0,
        skipped: int = 0,
        fallbacks: int = 0,
    ) -> None:
        """Accumulate one repair's worth of counters atomically."""
        with self._lock:
            self.candidates_ranked += ranked
            self.matches_attempted += attempted
            self.matches_skipped += skipped
            self.fallbacks += fallbacks

    def as_dict(self) -> dict[str, int]:
        """Flat dict of the counters, for JSON reports."""
        with self._lock:
            return {
                "candidates_ranked": self.candidates_ranked,
                "matches_attempted": self.matches_attempted,
                "matches_skipped": self.matches_skipped,
                "fallbacks": self.fallbacks,
            }

    def snapshot(self) -> "RetrievalStats":
        """An independent copy of the current counter values."""
        return self.from_dict(self.as_dict())

    # -- algebra ---------------------------------------------------------------

    _COUNTER_FIELDS = (
        "candidates_ranked",
        "matches_attempted",
        "matches_skipped",
        "fallbacks",
    )

    @classmethod
    def from_dict(cls, payload: dict) -> "RetrievalStats":
        """Rebuild counters from an :meth:`as_dict` payload.

        The exact inverse of :meth:`as_dict`; this is how per-worker
        retrieval counters cross the process boundary in
        :mod:`repro.engine.parallel`.
        """
        return cls(**{name: int(payload.get(name, 0)) for name in cls._COUNTER_FIELDS})

    def merge(self, other: "RetrievalStats") -> "RetrievalStats":
        """Return a new snapshot with both operands' counters summed.

        Commutative, with ``RetrievalStats()`` as the identity: each repair
        contributes a fixed per-attempt amount, so folding per-worker
        snapshots in any order reproduces the single-process totals.
        Neither operand is mutated.
        """
        mine, theirs = self.as_dict(), other.as_dict()
        return RetrievalStats(
            **{name: mine[name] + theirs[name] for name in self._COUNTER_FIELDS}
        )

    def diff(self, other: "RetrievalStats") -> "RetrievalStats":
        """Return a new snapshot holding ``self - other`` per counter.

        The inverse of :meth:`merge`, for isolating the counters one run
        accumulated on a long-lived shared instance.
        """
        mine, theirs = self.as_dict(), other.as_dict()
        return RetrievalStats(
            **{name: mine[name] - theirs[name] for name in self._COUNTER_FIELDS}
        )
