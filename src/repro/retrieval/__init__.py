"""Approximate nearest-cluster retrieval (`docs/ARCHITECTURE.md`).

A cheap, deterministic feature vector per program lets both the clusterer
and the repair pipeline *order* candidate clusters nearest-first and try
the expensive exact procedures (full dynamic matching at build time,
Def. 4.1 structural matching at repair time) against the likeliest
clusters before the rest.  The exact matcher remains the decision
procedure — the prefilter never drops a candidate the exact ladder would
have accepted — so outcomes are field-identical with the prefilter on or
off; only the number of expensive match attempts changes.
"""

from .features import (
    FEATURE_VERSION,
    HISTOGRAM_BUCKETS,
    centroid_payload,
    cluster_feature_vector,
    cluster_skeleton,
    decode_retrieval_payload,
    feature_vector,
    retrieval_payload,
)
from .index import (
    DEFAULT_TOP_K,
    RetrievalStats,
    ranked_candidates,
    squared_distance,
)

__all__ = [
    "DEFAULT_TOP_K",
    "FEATURE_VERSION",
    "HISTOGRAM_BUCKETS",
    "RetrievalStats",
    "centroid_payload",
    "cluster_feature_vector",
    "cluster_skeleton",
    "decode_retrieval_payload",
    "feature_vector",
    "ranked_candidates",
    "retrieval_payload",
    "squared_distance",
]
