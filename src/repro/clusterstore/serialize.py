"""JSON encoding of expressions, programs and clusters.

The cluster store persists full :class:`~repro.core.clustering.Cluster`
objects — representative, members, expression pools with provenance — so a
loaded clustering repairs attempts *identically* to the in-process one.
Everything round-trips exactly:

* ``Const`` values distinguish ``list`` from ``tuple`` and ``bool`` from
  ``int`` (both distinctions matter to :func:`values_equal` and to
  expression equality), so containers are tagged rather than mapped to bare
  JSON arrays;
* update dictionaries and expression pools keep insertion order (serialized
  as pair lists), because pool order feeds candidate generation order;
* location names and line numbers survive (feedback text depends on them);
* every pool entry carries its precomputed **index**
  (:class:`~repro.core.clustering.PoolEntryIndex`: shape digest, size,
  variable set and Zhang–Shasha annotation), so a loaded store feeds the
  repair fast path without re-walking a single pool expression
  (``format_version`` 2, unchanged by the v3 segment layout — segments
  embed these very payloads).

Byte stability: every encoder in this module is a pure function producing
plain JSON data whose rendering (under the store's sorted-keys dump) is
fully determined by its input — ``encode_cluster(decode_cluster(d)) == d``
for any store-produced payload, the property the v2↔v3 round-trip
guarantees rest on.  Thread safety: encoders and decoders share no mutable
module state; the only caveat is that ``encode_cluster`` touches its
cluster's lazily built pool-index cache, which is idempotent (racing
encoders duplicate work, never corrupt it).
"""

from __future__ import annotations

from ..core.clustering import Cluster, ClusterExpression, PoolEntryIndex
from ..model.expr import Const, Expr, Op, Var, intern_expr
from ..model.program import Program
from ..ted import AnnotatedTree

__all__ = [
    "SerializationError",
    "encode_value",
    "decode_value",
    "encode_expr",
    "decode_expr",
    "encode_program",
    "decode_program",
    "encode_pool_index",
    "decode_pool_index",
    "encode_cluster",
    "decode_cluster",
]


class SerializationError(ValueError):
    """Raised when a payload cannot be encoded or decoded."""


# -- constant values -----------------------------------------------------------


def encode_value(value: object) -> object:
    """Encode a ``Const`` payload (Def. 3.1's literal domain) as JSON data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"k": "scalar", "v": value}
    if isinstance(value, list):
        return {"k": "list", "items": [encode_value(item) for item in value]}
    if isinstance(value, tuple):
        return {"k": "tuple", "items": [encode_value(item) for item in value]}
    raise SerializationError(f"unsupported constant value: {value!r}")


def decode_value(data: object) -> object:
    """Strict inverse of :func:`encode_value`.

    Raises:
        SerializationError: Malformed payload or unknown value kind.
    """
    if not isinstance(data, dict) or "k" not in data:
        raise SerializationError(f"malformed value payload: {data!r}")
    kind = data["k"]
    if kind == "scalar":
        return data["v"]
    if kind == "list":
        return [decode_value(item) for item in data["items"]]
    if kind == "tuple":
        return tuple(decode_value(item) for item in data["items"])
    raise SerializationError(f"unknown value kind: {kind!r}")


# -- expressions ---------------------------------------------------------------


def encode_expr(expr: Expr) -> object:
    """Encode one expression tree as tagged JSON data.

    Deterministic: structurally equal expressions always encode to equal
    payloads (argument order is preserved, nothing is hashed or interned
    at encode time).
    """
    if isinstance(expr, Var):
        return {"e": "var", "name": expr.name}
    if isinstance(expr, Const):
        return {"e": "const", "value": encode_value(expr.value)}
    if isinstance(expr, Op):
        return {
            "e": "op",
            "name": expr.name,
            "args": [encode_expr(arg) for arg in expr.args],
        }
    raise SerializationError(f"unsupported expression node: {expr!r}")


def decode_expr(data: object) -> Expr:
    """Strict inverse of :func:`encode_expr` (fresh, un-interned nodes).

    Raises:
        SerializationError: Malformed payload or unknown expression kind.
    """
    if not isinstance(data, dict) or "e" not in data:
        raise SerializationError(f"malformed expression payload: {data!r}")
    kind = data["e"]
    if kind == "var":
        return Var(data["name"])
    if kind == "const":
        return Const(decode_value(data["value"]))
    if kind == "op":
        return Op(data["name"], *(decode_expr(arg) for arg in data["args"]))
    raise SerializationError(f"unknown expression kind: {kind!r}")


# -- programs ------------------------------------------------------------------


def encode_program(program: Program) -> dict:
    """Encode one program — locations, updates, CFG edges, source.

    Deterministic for a given program: locations are emitted in canonical
    id order and successor edges sorted, so equal programs encode to equal
    payloads.  Thread safety: read-only on the (immutable-after-parse)
    program.
    """
    return {
        "name": program.name,
        "params": list(program.params),
        "source": program.source,
        "language": program.language,
        "init_loc": program.init_loc,
        "next_id": program._next_id,
        "locations": [
            {
                "loc_id": loc.loc_id,
                "name": loc.name,
                "line": loc.line,
                "updates": [
                    [var, encode_expr(expr)] for var, expr in loc.updates.items()
                ],
            }
            for loc in (
                program.locations[loc_id] for loc_id in program.location_ids()
            )
        ],
        "successors": [
            [loc_id, branch, succ]
            for (loc_id, branch), succ in sorted(program._succ.items())
        ],
    }


def decode_program(data: dict) -> Program:
    """Strict inverse of :func:`encode_program`.

    Raises:
        SerializationError: Missing fields or non-sequential location ids
            (a store produced by this codebase always has sequential ids,
            so a mismatch means the payload was edited or corrupted).
    """
    try:
        program = Program(
            data["name"],
            params=data["params"],
            source=data["source"],
            language=data["language"],
        )
        for entry in data["locations"]:
            loc = program.add_location(name=entry["name"], line=entry["line"])
            if loc.loc_id != entry["loc_id"]:
                # Location ids are assigned sequentially by add_location; a
                # store produced by this codebase always satisfies this, so a
                # mismatch means the payload was edited or corrupted.
                raise SerializationError(
                    f"non-sequential location id {entry['loc_id']} (expected {loc.loc_id})"
                )
            for var, expr_data in entry["updates"]:
                loc.updates[var] = decode_expr(expr_data)
        for loc_id, branch, succ in data["successors"]:
            program._succ[(loc_id, bool(branch))] = succ
        program.init_loc = data["init_loc"]
        program._next_id = data["next_id"]
        return program
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed program payload: {exc}") from exc


# -- pool indexes --------------------------------------------------------------


def encode_pool_index(index: PoolEntryIndex) -> dict:
    """Encode one pool entry's precomputed repair-fast-path index.

    Deterministic: a pure projection of the (frozen) index fields."""
    annotation = index.annotation
    return {
        "key": index.shape_key,
        "size": index.size,
        "vars": list(index.variables),
        "labels": list(annotation.labels),
        "lmld": list(annotation.lmld),
        "keyroots": list(annotation.keyroots),
    }


def decode_pool_index(data: object) -> PoolEntryIndex:
    """Strict inverse of :func:`encode_pool_index`.

    Raises:
        SerializationError: Malformed payload.
    """
    if not isinstance(data, dict):
        raise SerializationError(f"malformed pool index payload: {data!r}")
    try:
        annotation = AnnotatedTree(
            tuple(data["labels"]),
            tuple(int(i) for i in data["lmld"]),
            tuple(int(i) for i in data["keyroots"]),
        )
        return PoolEntryIndex(
            shape_key=data["key"],
            size=int(data["size"]),
            variables=tuple(data["vars"]),
            annotation=annotation,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed pool index payload: {exc}") from exc


# -- clusters ------------------------------------------------------------------


def encode_cluster(cluster: Cluster) -> dict:
    """Encode one cluster: representative, members, pools and pool indexes.

    Deterministic for a given cluster (expression pools keep insertion
    order; pool indexes are computed, not sampled), so repeated encodings
    are byte-identical under the store's sorted-keys dump.  Thread safety:
    builds the cluster's pool-index cache on first use — idempotent, so
    concurrent encoders at worst duplicate that work.
    """
    indexes = cluster.build_pool_indexes()
    return {
        "cluster_id": cluster.cluster_id,
        "fingerprint": cluster.fingerprint_digest,
        "representative": encode_program(cluster.representative),
        "members": [encode_program(member) for member in cluster.members],
        "expressions": [
            [
                loc_id,
                var,
                [
                    [encode_expr(entry.expr), entry.member_index]
                    for entry in pool
                ],
                [encode_pool_index(index) for index in indexes[(loc_id, var)]],
            ]
            for (loc_id, var), pool in cluster.expressions.items()
        ],
    }


def decode_cluster(data: dict) -> Cluster:
    """Decode one cluster.  Representative traces are *not* stored — the
    loader re-executes the representative on its own case set, which both
    keeps the store format small and revalidates it against the cases at
    hand.  Pool indexes *are* stored and seed the repair fast path, so
    ``batch --clusters`` never recomputes a pool expression's annotation.
    Exact inverse of :func:`encode_cluster`: re-encoding a decoded cluster
    reproduces the original payload byte for byte.

    Raises:
        SerializationError: Malformed payload, or a pool index whose length
            disagrees with its pool.
    """
    try:
        cluster = Cluster(
            cluster_id=data["cluster_id"],
            representative=decode_program(data["representative"]),
            representative_traces=[],
            members=[decode_program(member) for member in data["members"]],
            fingerprint_digest=data.get("fingerprint"),
        )
        for loc_id, var, pool, index_data in data["expressions"]:
            cluster.expressions[(loc_id, var)] = [
                ClusterExpression(intern_expr(decode_expr(expr_data)), member_index)
                for expr_data, member_index in pool
            ]
            index = [decode_pool_index(entry) for entry in index_data]
            if len(index) != len(pool):
                raise SerializationError(
                    f"pool index length {len(index)} does not match pool "
                    f"length {len(pool)} at location {loc_id}, variable {var!r}"
                )
            cluster.seed_pool_index(loc_id, var, index)
        return cluster
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SerializationError):
            raise
        raise SerializationError(f"malformed cluster payload: {exc}") from exc
