"""Persistent, index-driven clustering (the "build once, serve many" layer).

The core (:mod:`repro.core.clustering`) computes the equivalence classes of
``∼_I``; this package makes that computation scale and survive process
restarts:

* :mod:`repro.clusterstore.fingerprint` — matching-invariant program
  fingerprints used to prune full-match candidates and to shard the cluster
  build across workers;
* :mod:`repro.clusterstore.serialize` — JSON encoding of expressions,
  programs and clusters (expression pools with provenance included);
* :mod:`repro.clusterstore.store` — versioned on-disk cluster stores:
  :func:`save_clusters` / :func:`load_clusters`, the incremental
  :class:`ClusterStore` handle (``add_correct_source`` + revision counter),
  and the ``repro-clara cluster build`` / ``cluster info`` CLI surface.

Import layering: ``fingerprint`` sits *below* the core (only model/matching
helpers), because ``core.clustering`` consults it; ``store`` sits *above*
the core (it serializes ``Cluster`` objects).  The store symbols are
exported lazily so importing the fingerprint from the core never drags the
store — and with it the core itself — into a cycle.
"""

from __future__ import annotations

from .fingerprint import Fingerprint, canonical_value, program_fingerprint

__all__ = [
    "Fingerprint",
    "canonical_value",
    "program_fingerprint",
    "AddOutcome",
    "ClusterStore",
    "ClusterStoreError",
    "FORMAT_VERSION",
    "StoreHeader",
    "StoredClustering",
    "case_signature",
    "load_clusters",
    "read_store_header",
    "save_clusters",
]

_STORE_EXPORTS = {
    "AddOutcome",
    "ClusterStore",
    "ClusterStoreError",
    "FORMAT_VERSION",
    "StoreHeader",
    "StoredClustering",
    "case_signature",
    "load_clusters",
    "read_store_header",
    "save_clusters",
}


def __getattr__(name: str):
    if name in _STORE_EXPORTS:
        from . import store

        return getattr(store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
