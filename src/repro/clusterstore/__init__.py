"""Persistent, index-driven clustering (the "build once, serve many" layer).

The core (:mod:`repro.core.clustering`) computes the equivalence classes of
``∼_I``; this package makes that computation scale and survive process
restarts:

* :mod:`repro.clusterstore.fingerprint` — matching-invariant program
  fingerprints used to prune full-match candidates and to shard the cluster
  build across workers;
* :mod:`repro.clusterstore.serialize` — JSON encoding of expressions,
  programs and clusters (expression pools with provenance included);
* :mod:`repro.clusterstore.segments` — the indexed (format v3) layout's
  lower half: per-fingerprint-bucket segment files and the lazy
  :class:`~repro.clusterstore.segments.SegmentPager` that loads them on
  first matching lookup;
* :mod:`repro.clusterstore.store` — versioned on-disk cluster stores:
  :func:`save_clusters` / :func:`load_clusters` / :func:`open_lazy`, the
  incremental :class:`ClusterStore` handle (``add_correct_source`` +
  revision counter, eager or header-only via ``open_indexed``), v2
  interchange (:func:`export_clusters` / :func:`import_clusters`), and the
  ``repro-clara cluster build`` / ``info`` / ``export`` / ``import`` CLI
  surface.

The on-disk format itself is specified in ``docs/STORAGE.md``.

Import layering: ``fingerprint`` sits *below* the core (only model/matching
helpers), because ``core.clustering`` consults it; ``store`` sits *above*
the core (it serializes ``Cluster`` objects).  The store symbols are
exported lazily so importing the fingerprint from the core never drags the
store — and with it the core itself — into a cycle.
"""

from __future__ import annotations

from .fingerprint import Fingerprint, canonical_value, program_fingerprint

__all__ = [
    "Fingerprint",
    "canonical_value",
    "program_fingerprint",
    "AddOutcome",
    "ClusterStore",
    "ClusterStoreError",
    "FORMAT_VERSION",
    "LazyStoredClustering",
    "StoreHeader",
    "StoredClustering",
    "V2_FORMAT_VERSION",
    "case_signature",
    "export_clusters",
    "import_clusters",
    "load_clusters",
    "open_lazy",
    "read_store_header",
    "save_clusters",
]

_STORE_EXPORTS = {
    "AddOutcome",
    "ClusterStore",
    "ClusterStoreError",
    "FORMAT_VERSION",
    "LazyStoredClustering",
    "StoreHeader",
    "StoredClustering",
    "V2_FORMAT_VERSION",
    "case_signature",
    "export_clusters",
    "import_clusters",
    "load_clusters",
    "open_lazy",
    "read_store_header",
    "save_clusters",
}


def __getattr__(name: str):
    if name in _STORE_EXPORTS:
        from . import store

        return getattr(store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
