"""Segment files and the lazy pager of the indexed (format v3) cluster store.

A format-3 store is split in two on disk: a small **header** file (written
by :mod:`repro.clusterstore.store`) carrying the metadata and a
fingerprint→segment index, and a sibling ``<store>.segments/`` directory of
**segment** files, one per fingerprint bucket, each holding the full
encoding of that bucket's clusters.  This module owns everything below the
header: segment naming, the byte-stable segment document, the index entries
the header embeds, and :class:`SegmentPager` — the lazy read path that
loads a segment from disk only on the first lookup that needs it.

Two digests drive paging, both derived from the matching-invariant
fingerprint (:mod:`repro.clusterstore.fingerprint`):

* the **fingerprint digest** names the segment file and serves exact-bucket
  lookups (``ClusterStore.add_correct_source`` pages in precisely the
  bucket a new submission could join);
* the **skeleton digest** — a hash of the CFG-skeleton component alone —
  serves repair-time lookups: skeleton equality is *necessary* for Def. 4.1
  structural matchability (:meth:`repro.model.program.Program.cfg_skeleton`),
  so repairing an attempt only ever needs the segments whose skeleton
  digest equals the attempt's.  Segments of unfingerprinted clusters
  (stores built with pruning off) carry no skeleton digest and are paged
  unconditionally, which keeps the pruning sound for every store.

Byte stability: :func:`encode_segment_document` writes sorted keys, 2-space
indentation and a trailing newline, so identical cluster content always
produces byte-identical segment files — the property the incremental-update
equivalence guarantee (``tests/test_store_updates.py``) and the committed
``results/`` gates rest on.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from ..core.clustering import Cluster
from ..model.program import Program
from .serialize import SerializationError, decode_cluster, encode_cluster

__all__ = [
    "FORMAT_VERSION",
    "SEGMENT_FORMAT_NAME",
    "UNFINGERPRINTED_SEGMENT",
    "SegmentIndexEntry",
    "SegmentPager",
    "segment_dir",
    "segment_name",
    "skeleton_digest",
    "encode_segment_document",
    "decode_segment_document",
    "index_entry_for",
    "group_clusters",
]

#: Bump whenever the on-disk layout or its semantics change.
#: Version history: 1 — initial monolithic layout; 2 — pool entries carry
#: precomputed repair-fast-path indexes; 3 — indexed segment layout: a
#: header file with a fingerprint→segment index plus per-bucket segment
#: files that page in lazily (see docs/STORAGE.md).  Version 2 lives on as
#: the single-file interchange format (``cluster export`` / ``import``).
FORMAT_VERSION = 3

#: Format marker of segment files (distinct from the header marker, so a
#: segment handed to the store loader is rejected with a clear message).
SEGMENT_FORMAT_NAME = "repro-clara-clusterstore-segment"

#: Segment holding clusters without a fingerprint digest (stores built with
#: fingerprint pruning disabled).  It has no skeleton digest either, so
#: every lookup pages it in — the conservative choice that keeps lazy
#: pruning sound for such stores.
UNFINGERPRINTED_SEGMENT = "seg-none.json"


def skeleton_digest(program: Program) -> str:
    """Hex digest of a program's canonical CFG skeleton.

    Two programs are structurally matchable (Def. 4.1) only if their
    skeletons — and hence these digests — are equal, which is what lets the
    repair path page in only skeleton-matching segments without changing
    any outcome.  Byte stability: the digest hashes the ``repr`` of the
    canonical skeleton tuple, which is deterministic across processes and
    platforms.  Thread safety: pure function of an immutable-after-parse
    program; safe from any thread.
    """
    _order, skeleton = program.cfg_skeleton()
    return hashlib.sha256(repr(skeleton).encode()).hexdigest()


def segment_dir(store_path: str | Path) -> Path:
    """The segment directory of a store header at ``store_path``.

    Always ``<store_path>.segments`` alongside the header, so a store is
    moved or copied by taking the header file and this one directory.
    Thread safety: pure path arithmetic.
    """
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".segments")


def segment_name(fingerprint_digest: str | None) -> str:
    """Deterministic segment file name for one fingerprint bucket.

    The full 64-hex-character digest is embedded (no truncation), so
    distinct buckets can never collide on a file name.  ``None`` — clusters
    built without fingerprint pruning — maps to the shared
    :data:`UNFINGERPRINTED_SEGMENT`.  Thread safety: pure function.
    """
    if fingerprint_digest is None:
        return UNFINGERPRINTED_SEGMENT
    return f"seg-{fingerprint_digest}.json"


@dataclass(frozen=True)
class SegmentIndexEntry:
    """One row of the header's segment index (see docs/STORAGE.md).

    Attributes:
        segment: Segment file name inside the store's segment directory.
        fingerprint: Shared fingerprint digest of the segment's clusters
            (``None`` for the unfingerprinted segment).
        skeleton: Shared CFG-skeleton digest (:func:`skeleton_digest`) of
            the segment's representatives; ``None`` means "unknown, always
            page in".
        clusters: Number of clusters in the segment.
        members: Total member programs across those clusters.
        bytes: Exact byte length of the segment file.  Doubles as a
            freshness check: a segment whose on-disk size disagrees with
            the header it was opened under was rewritten after the open,
            and the pager refuses it deterministically instead of mixing
            store generations.
        max_cluster_id: Largest cluster id in the segment (``-1`` when
            empty); the incremental updater mints new ids from the maximum
            over all entries without paging anything in.
        retrieval: Additive nearest-cluster retrieval payload
            (:func:`repro.retrieval.features.retrieval_payload`): the
            segment's integer feature-vector centroid plus one vector per
            cluster, keyed by cluster id.  ``None`` on headers written
            before retrieval existed — readers then disable the prefilter
            for the affected lookups instead of erroring, so old stores
            keep serving unchanged (format version stays 3).
    """

    segment: str
    fingerprint: str | None
    skeleton: str | None
    clusters: int
    members: int
    bytes: int
    max_cluster_id: int
    retrieval: dict | None = None

    def to_json(self) -> dict:
        """Plain-dict form embedded in the store header (byte-stable via
        the header's sorted-keys dump).  Thread safety: read-only."""
        return {
            "segment": self.segment,
            "fingerprint": self.fingerprint,
            "skeleton": self.skeleton,
            "clusters": self.clusters,
            "members": self.members,
            "bytes": self.bytes,
            "max_cluster_id": self.max_cluster_id,
            "retrieval": self.retrieval,
        }

    @classmethod
    def from_json(cls, data: object) -> "SegmentIndexEntry":
        """Strict inverse of :meth:`to_json`.

        ``retrieval`` is the one lenient field: absent (pre-retrieval
        headers) decodes as ``None`` rather than raising, so stores built
        before the prefilter existed stay loadable.

        Raises:
            SerializationError: Missing or mistyped fields.
        """
        if not isinstance(data, dict):
            raise SerializationError(f"malformed segment index entry: {data!r}")
        try:
            retrieval = data.get("retrieval")
            return cls(
                segment=str(data["segment"]),
                fingerprint=data["fingerprint"],
                skeleton=data["skeleton"],
                clusters=int(data["clusters"]),
                members=int(data["members"]),
                bytes=int(data["bytes"]),
                max_cluster_id=int(data["max_cluster_id"]),
                retrieval=retrieval if isinstance(retrieval, dict) else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"malformed segment index entry: {exc}"
            ) from exc


def encode_segment_document(
    fingerprint: str | None, clusters: Sequence[Cluster]
) -> str:
    """Render one segment file's full text.

    Byte stability: sorted keys, 2-space indent, trailing newline — the
    same clusters always yield byte-identical text, so an incremental
    segment rewrite converges with a from-scratch store build.  Thread
    safety: pure function of its arguments (building pool indexes mutates
    per-cluster caches idempotently; racing encoders do duplicate work,
    never corruption).
    """
    document = {
        "format": SEGMENT_FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "fingerprint": fingerprint,
        "clusters": [encode_cluster(cluster) for cluster in clusters],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def decode_segment_document(
    text: str, *, path: Path, expected_fingerprint: str | None
) -> list[Cluster]:
    """Parse and validate one segment file's text into clusters.

    Validates the segment format marker, the format version and that the
    segment's recorded fingerprint matches the header index entry it was
    looked up under (``expected_fingerprint``) — a mismatch means the file
    was swapped or hand-edited.  Decoded clusters have empty
    ``representative_traces`` (the store never persists traces); callers
    re-execute representatives on their own case set.

    Raises:
        SerializationError: Invalid JSON, wrong marker/version, fingerprint
            mismatch, or a malformed cluster payload.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"segment {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != SEGMENT_FORMAT_NAME:
        raise SerializationError(
            f"{path} is not a cluster-store segment (missing "
            f"'{SEGMENT_FORMAT_NAME}' format marker)"
        )
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"segment {path} has format version {version!r}, expected {FORMAT_VERSION}"
        )
    if document.get("fingerprint") != expected_fingerprint:
        raise SerializationError(
            f"segment {path} records fingerprint {document.get('fingerprint')!r} "
            f"but the store header indexes it under {expected_fingerprint!r}"
        )
    try:
        return [decode_cluster(entry) for entry in document["clusters"]]
    except (KeyError, TypeError, SerializationError) as exc:
        raise SerializationError(f"segment {path} is malformed: {exc}") from exc


def index_entry_for(
    name: str,
    fingerprint: str | None,
    skeleton: str | None,
    clusters: Sequence[Cluster],
    text: str,
) -> SegmentIndexEntry:
    """Build the header index entry describing an encoded segment.

    ``text`` must be exactly what was (or will be) written to disk — its
    UTF-8 length becomes the entry's ``bytes`` freshness check.  The
    retrieval payload is recomputed from the clusters' representatives, a
    pure function of the program model, so migrated, incrementally updated
    and freshly built stores all converge on identical header bytes.
    Thread safety: pure function.
    """
    from ..retrieval import retrieval_payload

    return SegmentIndexEntry(
        segment=name,
        fingerprint=fingerprint,
        skeleton=skeleton,
        clusters=len(clusters),
        members=sum(cluster.size for cluster in clusters),
        bytes=len(text.encode("utf-8")),
        max_cluster_id=max((cluster.cluster_id for cluster in clusters), default=-1),
        retrieval=retrieval_payload(list(clusters)),
    )


def group_clusters(
    clusters: Sequence[Cluster],
) -> list[tuple[str, str | None, str | None, list[Cluster]]]:
    """Group clusters into segments: ``(name, fingerprint, skeleton, clusters)``.

    Clusters sharing a fingerprint digest share a segment (and therefore a
    skeleton digest — the fingerprint embeds the skeleton); clusters with
    no digest share :data:`UNFINGERPRINTED_SEGMENT`, whose skeleton is
    recorded as ``None`` (always paged).  Segments are sorted by file name
    and clusters by id within each, so grouping is deterministic: the same
    clustering always yields the same segment layout, byte for byte.
    Thread safety: pure function.
    """
    buckets: dict[str | None, list[Cluster]] = {}
    for cluster in clusters:
        buckets.setdefault(cluster.fingerprint_digest, []).append(cluster)
    groups = []
    for digest, bucket in buckets.items():
        bucket = sorted(bucket, key=lambda cluster: cluster.cluster_id)
        skeleton = (
            skeleton_digest(bucket[0].representative) if digest is not None else None
        )
        groups.append((segment_name(digest), digest, skeleton, bucket))
    groups.sort(key=lambda group: group[0])
    return groups


class SegmentPager:
    """Lazy, cached read path over one open v3 store's segment files.

    Created from a decoded header index; reads **no** segment until a
    lookup needs one, then caches the decoded clusters for the lifetime of
    the pager.  The pager is a snapshot reader: it serves the store
    generation its header described, and detects a segment rewritten by a
    concurrent updater through the index's byte-length check (raising
    :class:`~repro.clusterstore.store.ClusterStoreError`-compatible
    errors via the injected ``error`` class) rather than silently mixing
    generations.

    Thread safety: all public methods are safe to call from concurrent
    repair workers — lookups, page-ins and counter reads run under one
    internal lock, so each segment is read and decoded exactly once and
    the ``on_load`` hook runs exactly once per segment.  The returned
    cluster lists are shared objects treated as read-only by repair;
    only the single-updater :class:`~repro.clusterstore.store.ClusterStore`
    mutates them (it is documented as not thread-safe).

    Attributes:
        on_load: Optional hook called (under the pager lock) with each
            newly decoded cluster list before it is cached; the pipeline
            uses it to execute representatives on its case set so every
            cluster a lookup returns is repair-ready.
    """

    def __init__(
        self,
        store_path: str | Path,
        entries: Sequence[SegmentIndexEntry],
        *,
        error: type[Exception] = SerializationError,
        on_load: "Callable[[list[Cluster]], None] | None" = None,
    ) -> None:
        self.store_path = Path(store_path)
        self.directory = segment_dir(self.store_path)
        self._entries: list[SegmentIndexEntry] = sorted(
            entries, key=lambda entry: entry.segment
        )
        self._by_name: dict[str, SegmentIndexEntry] = {
            entry.segment: entry for entry in self._entries
        }
        self._loaded: dict[str, list[Cluster]] = {}
        self._lock = threading.Lock()
        self._error = error
        self.on_load = on_load

    # -- index views (no disk access) ------------------------------------------

    @property
    def entries(self) -> list[SegmentIndexEntry]:
        """The index entries, sorted by segment name (a fresh list)."""
        with self._lock:
            return list(self._entries)

    def entry(self, name: str) -> SegmentIndexEntry | None:
        """The index entry for ``name``, or ``None``."""
        with self._lock:
            return self._by_name.get(name)

    def counters(self) -> dict:
        """Deterministic loaded/skipped paging counters.

        The loaded set depends only on which lookups were made — not on
        thread scheduling — so these counters are stable enough to commit
        (``results/store_paging.json``) and assert on in tests.  Thread
        safety: a consistent snapshot taken under the pager lock.
        """
        with self._lock:
            loaded = len(self._loaded)
            clusters_loaded = sum(len(found) for found in self._loaded.values())
            return {
                "segments_total": len(self._entries),
                "segments_loaded": loaded,
                "segments_skipped": len(self._entries) - loaded,
                "clusters_total": sum(entry.clusters for entry in self._entries),
                "clusters_loaded": clusters_loaded,
            }

    # -- lookups (page in on demand) -------------------------------------------

    def clusters_for_fingerprint(self, digest: str | None) -> list[Cluster]:
        """Clusters that could share ``digest``'s fingerprint bucket.

        Pages in at most two segments: the bucket named by the digest and
        the unfingerprinted segment (whose clusters were stored without a
        digest and must always be tried).  Returned in cluster-id order —
        exactly the order an eager store iterates its matching clusters.
        """
        names = []
        if digest is not None:
            names.append(segment_name(digest))
        names.append(UNFINGERPRINTED_SEGMENT)
        return self._collect(names)

    def clusters_for_skeleton(self, digest: str) -> list[Cluster]:
        """Clusters whose representatives could structurally match ``digest``.

        Pages in every segment whose skeleton digest equals ``digest`` plus
        all segments with no skeleton digest; every cluster in any other
        segment has a provably different CFG skeleton and cannot match
        (Def. 4.1), so skipping it cannot change a repair outcome.
        Returned in cluster-id order.
        """
        with self._lock:
            names = [
                entry.segment
                for entry in self._entries
                if entry.skeleton is None or entry.skeleton == digest
            ]
        return self._collect(names)

    def all_clusters(self) -> list[Cluster]:
        """Page in every segment; clusters in cluster-id order."""
        with self._lock:
            names = [entry.segment for entry in self._entries]
        return self._collect(names)

    def loaded_clusters(self, name: str) -> list[Cluster] | None:
        """The cached cluster list of an already-paged segment (no I/O).

        Returns the live (mutable) list — the incremental updater appends
        to it — or ``None`` when the segment was never paged in.
        """
        with self._lock:
            return self._loaded.get(name)

    def adopt_cluster(self, cluster: Cluster) -> str:
        """Attach a newly minted cluster to its bucket's in-memory segment.

        Used by the single-updater incremental path after a ``created``
        outcome: registers a fresh index entry when the bucket has no
        segment yet (with placeholder sizes — the updater's save recomputes
        them from content) and appends the cluster to the segment's cached
        list.  Returns the segment name, which the caller marks dirty.
        Thread safety: lock-guarded, but intended for one updater process
        (see ``ClusterStore``).
        """
        name = segment_name(cluster.fingerprint_digest)
        with self._lock:
            if name not in self._by_name:
                skeleton = (
                    skeleton_digest(cluster.representative)
                    if cluster.fingerprint_digest is not None
                    else None
                )
                entry = SegmentIndexEntry(
                    segment=name,
                    fingerprint=cluster.fingerprint_digest,
                    skeleton=skeleton,
                    clusters=0,
                    members=0,
                    bytes=0,
                    max_cluster_id=-1,
                    retrieval=None,  # recomputed from content at save time
                )
                self._by_name[name] = entry
                self._entries.append(entry)
                self._entries.sort(key=lambda item: item.segment)
                self._loaded[name] = []
            self._loaded[name].append(cluster)
        return name

    def replace_entry(self, entry: SegmentIndexEntry) -> None:
        """Install a recomputed index entry after a segment rewrite, so the
        pager's index view matches what the saved header now records."""
        with self._lock:
            self._by_name[entry.segment] = entry
            self._entries = sorted(
                (
                    entry if existing.segment == entry.segment else existing
                    for existing in self._entries
                ),
                key=lambda item: item.segment,
            )

    # -- internals ---------------------------------------------------------------

    def _collect(self, names: Sequence[str]) -> list[Cluster]:
        clusters: list[Cluster] = []
        with self._lock:
            for name in names:
                entry = self._by_name.get(name)
                if entry is None:
                    continue
                clusters.extend(self._load_locked(entry))
        return sorted(clusters, key=lambda cluster: cluster.cluster_id)

    def _load_locked(self, entry: SegmentIndexEntry) -> list[Cluster]:
        """Read, verify and decode one segment; caller holds the lock."""
        cached = self._loaded.get(entry.segment)
        if cached is not None:
            return cached
        path = self.directory / entry.segment
        try:
            raw = path.read_text()
        except OSError as exc:
            raise self._error(
                f"cannot read cluster-store segment {path}: {exc}"
            ) from exc
        actual = len(raw.encode("utf-8"))
        if actual != entry.bytes:
            raise self._error(
                f"segment {path} is {actual} bytes but the store header records "
                f"{entry.bytes}; the store changed on disk after it was opened — "
                f"reopen (or hot-reload) the store to pick up the new revision"
            )
        try:
            clusters = decode_segment_document(
                raw, path=path, expected_fingerprint=entry.fingerprint
            )
        except SerializationError as exc:
            raise self._error(str(exc)) from exc
        if self.on_load is not None:
            self.on_load(clusters)
        self._loaded[entry.segment] = clusters
        return clusters
