"""Structural fingerprints for candidate pruning (generalizing
:meth:`repro.model.program.Program.structure_key`).

Clustering (Def. 4.7) places each correct program by attempting the full
dynamic-matching procedure of Fig. 4 against existing cluster
representatives — an expensive check involving per-variable trace
projections and bipartite matching.  A *fingerprint* is a cheap hashable
summary that is **invariant under matching**: whenever ``find_matching(p, q)``
succeeds, ``program_fingerprint(p, …) == program_fingerprint(q, …)``.
Indexing clusters by fingerprint therefore prunes candidates soundly — a
program only needs full matches against representatives in its own bucket,
and the resulting clustering is *identical* to the exhaustive one.

A fingerprint combines three components, each a necessary condition checked
by :func:`repro.core.matching.find_matching`:

* the **control-flow skeleton** (:meth:`Program.cfg_skeleton`) — canonical
  CFG shape; equal skeletons are exactly Def. 4.1 structural matchability
  for fully reachable programs;
* the **variable-arity signature** — the number of variables participating
  in the bijective relation (a total bijection needs equal counts).  Note a
  deliberately *global* count: per-location update arity is **not**
  invariant under dynamic matching (an explicit identity update or a
  runtime no-op assignment changes where updates sit without changing any
  trace), so finer per-location arities would split clusters that the
  exhaustive procedure merges;
* the **output-trace signature** — per test case, the canonicalized
  control-flow path (location sequence over canonical indices, which *is*
  per-location step-count information), the aborted flag, and the
  projections of the fixed special variables (``$cond``, ``$ret``,
  ``$out``, ``$retflag``, ``$stdin``), which matching requires to agree
  verbatim.

Trace values are canonicalized shape-only by :func:`canonical_value`:
:func:`repro.interpreter.values.values_equal` compares numbers with a float
tolerance (and ``1 == 1.0`` across int/float), which admits no exact
canonical form, so all non-bool numbers collapse to a single marker while
booleans, strings, ``None``, ``UNDEF`` and sequence shapes stay exact.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from ..core.matching import FIXED_VARS, variables_for_matching
from ..model.program import Program
from ..model.trace import Trace, project
from ..interpreter.values import is_undef

__all__ = ["Fingerprint", "program_fingerprint", "canonical_value"]

#: Marker to which every non-bool number canonicalizes (see module docstring).
_NUMBER = "num"


def canonical_value(value: object) -> object:
    """Collapse a trace value to a hashable form respecting ``values_equal``.

    Guarantees ``values_equal(a, b)`` implies
    ``canonical_value(a) == canonical_value(b)`` — the property that makes
    fingerprint pruning sound.  The converse deliberately does not hold
    (all numbers share one marker); false bucket collisions only cost a
    full match attempt, never a wrong cluster.  Byte stability: the
    canonical form is built from value structure only (no ids, no hashes),
    so equal values canonicalize identically across processes.  Thread
    safety: pure function.
    """
    if is_undef(value):
        return "undef"
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return _NUMBER
    if isinstance(value, str):
        return ("str", value)
    if value is None:
        return "none"
    if isinstance(value, list):
        return ("list", tuple(canonical_value(item) for item in value))
    if isinstance(value, tuple):
        return ("tuple", tuple(canonical_value(item) for item in value))
    # Unknown domain values compare by type identity plus ``==``; only the
    # type name is stable enough to hash without risking a false split.
    return ("other", type(value).__name__)


class Fingerprint:
    """A hashable matching-invariant key with a stable hex digest.

    Instances compare and hash by their canonical component tuple; the
    :attr:`digest` (sha-256 of a canonical repr) is what the cluster store
    persists, names v3 segment files with, and ``cluster info`` displays.
    Byte stability: the digest depends only on the canonical key, so equal
    fingerprints digest identically across processes and platforms.
    Thread safety: effectively immutable — the lazily memoized digest is
    computed from immutable state, so a race at worst recomputes it.
    """

    __slots__ = ("key", "_digest")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self._digest: str | None = None

    @property
    def digest(self) -> str:
        if self._digest is None:
            self._digest = hashlib.sha256(repr(self.key).encode()).hexdigest()
        return self._digest

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fingerprint) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Fingerprint {self.digest[:12]}>"


def program_fingerprint(program: Program, traces: Sequence[Trace]) -> Fingerprint:
    """Fingerprint a program from its already-computed traces.

    ``traces`` must be the program's traces on the clustering case set (one
    per case, as produced by :func:`repro.core.inputs.program_traces` or the
    engine's trace cache); fingerprinting re-uses them rather than
    re-executing, so its cost is a linear pass over the trace data.
    Deterministic: the same program and traces always yield the same
    fingerprint (and digest).  Thread safety: pure function of its
    arguments.
    """
    order, skeleton = program.cfg_skeleton()
    canon_index = {loc_id: index for index, loc_id in enumerate(order)}
    arity = len(variables_for_matching(program))
    trace_signature = []
    for trace in traces:
        path = tuple(
            canon_index.get(loc_id, -1) for loc_id in trace.location_sequence
        )
        fixed = tuple(
            tuple(canonical_value(value) for value in project(trace, var))
            for var in sorted(FIXED_VARS)
        )
        trace_signature.append((path, trace.aborted, fixed))
    return Fingerprint((skeleton, arity, tuple(trace_signature)))
