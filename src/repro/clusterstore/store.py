"""Versioned on-disk cluster stores ("build once, serve many").

Since format version 3 a cluster store is **two** things on disk (see
``docs/STORAGE.md`` for the full specification):

* a small JSON **header** file at the store path, carrying the format
  version, content revision, source language, the case signature the
  clustering was built against, aggregate counts, and a fingerprint→segment
  **index** (:class:`~repro.clusterstore.segments.SegmentIndexEntry` rows);
* a sibling ``<store>.segments/`` directory with one JSON **segment** file
  per fingerprint bucket, holding the full encodings of that bucket's
  clusters (:mod:`repro.clusterstore.segments`).

Opening a store reads only the header; segments page in lazily on the
first lookup that needs them (:func:`open_lazy`), which is what makes a
catalog-scale correct pool cheap to consult — repairing one attempt
touches the header plus the segments whose CFG-skeleton digest matches
the attempt, nothing else.  The old single-file version-2 layout lives on
as the **interchange format**: :func:`export_clusters` renders a v3 store
to the byte-stable v2 JSON document, and :func:`import_clusters` migrates
a v2 document (in place if desired) to v3.

Invalidation rules (checked on load, see :func:`load_clusters`):

* ``format_version`` must equal :data:`FORMAT_VERSION` exactly — the format
  carries semantic content (expression encoding, pool order, segment
  layout), so neither older nor newer stores are silently accepted; v2
  stores get a ``cluster import`` migration hint, anything else a rebuild
  hint;
* the ``case_signature`` — a digest of the canonical case-set key
  (:func:`repro.engine.cache.case_set_key`) — must match the cases the
  loader is about to repair against, because clusters are equivalence
  classes *relative to the input set* (Def. 4.4): the same corpus clustered
  against different cases is a different clustering.  Callers that know
  better (e.g. a superset case set for inspection only) can opt out.

Representative traces are deliberately not stored: the loader re-executes
each representative on the case set at hand, which keeps stores small and
doubles as an end-to-end revalidation of the decoded programs.

Stores carry a monotonically increasing **revision** counter in the header
(absent in stores written before revisions existed, read as 0).  The
revision identifies a *content state* of one store: every successful
:meth:`ClusterStore.add_correct_source` bumps it, and a serving process
(:mod:`repro.service`) reports the revision its answers were computed
against, so operators can tell whether a running daemon has picked up an
updated store.  The revision is metadata, not format — ``format_version``
stays unchanged.

Atomicity is **per file**: every header and segment write goes through a
sibling temporary file and :func:`os.replace`, and a full save writes the
header *last*, so a reader that opened the previous header keeps a
consistent generation — if an updater rewrote a segment under it, the
header index's byte-length check turns the race into a deterministic
"store changed on disk, reopen it" error instead of mixed-generation data.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.clustering import Cluster, _canonical_order, _identity_witness
from ..core.inputs import InputCase, program_traces, trace_passes_case
from ..core.matching import find_matching
from ..model.program import Program
from .fingerprint import program_fingerprint
from .segments import (
    FORMAT_VERSION,
    SegmentIndexEntry,
    SegmentPager,
    encode_segment_document,
    group_clusters,
    index_entry_for,
    segment_dir,
    segment_name,
    skeleton_digest,
)
from .serialize import SerializationError, decode_cluster, encode_cluster

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.cache import RepairCaches

__all__ = [
    "FORMAT_VERSION",
    "V2_FORMAT_VERSION",
    "FORMAT_NAME",
    "ClusterStoreError",
    "StoreHeader",
    "StoredClustering",
    "LazyStoredClustering",
    "ClusterStore",
    "AddOutcome",
    "case_signature",
    "read_store_header",
    "save_clusters",
    "load_clusters",
    "open_lazy",
    "encode_v2_document",
    "export_clusters",
    "import_clusters",
]

#: The single-file layout of format version 2, kept as the interchange
#: format: ``cluster export`` writes it, ``cluster import`` reads it, and
#: its byte-stable rendering is what the committed ``results/`` gates of
#: earlier revisions were built on.
V2_FORMAT_VERSION = 2
FORMAT_NAME = "repro-clara-clusterstore"


class ClusterStoreError(ValueError):
    """Raised for unreadable, mis-versioned or mismatched stores."""


def case_signature(cases: Sequence[InputCase]) -> str:
    """Stable digest of an ordered case set.

    Built on the same canonical key the engine caches use, so two case sets
    are interchangeable for a store exactly when they are interchangeable
    for the trace cache.  Byte stability: the digest is a SHA-256 of the
    canonical key's ``repr`` — deterministic across processes and
    platforms.  Thread safety: pure function.
    """
    from ..engine.cache import case_set_key

    return hashlib.sha256(repr(case_set_key(cases)).encode()).hexdigest()


@dataclass(frozen=True)
class StoreHeader:
    """Store metadata read without decoding (or paging in) any cluster.

    Produced by :func:`read_store_header`, which accepts *any* format
    version — this is the "what is this file?" view that ``cluster info``
    shows for stale stores without tripping the strict migration-hint error
    of :func:`load_clusters`.  For current (v3) stores the header also
    carries the decoded segment index; for older versions ``segments`` is
    empty.  Thread safety: frozen dataclass, safe to share.
    """

    path: Path
    format_version: int
    revision: int
    language: str
    entry: str | None
    problem: str | None
    case_signature: str
    cluster_count: int
    total_members: int
    segments: tuple[SegmentIndexEntry, ...] = field(default=())

    @property
    def is_current(self) -> bool:
        """Whether this build's :func:`load_clusters` would accept the store."""
        return self.format_version == FORMAT_VERSION

    def segment_bytes(self) -> int:
        """Total bytes across all indexed segment files (0 for old formats)."""
        return sum(entry.bytes for entry in self.segments)


class StoredClustering:
    """An eagerly decoded store: all clusters plus the header metadata.

    ``clusters`` have empty ``representative_traces``; callers that repair
    against them must re-execute representatives first
    (:meth:`repro.core.pipeline.Clara.load_clusters` does).  Thread
    safety: a plain container — share only after publication.
    """

    def __init__(
        self,
        clusters: list[Cluster],
        *,
        language: str,
        entry: str | None,
        problem: str | None,
        case_signature: str,
        format_version: int,
        revision: int = 0,
    ) -> None:
        self.clusters = clusters
        self.language = language
        self.entry = entry
        self.problem = problem
        self.case_signature = case_signature
        self.format_version = format_version
        self.revision = revision

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def total_members(self) -> int:
        return sum(cluster.size for cluster in self.clusters)


class LazyStoredClustering:
    """A header-only view of a v3 store whose clusters page in on demand.

    The lazy counterpart of :class:`StoredClustering`, produced by
    :func:`open_lazy`: construction reads nothing beyond the already-decoded
    header, and each lookup pages in only the segments that could possibly
    satisfy it (see :class:`~repro.clusterstore.segments.SegmentPager`).
    Paged-in clusters have empty ``representative_traces`` unless the
    consumer installs a ``pager.on_load`` hook that executes them
    (:meth:`repro.core.pipeline.Clara.attach_lazy_clusters` does).

    Thread safety: header attributes are immutable; lookups and counters
    are lock-guarded by the pager, so concurrent repair workers can share
    one instance.
    """

    def __init__(self, header: StoreHeader, pager: SegmentPager) -> None:
        self.header = header
        self.pager = pager
        self._retrieval_vectors: dict[int, tuple[int, ...]] | None = None

    @property
    def language(self) -> str:
        return self.header.language

    @property
    def entry(self) -> str | None:
        return self.header.entry

    @property
    def problem(self) -> str | None:
        return self.header.problem

    @property
    def case_signature(self) -> str:
        return self.header.case_signature

    @property
    def format_version(self) -> int:
        return self.header.format_version

    @property
    def revision(self) -> int:
        return self.header.revision

    @property
    def cluster_count(self) -> int:
        """Total clusters per the header index — available without paging."""
        return self.header.cluster_count

    def total_members(self) -> int:
        """Total member programs per the header index — no paging."""
        return self.header.total_members

    def clusters_for_program(self, program: Program) -> list[Cluster]:
        """Every stored cluster that could structurally match ``program``.

        Pages in only the segments whose CFG-skeleton digest equals the
        program's (plus unfingerprinted segments, which carry no digest) —
        skeleton equality is necessary for a Def. 4.1 structural match, so
        the skipped segments provably contain no candidate and repair
        outcomes are identical to an eager load.
        """
        return self.pager.clusters_for_skeleton(skeleton_digest(program))

    def clusters_for_fingerprint(self, digest: str | None) -> list[Cluster]:
        """Clusters in ``digest``'s fingerprint bucket (plus unfingerprinted
        ones) — the exact candidate set an incremental add must try."""
        return self.pager.clusters_for_fingerprint(digest)

    def all_clusters(self) -> list[Cluster]:
        """Page in everything; clusters in cluster-id order."""
        return self.pager.all_clusters()

    def retrieval_vectors(self) -> dict[int, tuple[int, ...]]:
        """Per-cluster retrieval vectors merged from the header index.

        Available without paging in a single segment — the vectors ride in
        each :class:`~repro.clusterstore.segments.SegmentIndexEntry`.
        Segments written before retrieval existed (or with a foreign
        feature version) contribute nothing, so the result may cover only
        part of the store; the repair prefilter checks coverage per
        candidate set and falls back to the unranked exact ladder when a
        candidate has no vector.  Thread safety: the merge is computed
        once from the immutable header and memoized (racing fills agree).
        """
        vectors = self._retrieval_vectors
        if vectors is None:
            from ..retrieval import decode_retrieval_payload

            vectors = {}
            for entry in self.header.segments:
                decoded = decode_retrieval_payload(entry.retrieval)
                if decoded:
                    vectors.update(decoded)
            self._retrieval_vectors = vectors
        return vectors

    def paging_counters(self) -> dict:
        """Deterministic loaded/skipped segment counters (see
        :meth:`~repro.clusterstore.segments.SegmentPager.counters`)."""
        return self.pager.counters()


# -- writing ---------------------------------------------------------------------


def _replace_file(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _write_header(
    path: Path,
    entries: Sequence[SegmentIndexEntry],
    *,
    signature: str,
    language: str,
    entry: str | None,
    problem: str | None,
    revision: int,
) -> None:
    """Atomically write a v3 header describing ``entries``.

    Aggregate counts are derived from the index entries, so the header can
    never disagree with its own index.  Byte stability: sorted keys,
    2-space indent, trailing newline.
    """
    document = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "revision": revision,
        "language": language,
        "entry": entry,
        "problem": problem,
        "case_signature": signature,
        "cluster_count": sum(item.clusters for item in entries),
        "total_members": sum(item.members for item in entries),
        "segments": [item.to_json() for item in entries],
    }
    _replace_file(path, json.dumps(document, indent=2, sort_keys=True) + "\n")


def _write_store(
    path: Path,
    clusters: Sequence[Cluster],
    *,
    signature: str,
    language: str,
    entry: str | None,
    problem: str | None,
    revision: int,
) -> Path:
    """Write a complete v3 store: all segments, then the header.

    Segment files for buckets that no longer exist are pruned, so a full
    save leaves exactly the files the new index names.  Each file is
    replaced atomically and the header is written last — a concurrent
    reader holds either the old generation (whose segments the byte-length
    check validates) or the new one, never a mix it cannot detect.

    Byte stability: grouping, per-segment ordering and both encodings are
    deterministic, so identical clusterings produce byte-identical file
    trees regardless of how (or in how many steps) they were built.
    """
    directory = segment_dir(path)
    directory.mkdir(parents=True, exist_ok=True)
    entries: list[SegmentIndexEntry] = []
    for name, fingerprint, skeleton, bucket in group_clusters(clusters):
        text = encode_segment_document(fingerprint, bucket)
        _replace_file(directory / name, text)
        entries.append(index_entry_for(name, fingerprint, skeleton, bucket, text))
    keep = {item.segment for item in entries}
    for stale in directory.glob("seg-*.json"):
        if stale.name not in keep:
            stale.unlink()
    _write_header(
        path,
        entries,
        signature=signature,
        language=language,
        entry=entry,
        problem=problem,
        revision=revision,
    )
    return path


def save_clusters(
    path: str | Path,
    clusters: Sequence[Cluster],
    cases: Sequence[InputCase],
    *,
    language: str = "python",
    entry: str | None = None,
    problem: str | None = None,
    revision: int = 0,
) -> Path:
    """Serialize ``clusters`` (built against ``cases``) to a v3 store.

    Writes the header at ``path`` and the segment files under
    ``<path>.segments/``.  Byte stability: every file is written with
    sorted keys and a trailing newline, so identical clusterings produce
    byte-identical stores — header and segments alike.  ``revision`` is
    the store's content revision (see the module docstring); a fresh build
    writes 0, and :meth:`ClusterStore.save` passes the bumped counter.
    Thread safety: one writer at a time; each file lands via an atomic
    replace so concurrent readers never see a torn write.
    """
    return _write_store(
        Path(path),
        clusters,
        signature=case_signature(cases),
        language=language,
        entry=entry,
        problem=problem,
        revision=revision,
    )


# -- reading ---------------------------------------------------------------------


def _read_document(path: Path) -> dict:
    """Read and JSON-parse a store file, checking only the format marker."""
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ClusterStoreError(f"cannot read cluster store {path}: {exc}") from exc
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ClusterStoreError(f"cluster store {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != FORMAT_NAME:
        raise ClusterStoreError(
            f"{path} is not a cluster store (missing '{FORMAT_NAME}' format marker)"
        )
    return document


def _decode_index(path: Path, document: dict) -> tuple[SegmentIndexEntry, ...]:
    """Decode a v3 header's segment index, strictly."""
    try:
        return tuple(
            SegmentIndexEntry.from_json(item)
            for item in document.get("segments", [])
        )
    except SerializationError as exc:
        raise ClusterStoreError(
            f"cluster store {path} has a malformed segment index: {exc}"
        ) from exc


def _require_current(path: Path, version: object) -> None:
    """Reject non-v3 stores with a version-appropriate migration hint."""
    if version == FORMAT_VERSION:
        return
    if version == V2_FORMAT_VERSION:
        raise ClusterStoreError(
            f"cluster store {path} has format version {V2_FORMAT_VERSION} (the "
            f"monolithic single-file layout), but this build reads version "
            f"{FORMAT_VERSION}; migrate it in place with 'repro-clara cluster "
            f"import {path} --output {path}', or rebuild the store with "
            f"'repro-clara cluster build'"
        )
    raise ClusterStoreError(
        f"cluster store {path} has format version {version!r}, but this build "
        f"reads version {FORMAT_VERSION}; rebuild the store with "
        f"'repro-clara cluster build'"
    )


def read_store_header(path: str | Path) -> StoreHeader:
    """Read a store's header metadata without paging in any cluster.

    Unlike :func:`load_clusters` this accepts *any* format version — the
    point is to let operators identify a store (version, revision, problem)
    even when it is too old or too new to serve from.  Only the format
    marker itself is validated, except that a current-version store's
    segment index must decode (a corrupt index on a v3 store is an error,
    not something to gloss over).  Reads exactly one file.  Thread safety:
    pure function returning a frozen header.

    Raises:
        ClusterStoreError: Unreadable file, invalid JSON, a file that is
            not a cluster store at all, or a v3 header whose segment index
            is malformed.
    """
    path = Path(path)
    document = _read_document(path)
    version = document.get("format_version")
    segments: tuple[SegmentIndexEntry, ...] = ()
    if version == FORMAT_VERSION:
        segments = _decode_index(path, document)
    return StoreHeader(
        path=path,
        format_version=version if isinstance(version, int) else -1,
        revision=document.get("revision", 0) or 0,
        language=document.get("language", "python"),
        entry=document.get("entry"),
        problem=document.get("problem"),
        case_signature=document.get("case_signature", ""),
        cluster_count=document.get("cluster_count", 0) or 0,
        total_members=document.get("total_members", 0) or 0,
        segments=segments,
    )


def _check_signature(
    path: Path,
    signature: str,
    cases: Sequence[InputCase] | None,
    check_cases: bool,
) -> None:
    if check_cases and cases is not None and signature != case_signature(cases):
        raise ClusterStoreError(
            f"cluster store {path} was built against a different test-case set; "
            f"clusters are only valid for the inputs they were clustered on — "
            f"rebuild the store for these cases (or pass check_cases=False to "
            f"inspect it anyway)"
        )


def load_clusters(
    path: str | Path,
    *,
    cases: Sequence[InputCase] | None = None,
    check_cases: bool = True,
) -> StoredClustering:
    """Load and validate a cluster store **eagerly** (every segment read).

    The strict, read-everything entry point — use :func:`open_lazy` when
    only a slice of the store will be consulted.  Byte-level integrity of
    each segment is checked against the header index before decoding.

    Args:
        path: Store header written by :func:`save_clusters`.
        cases: When given (and ``check_cases`` is true), the store's case
            signature must match — repairing against a clustering built for
            different inputs silently changes what "equivalent" means, so a
            mismatch is an error, not a warning.
        check_cases: Set to ``False`` to skip the signature check (e.g. the
            read-only ``cluster export`` command).

    Raises:
        ClusterStoreError: Unreadable file, wrong format name, wrong format
            version (v2 stores get a ``cluster import`` migration hint),
            case-set mismatch, or a malformed/stale segment.
    """
    path = Path(path)
    document = _read_document(path)
    version = document.get("format_version")
    _require_current(path, version)
    signature = document.get("case_signature", "")
    _check_signature(path, signature, cases, check_cases)
    entries = _decode_index(path, document)
    pager = SegmentPager(path, entries, error=ClusterStoreError)
    clusters = pager.all_clusters()
    declared = document.get("cluster_count")
    if declared is not None and declared != len(clusters):
        raise ClusterStoreError(
            f"cluster store {path} is malformed: header declares {declared} "
            f"clusters but the segments hold {len(clusters)}"
        )
    return StoredClustering(
        clusters,
        language=document.get("language", "python"),
        entry=document.get("entry"),
        problem=document.get("problem"),
        case_signature=signature,
        format_version=version,
        revision=document.get("revision", 0) or 0,
    )


def open_lazy(
    path: str | Path,
    *,
    cases: Sequence[InputCase] | None = None,
    check_cases: bool = True,
) -> LazyStoredClustering:
    """Open a v3 store **header-only**; clusters page in on first lookup.

    Performs the same version and case-signature validation as
    :func:`load_clusters` but reads exactly one file — the header.  The
    returned view's lookups load only the segments whose index entry could
    satisfy them; a segment rewritten on disk after this open is detected
    by the index's byte-length check and reported as a deterministic error
    rather than served.  Thread safety: the returned view is safe to share
    across repair workers.

    Raises:
        ClusterStoreError: Same conditions as :func:`load_clusters`, minus
            segment errors, which surface lazily at first touch.
    """
    path = Path(path)
    header = read_store_header(path)
    _require_current(path, header.format_version)
    _check_signature(path, header.case_signature, cases, check_cases)
    pager = SegmentPager(path, header.segments, error=ClusterStoreError)
    return LazyStoredClustering(header, pager)


# -- v2 interchange (export / import) --------------------------------------------


def encode_v2_document(
    clusters: Sequence[Cluster],
    *,
    signature: str,
    language: str,
    entry: str | None,
    problem: str | None,
    revision: int,
) -> str:
    """Render clusters as the single-file v2 JSON interchange document.

    This is, byte for byte, the writer of the retired format version 2 —
    sorted keys, 2-space indent, trailing newline — so exporting a store
    that was migrated *from* v2 reproduces its original payload exactly
    (asserted in ``tests/test_store_segments.py``).  Thread safety: pure
    function.
    """
    document = {
        "format": FORMAT_NAME,
        "format_version": V2_FORMAT_VERSION,
        "revision": revision,
        "language": language,
        "entry": entry,
        "problem": problem,
        "case_signature": signature,
        "cluster_count": len(clusters),
        "total_members": sum(cluster.size for cluster in clusters),
        "clusters": [encode_cluster(cluster) for cluster in clusters],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def export_clusters(store_path: str | Path, output_path: str | Path) -> Path:
    """Export a v3 store to a single v2 JSON interchange document.

    The export is lossless and byte-stable: importing the document with
    :func:`import_clusters` and exporting again yields identical bytes, and
    metadata (revision, case signature, language, entry, problem) is copied
    verbatim.  No case set is needed — the stored signature is trusted.
    Thread safety: read-only on the store; the output lands atomically.

    Raises:
        ClusterStoreError: The store is unreadable, stale or malformed.
    """
    stored = load_clusters(store_path, check_cases=False)
    text = encode_v2_document(
        stored.clusters,
        signature=stored.case_signature,
        language=stored.language,
        entry=stored.entry,
        problem=stored.problem,
        revision=stored.revision,
    )
    output = Path(output_path)
    _replace_file(output, text)
    return output


def import_clusters(source_path: str | Path, output_path: str | Path) -> Path:
    """Migrate a v2 JSON document (store or export) to an indexed v3 store.

    Metadata — revision, case signature, language, entry, problem — is
    preserved verbatim, so the migrated store serves exactly what the v2
    file did.  ``output_path`` may equal ``source_path`` for an in-place
    migration: segments are written first and the header replaces the v2
    file last, atomically.  Byte stability: importing the same document
    always produces the same file tree, identical to a fresh
    :func:`save_clusters` of the same clusters.

    Raises:
        ClusterStoreError: Not a v2 document (v1 stores lack the
            precomputed pool indexes — rebuild those), or malformed payload.
    """
    source_path = Path(source_path)
    document = _read_document(source_path)
    version = document.get("format_version")
    if version == FORMAT_VERSION:
        raise ClusterStoreError(
            f"{source_path} is already a format-{FORMAT_VERSION} store; "
            f"'cluster import' reads the version-{V2_FORMAT_VERSION} JSON "
            f"documents written by 'repro-clara cluster export'"
        )
    if version != V2_FORMAT_VERSION:
        raise ClusterStoreError(
            f"{source_path} has format version {version!r}; 'cluster import' "
            f"reads version-{V2_FORMAT_VERSION} JSON documents only — older "
            f"stores lack the precomputed pool indexes, rebuild the store "
            f"with 'repro-clara cluster build'"
        )
    try:
        clusters = [decode_cluster(item) for item in document["clusters"]]
    except (KeyError, TypeError, SerializationError) as exc:
        raise ClusterStoreError(
            f"cluster store {source_path} is malformed: {exc}"
        ) from exc
    return _write_store(
        Path(output_path),
        clusters,
        signature=document.get("case_signature", ""),
        language=document.get("language", "python"),
        entry=document.get("entry"),
        problem=document.get("problem"),
        revision=document.get("revision", 0) or 0,
    )


# -- incremental updates --------------------------------------------------------


@dataclass(frozen=True)
class AddOutcome:
    """Result of one :meth:`ClusterStore.add_correct_source` call.

    Attributes:
        status: ``"joined"`` (matched an existing cluster), ``"created"``
            (minted a new cluster), or one of the rejection statuses
            ``"rejected-parse"`` / ``"rejected-execution"`` /
            ``"rejected-incorrect"``.  Rejections leave the store — and its
            revision — untouched.
        cluster_id: The cluster joined or created (``None`` on rejection).
        detail: Human-readable reason for rejections, empty otherwise.
        revision: The store's revision *after* this call.
    """

    status: str
    cluster_id: int | None
    detail: str
    revision: int

    @property
    def accepted(self) -> bool:
        return self.status in ("joined", "created")


class ClusterStore:
    """A mutable handle on one on-disk cluster store (open → update → save).

    Where :func:`save_clusters`/:func:`load_clusters` treat a store as an
    immutable snapshot rebuilt from scratch, a ``ClusterStore`` supports the
    *incremental* deployment flow: as new correct submissions arrive, route
    each through :meth:`add_correct_source` — which places it exactly where
    a full re-clustering would — bump the revision, and :meth:`save` the
    store atomically so a running :class:`repro.service.RepairService` can
    hot-reload it between requests.

    Two opening modes share this class:

    * :meth:`open` loads every segment eagerly (the original behaviour);
    * :meth:`open_indexed` reads only the header — each
      :meth:`add_correct_source` then pages in just the new submission's
      fingerprint bucket (plus the unfingerprinted segment), and
      :meth:`save` rewrites only the segments that changed.  For a store
      with many buckets this makes ingestion cost proportional to the
      touched bucket, not the store.

    **Equivalence guarantee.**  ``add_correct_source(src)`` produces a store
    byte-identical (modulo revision) to rebuilding from scratch with ``src``
    appended to the original correct pool (asserted in
    ``tests/test_store_updates.py``), in both modes: the new program is
    fingerprinted, tried against existing clusters in creation order within
    its fingerprint bucket (first match wins, exactly the order the
    exhaustive loop would use) and otherwise minted as a new cluster with
    the next id — which is precisely where the deterministic merge of
    :func:`repro.core.clustering.cluster_programs` would place it.

    Thread safety: instances are **not** thread-safe — they are intended
    for a single updater process (a course ingests new correct submissions
    serially).  Readers are isolated by :meth:`save`'s per-file atomic
    replaces (header written last): a concurrent reader sees either the
    old or the new generation of each file, and the header index's
    byte-length check turns a cross-generation read into a deterministic
    error instead of silent corruption.

    Args:
        path: The store header this handle reads and writes.
        cases: The test-case set the clustering is relative to (Def. 4.4);
            must match the store's ``case_signature``.
        clusters: The decoded clusters, representative traces populated
            (in indexed mode: the clusters materialized so far).
        language: Source language of the member programs.
        entry: Entry function name used when parsing new sources.
        problem: Optional problem name recorded in the header.
        revision: Current content revision.
        caches: Optional :class:`repro.engine.cache.RepairCaches` through
            which executions and fingerprints are routed.
    """

    def __init__(
        self,
        path: str | Path,
        cases: Sequence[InputCase],
        clusters: list[Cluster],
        *,
        language: str = "python",
        entry: str | None = None,
        problem: str | None = None,
        revision: int = 0,
        caches: "RepairCaches | None" = None,
    ) -> None:
        self.path = Path(path)
        self.cases = cases
        self.clusters = clusters
        self.language = language
        self.entry = entry
        self.problem = problem
        self._revision = revision
        self.caches = caches
        # Indexed (lazy) mode state — set up by open_indexed().
        self._pager: SegmentPager | None = None
        self._signature: str | None = None
        self._lazy_cluster_count = 0
        self._lazy_total_members = 0
        self._max_cluster_id = -1
        self._dirty: set[str] = set()

    @classmethod
    def open(
        cls,
        path: str | Path,
        cases: Sequence[InputCase],
        *,
        caches: "RepairCaches | None" = None,
        check_cases: bool = True,
    ) -> "ClusterStore":
        """Load ``path`` **eagerly** into a mutable handle.

        Validates format version and (by default) the case signature, then
        re-executes each representative on ``cases`` to rebuild the traces
        that incremental matching needs.  Every segment is read up front;
        use :meth:`open_indexed` to defer that work.

        Raises:
            ClusterStoreError: see :func:`load_clusters`.
        """
        stored = load_clusters(path, cases=cases, check_cases=check_cases)
        for cluster in stored.clusters:
            cluster.representative_traces = list(
                cls._traces(caches, cluster.representative, cases)
            )
        return cls(
            path,
            cases,
            stored.clusters,
            language=stored.language,
            entry=stored.entry,
            problem=stored.problem,
            revision=stored.revision,
            caches=caches,
        )

    @classmethod
    def open_indexed(
        cls,
        path: str | Path,
        cases: Sequence[InputCase],
        *,
        caches: "RepairCaches | None" = None,
        check_cases: bool = True,
    ) -> "ClusterStore":
        """Open ``path`` **header-only**; segments page in as adds need them.

        The lazy counterpart of :meth:`open`: nothing beyond the header is
        read until :meth:`add_correct_source` consults a fingerprint
        bucket, and :meth:`save` rewrites only dirty segments (plus the
        header).  Outcomes, revisions and saved bytes are identical to the
        eager mode — only the I/O schedule differs.  Representative traces
        of paged-in clusters are rebuilt at page-in time.

        Raises:
            ClusterStoreError: see :func:`open_lazy`.
        """
        source = open_lazy(path, cases=cases, check_cases=check_cases)
        store = cls(
            path,
            cases,
            [],
            language=source.language,
            entry=source.entry,
            problem=source.problem,
            revision=source.revision,
            caches=caches,
        )
        store._pager = source.pager
        store._signature = source.case_signature
        store._lazy_cluster_count = source.cluster_count
        store._lazy_total_members = source.total_members()
        store._max_cluster_id = max(
            (item.max_cluster_id for item in source.pager.entries), default=-1
        )
        source.pager.on_load = store._on_page_in
        return store

    def _on_page_in(self, clusters: list[Cluster]) -> None:
        """Pager hook: make freshly paged clusters repair-ready."""
        for cluster in clusters:
            cluster.representative_traces = list(
                self._traces(self.caches, cluster.representative, self.cases)
            )
        self.clusters.extend(clusters)

    # ``docs/API.md`` names: exporting/importing is independent of any open
    # handle, so these are module functions surfaced on the class for
    # discoverability ("import" itself is a reserved word).
    export = staticmethod(export_clusters)
    import_v2 = staticmethod(import_clusters)

    @staticmethod
    def _traces(caches: "RepairCaches | None", program, cases):
        if caches is not None:
            return caches.traces(program, cases)
        return program_traces(program, cases)

    @property
    def revision(self) -> int:
        """Monotonically increasing content revision (bumped per accepted add)."""
        return self._revision

    @property
    def indexed(self) -> bool:
        """Whether this handle was opened header-only (:meth:`open_indexed`)."""
        return self._pager is not None

    @property
    def cluster_count(self) -> int:
        """Total clusters — from the header index in indexed mode (no paging)."""
        if self._pager is not None:
            return self._lazy_cluster_count
        return len(self.clusters)

    def total_members(self) -> int:
        """Total members — from the header index in indexed mode (no paging)."""
        if self._pager is not None:
            return self._lazy_total_members
        return sum(cluster.size for cluster in self.clusters)

    def paging_counters(self) -> dict | None:
        """Loaded/skipped segment counters (``None`` when opened eagerly)."""
        if self._pager is None:
            return None
        return self._pager.counters()

    def add_correct_source(self, source: str) -> AddOutcome:
        """Place one new correct submission without re-clustering the pool.

        The source is parsed, executed on the store's cases and verified
        correct; incorrect or unparseable submissions are rejected (MOOC
        dumps routinely contain mislabelled data) and leave the store
        unchanged.  An accepted program joins the first existing cluster it
        matches — only clusters in its own fingerprint bucket are tried,
        the same pruning the batch build uses; in indexed mode only that
        bucket's segment (plus the unfingerprinted one) is even read from
        disk — or becomes the representative of a new cluster, and the
        revision is bumped.

        Changes live in memory until :meth:`save` is called.  Thread
        safety: single-updater only, like every mutation on this class.

        Returns:
            An :class:`AddOutcome` naming the cluster joined/created (or
            the rejection reason) and the resulting revision.
        """
        from ..frontend import FrontendError, parse_source

        try:
            program = parse_source(source, language=self.language, entry=self.entry)
        except FrontendError as exc:
            return AddOutcome("rejected-parse", None, str(exc), self._revision)
        try:
            traces = list(self._traces(self.caches, program, self.cases))
        except Exception as exc:  # noqa: BLE001 - defensive: report, don't crash
            return AddOutcome(
                "rejected-execution", None, f"execution error: {exc}", self._revision
            )
        if not all(
            trace_passes_case(trace, case) for trace, case in zip(traces, self.cases)
        ):
            return AddOutcome(
                "rejected-incorrect",
                None,
                "submission does not pass the store's test cases",
                self._revision,
            )

        if self.caches is not None:
            fingerprint = self.caches.fingerprint(program, self.cases, traces=traces)
        else:
            fingerprint = program_fingerprint(program, traces)
        if self._pager is not None:
            # Indexed mode: page in exactly the candidate set — the new
            # program's bucket plus clusters stored without a digest.
            candidates = self._pager.clusters_for_fingerprint(fingerprint.digest)
        else:
            candidates = self.clusters
        if len(candidates) > 1:
            # Nearest-first scan (repro.retrieval): ∼_I is an equivalence
            # relation, so at most one cluster can accept the program — the
            # ranking cannot change which cluster that is, it only lets the
            # first-match-wins loop below stop after ~1 full match.
            from ..retrieval import (
                DEFAULT_TOP_K,
                cluster_feature_vector,
                feature_vector,
                ranked_candidates,
            )

            candidates = ranked_candidates(
                feature_vector(program),
                candidates,
                cluster_feature_vector,
                top_k=DEFAULT_TOP_K,
            )
        order = _canonical_order(program)
        for cluster in candidates:
            in_bucket = cluster.fingerprint_digest == fingerprint.digest
            if cluster.fingerprint_digest is not None and not in_bucket:
                # A differing fingerprint proves the full match cannot
                # succeed (matching invariance); clusters from stores built
                # without pruning (digest None) are tried unconditionally.
                continue
            location_map = None
            if in_bucket and order is not None:
                rep_order = _canonical_order(cluster.representative)
                if rep_order is not None:
                    location_map = dict(zip(order, rep_order))
            witness = find_matching(
                program,
                cluster.representative,
                self.cases,
                query_traces=traces,
                base_traces=cluster.representative_traces,
                location_map=location_map,
            )
            if witness is not None:
                cluster.add_member(program, witness)
                self._revision += 1
                if self._pager is not None:
                    self._dirty.add(segment_name(cluster.fingerprint_digest))
                    self._lazy_total_members += 1
                return AddOutcome("joined", cluster.cluster_id, "", self._revision)

        if self._pager is not None:
            # The header index records the largest id per segment, so the
            # next id is known without paging anything else in.
            next_id = self._max_cluster_id + 1
        else:
            next_id = max((c.cluster_id for c in self.clusters), default=-1) + 1
        cluster = Cluster(
            cluster_id=next_id,
            representative=program,
            representative_traces=traces,
            fingerprint_digest=fingerprint.digest,
        )
        cluster.add_member(program, _identity_witness(program))
        if self._pager is not None:
            self._dirty.add(self._pager.adopt_cluster(cluster))
            self._max_cluster_id = cluster.cluster_id
            self._lazy_cluster_count += 1
            self._lazy_total_members += 1
        self.clusters.append(cluster)
        self._revision += 1
        return AddOutcome("created", cluster.cluster_id, "", self._revision)

    def add_correct_sources(self, sources: Iterable[str]) -> list[AddOutcome]:
        """Apply :meth:`add_correct_source` to each source, in order."""
        return [self.add_correct_source(source) for source in sources]

    def save(self) -> Path:
        """Persist the current clusters and revision, atomically per file.

        Eager handles rewrite the whole store; indexed handles rewrite only
        the segments dirtied since the last save, then the header — the
        resulting file tree is byte-identical either way (and identical to
        a from-scratch build of the same clusters, modulo revision).
        Concurrent readers (a serving daemon hot-reloading the problem)
        never observe a torn file, and a reader caught between generations
        fails deterministically via the index byte-length check.
        """
        if self._pager is None:
            return _write_store(
                self.path,
                self.clusters,
                signature=case_signature(self.cases),
                language=self.language,
                entry=self.entry,
                problem=self.problem,
                revision=self._revision,
            )
        directory = segment_dir(self.path)
        directory.mkdir(parents=True, exist_ok=True)
        for name in sorted(self._dirty):
            entry = self._pager.entry(name)
            bucket = sorted(
                self._pager.loaded_clusters(name) or [],
                key=lambda cluster: cluster.cluster_id,
            )
            text = encode_segment_document(entry.fingerprint, bucket)
            _replace_file(directory / name, text)
            self._pager.replace_entry(
                index_entry_for(name, entry.fingerprint, entry.skeleton, bucket, text)
            )
        _write_header(
            self.path,
            self._pager.entries,
            signature=self._signature or "",
            language=self.language,
            entry=self.entry,
            problem=self.problem,
            revision=self._revision,
        )
        self._dirty.clear()
        return self.path
