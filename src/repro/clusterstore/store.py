"""Versioned on-disk cluster stores ("build once, serve many").

A cluster store is one JSON document holding a whole clustering — every
cluster of :func:`repro.core.clustering.cluster_programs` with its
representative, members, expression pools (provenance included) and
fingerprint digest — plus a header identifying the format version, source
language and the test-case set the clustering was built against.

Invalidation rules (checked on load, see :func:`load_clusters`):

* ``format_version`` must equal :data:`FORMAT_VERSION` exactly — the format
  carries semantic content (expression encoding, pool order), so neither
  older nor newer stores are silently accepted;
* the ``case_signature`` — a digest of the canonical case-set key
  (:func:`repro.engine.cache.case_set_key`) — must match the cases the
  loader is about to repair against, because clusters are equivalence
  classes *relative to the input set* (Def. 4.4): the same corpus clustered
  against different cases is a different clustering.  Callers that know
  better (e.g. a superset case set for inspection only) can opt out.

Representative traces are deliberately not stored: the loader re-executes
each representative on the case set at hand, which keeps stores small and
doubles as an end-to-end revalidation of the decoded programs.

Stores carry a monotonically increasing **revision** counter in the header
(absent in stores written before revisions existed, read as 0).  The
revision identifies a *content state* of one store file: every successful
:meth:`ClusterStore.add_correct_source` bumps it, and a serving process
(:mod:`repro.service`) reports the revision its answers were computed
against, so operators can tell whether a running daemon has picked up an
updated store.  The revision is metadata, not format — ``format_version``
stays unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.clustering import Cluster, _canonical_order, _identity_witness
from ..core.inputs import InputCase, program_traces, trace_passes_case
from ..core.matching import find_matching
from .fingerprint import program_fingerprint
from .serialize import SerializationError, decode_cluster, encode_cluster

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.cache import RepairCaches

__all__ = [
    "FORMAT_VERSION",
    "FORMAT_NAME",
    "ClusterStoreError",
    "StoreHeader",
    "StoredClustering",
    "ClusterStore",
    "AddOutcome",
    "case_signature",
    "read_store_header",
    "save_clusters",
    "load_clusters",
]

#: Bump whenever the on-disk layout or its semantics change.
#: Version history: 1 — initial layout; 2 — pool entries carry precomputed
#: repair-fast-path indexes (shape digest, variables, TED annotation).
FORMAT_VERSION = 2
FORMAT_NAME = "repro-clara-clusterstore"


class ClusterStoreError(ValueError):
    """Raised for unreadable, mis-versioned or mismatched stores."""


def case_signature(cases: Sequence[InputCase]) -> str:
    """Stable digest of an ordered case set.

    Built on the same canonical key the engine caches use, so two case sets
    are interchangeable for a store exactly when they are interchangeable
    for the trace cache.
    """
    from ..engine.cache import case_set_key

    return hashlib.sha256(repr(case_set_key(cases)).encode()).hexdigest()


@dataclass(frozen=True)
class StoreHeader:
    """Store metadata read without decoding (or validating) the clusters.

    Produced by :func:`read_store_header`, which accepts *any* format
    version — this is the "what is this file?" view that ``cluster info``
    shows for stale stores without tripping the strict rebuild-hint error
    of :func:`load_clusters`.
    """

    path: Path
    format_version: int
    revision: int
    language: str
    entry: str | None
    problem: str | None
    case_signature: str
    cluster_count: int
    total_members: int

    @property
    def is_current(self) -> bool:
        """Whether this build's :func:`load_clusters` would accept the store."""
        return self.format_version == FORMAT_VERSION


class StoredClustering:
    """A decoded store: clusters plus the header metadata.

    ``clusters`` have empty ``representative_traces``; callers that repair
    against them must re-execute representatives first
    (:meth:`repro.core.pipeline.Clara.load_clusters` does).
    """

    def __init__(
        self,
        clusters: list[Cluster],
        *,
        language: str,
        entry: str | None,
        problem: str | None,
        case_signature: str,
        format_version: int,
        revision: int = 0,
    ) -> None:
        self.clusters = clusters
        self.language = language
        self.entry = entry
        self.problem = problem
        self.case_signature = case_signature
        self.format_version = format_version
        self.revision = revision

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def total_members(self) -> int:
        return sum(cluster.size for cluster in self.clusters)


def save_clusters(
    path: str | Path,
    clusters: Sequence[Cluster],
    cases: Sequence[InputCase],
    *,
    language: str = "python",
    entry: str | None = None,
    problem: str | None = None,
    revision: int = 0,
) -> Path:
    """Serialize ``clusters`` (built against ``cases``) to ``path``.

    The document is written with sorted keys and a trailing newline so
    identical clusterings produce byte-identical stores.  ``revision`` is
    the store's content revision (see the module docstring); a fresh build
    writes 0, and :meth:`ClusterStore.save` passes the bumped counter.
    """
    path = Path(path)
    document = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "revision": revision,
        "language": language,
        "entry": entry,
        "problem": problem,
        "case_signature": case_signature(cases),
        "cluster_count": len(clusters),
        "total_members": sum(cluster.size for cluster in clusters),
        "clusters": [encode_cluster(cluster) for cluster in clusters],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def _read_document(path: Path) -> dict:
    """Read and JSON-parse a store file, checking only the format marker."""
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ClusterStoreError(f"cannot read cluster store {path}: {exc}") from exc
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ClusterStoreError(f"cluster store {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != FORMAT_NAME:
        raise ClusterStoreError(
            f"{path} is not a cluster store (missing '{FORMAT_NAME}' format marker)"
        )
    return document


def read_store_header(path: str | Path) -> StoreHeader:
    """Read a store's header metadata without decoding the clusters.

    Unlike :func:`load_clusters` this accepts *any* format version — the
    point is to let operators identify a store (version, revision, problem)
    even when it is too old or too new to serve from.  Only the format
    marker itself is validated.

    Raises:
        ClusterStoreError: Unreadable file, invalid JSON, or a file that is
            not a cluster store at all.
    """
    path = Path(path)
    document = _read_document(path)
    version = document.get("format_version")
    return StoreHeader(
        path=path,
        format_version=version if isinstance(version, int) else -1,
        revision=document.get("revision", 0) or 0,
        language=document.get("language", "python"),
        entry=document.get("entry"),
        problem=document.get("problem"),
        case_signature=document.get("case_signature", ""),
        cluster_count=document.get("cluster_count", 0) or 0,
        total_members=document.get("total_members", 0) or 0,
    )


def load_clusters(
    path: str | Path,
    *,
    cases: Sequence[InputCase] | None = None,
    check_cases: bool = True,
) -> StoredClustering:
    """Load and validate a cluster store.

    Args:
        path: Store file written by :func:`save_clusters`.
        cases: When given (and ``check_cases`` is true), the store's case
            signature must match — repairing against a clustering built for
            different inputs silently changes what "equivalent" means, so a
            mismatch is an error, not a warning.
        check_cases: Set to ``False`` to skip the signature check (e.g. the
            read-only ``cluster info`` command).

    Raises:
        ClusterStoreError: Unreadable file, wrong format name, wrong
            format version, case-set mismatch, or malformed payload.
    """
    path = Path(path)
    document = _read_document(path)
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ClusterStoreError(
            f"cluster store {path} has format version {version!r}, but this build "
            f"reads version {FORMAT_VERSION}; rebuild the store with "
            f"'repro-clara cluster build'"
        )
    signature = document.get("case_signature", "")
    if check_cases and cases is not None and signature != case_signature(cases):
        raise ClusterStoreError(
            f"cluster store {path} was built against a different test-case set; "
            f"clusters are only valid for the inputs they were clustered on — "
            f"rebuild the store for these cases (or pass check_cases=False to "
            f"inspect it anyway)"
        )
    try:
        clusters = [decode_cluster(entry) for entry in document["clusters"]]
    except (KeyError, TypeError, SerializationError) as exc:
        raise ClusterStoreError(f"cluster store {path} is malformed: {exc}") from exc
    return StoredClustering(
        clusters,
        language=document.get("language", "python"),
        entry=document.get("entry"),
        problem=document.get("problem"),
        case_signature=signature,
        format_version=version,
        revision=document.get("revision", 0) or 0,
    )


# -- incremental updates --------------------------------------------------------


@dataclass(frozen=True)
class AddOutcome:
    """Result of one :meth:`ClusterStore.add_correct_source` call.

    Attributes:
        status: ``"joined"`` (matched an existing cluster), ``"created"``
            (minted a new cluster), or one of the rejection statuses
            ``"rejected-parse"`` / ``"rejected-execution"`` /
            ``"rejected-incorrect"``.  Rejections leave the store — and its
            revision — untouched.
        cluster_id: The cluster joined or created (``None`` on rejection).
        detail: Human-readable reason for rejections, empty otherwise.
        revision: The store's revision *after* this call.
    """

    status: str
    cluster_id: int | None
    detail: str
    revision: int

    @property
    def accepted(self) -> bool:
        return self.status in ("joined", "created")


class ClusterStore:
    """A mutable handle on one on-disk cluster store (load → update → save).

    Where :func:`save_clusters`/:func:`load_clusters` treat a store as an
    immutable snapshot rebuilt from scratch, a ``ClusterStore`` supports the
    *incremental* deployment flow: as new correct submissions arrive, route
    each through :meth:`add_correct_source` — which places it exactly where
    a full re-clustering would — bump the revision, and :meth:`save` the
    store atomically so a running :class:`repro.service.RepairService` can
    hot-reload it between requests.

    **Equivalence guarantee.**  ``add_correct_source(src)`` produces a store
    field-identical to rebuilding from scratch with ``src`` appended to the
    original correct pool (asserted in ``tests/test_store_updates.py``): the
    new program is fingerprinted, tried against existing clusters in
    creation order within its fingerprint bucket (first match wins, exactly
    the order the exhaustive loop would use) and otherwise minted as a new
    cluster with the next id — which is precisely where the deterministic
    merge of :func:`repro.core.clustering.cluster_programs` would place it.

    Thread safety: instances are **not** thread-safe — they are intended
    for a single updater process (a course ingests new correct submissions
    serially).  Readers are isolated by :meth:`save`'s atomic replace: a
    concurrent :func:`load_clusters` sees either the old or the new file,
    never a torn write.

    Args:
        path: The store file this handle reads and writes.
        cases: The test-case set the clustering is relative to (Def. 4.4);
            must match the store's ``case_signature``.
        clusters: The decoded clusters, representative traces populated.
        language: Source language of the member programs.
        entry: Entry function name used when parsing new sources.
        problem: Optional problem name recorded in the header.
        revision: Current content revision.
        caches: Optional :class:`repro.engine.cache.RepairCaches` through
            which executions and fingerprints are routed.
    """

    def __init__(
        self,
        path: str | Path,
        cases: Sequence[InputCase],
        clusters: list[Cluster],
        *,
        language: str = "python",
        entry: str | None = None,
        problem: str | None = None,
        revision: int = 0,
        caches: "RepairCaches | None" = None,
    ) -> None:
        self.path = Path(path)
        self.cases = cases
        self.clusters = clusters
        self.language = language
        self.entry = entry
        self.problem = problem
        self._revision = revision
        self.caches = caches

    @classmethod
    def open(
        cls,
        path: str | Path,
        cases: Sequence[InputCase],
        *,
        caches: "RepairCaches | None" = None,
        check_cases: bool = True,
    ) -> "ClusterStore":
        """Load ``path`` into a mutable handle.

        Validates format version and (by default) the case signature, then
        re-executes each representative on ``cases`` to rebuild the traces
        that incremental matching needs.

        Raises:
            ClusterStoreError: see :func:`load_clusters`.
        """
        stored = load_clusters(path, cases=cases, check_cases=check_cases)
        for cluster in stored.clusters:
            cluster.representative_traces = list(
                cls._traces(caches, cluster.representative, cases)
            )
        return cls(
            path,
            cases,
            stored.clusters,
            language=stored.language,
            entry=stored.entry,
            problem=stored.problem,
            revision=stored.revision,
            caches=caches,
        )

    @staticmethod
    def _traces(caches: "RepairCaches | None", program, cases):
        if caches is not None:
            return caches.traces(program, cases)
        return program_traces(program, cases)

    @property
    def revision(self) -> int:
        """Monotonically increasing content revision (bumped per accepted add)."""
        return self._revision

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def total_members(self) -> int:
        return sum(cluster.size for cluster in self.clusters)

    def add_correct_source(self, source: str) -> AddOutcome:
        """Place one new correct submission without re-clustering the pool.

        The source is parsed, executed on the store's cases and verified
        correct; incorrect or unparseable submissions are rejected (MOOC
        dumps routinely contain mislabelled data) and leave the store
        unchanged.  An accepted program joins the first existing cluster it
        matches — only clusters in its own fingerprint bucket are tried,
        the same pruning the batch build uses — or becomes the
        representative of a new cluster, and the revision is bumped.

        Changes live in memory until :meth:`save` is called.

        Returns:
            An :class:`AddOutcome` naming the cluster joined/created (or
            the rejection reason) and the resulting revision.
        """
        from ..frontend import FrontendError, parse_source

        try:
            program = parse_source(source, language=self.language, entry=self.entry)
        except FrontendError as exc:
            return AddOutcome("rejected-parse", None, str(exc), self._revision)
        try:
            traces = list(self._traces(self.caches, program, self.cases))
        except Exception as exc:  # noqa: BLE001 - defensive: report, don't crash
            return AddOutcome(
                "rejected-execution", None, f"execution error: {exc}", self._revision
            )
        if not all(
            trace_passes_case(trace, case) for trace, case in zip(traces, self.cases)
        ):
            return AddOutcome(
                "rejected-incorrect",
                None,
                "submission does not pass the store's test cases",
                self._revision,
            )

        if self.caches is not None:
            fingerprint = self.caches.fingerprint(program, self.cases, traces=traces)
        else:
            fingerprint = program_fingerprint(program, traces)
        order = _canonical_order(program)
        for cluster in self.clusters:
            in_bucket = cluster.fingerprint_digest == fingerprint.digest
            if cluster.fingerprint_digest is not None and not in_bucket:
                # A differing fingerprint proves the full match cannot
                # succeed (matching invariance); clusters from stores built
                # without pruning (digest None) are tried unconditionally.
                continue
            location_map = None
            if in_bucket and order is not None:
                rep_order = _canonical_order(cluster.representative)
                if rep_order is not None:
                    location_map = dict(zip(order, rep_order))
            witness = find_matching(
                program,
                cluster.representative,
                self.cases,
                query_traces=traces,
                base_traces=cluster.representative_traces,
                location_map=location_map,
            )
            if witness is not None:
                cluster.add_member(program, witness)
                self._revision += 1
                return AddOutcome("joined", cluster.cluster_id, "", self._revision)

        cluster = Cluster(
            cluster_id=max((c.cluster_id for c in self.clusters), default=-1) + 1,
            representative=program,
            representative_traces=traces,
            fingerprint_digest=fingerprint.digest,
        )
        cluster.add_member(program, _identity_witness(program))
        self.clusters.append(cluster)
        self._revision += 1
        return AddOutcome("created", cluster.cluster_id, "", self._revision)

    def add_correct_sources(self, sources: Iterable[str]) -> list[AddOutcome]:
        """Apply :meth:`add_correct_source` to each source, in order."""
        return [self.add_correct_source(source) for source in sources]

    def save(self) -> Path:
        """Atomically persist the current clusters and revision.

        The document is written to a sibling temporary file first and moved
        into place with :func:`os.replace`, so concurrent readers (a serving
        daemon hot-reloading the problem) never observe a torn store.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        save_clusters(
            tmp,
            self.clusters,
            self.cases,
            language=self.language,
            entry=self.entry,
            problem=self.problem,
            revision=self._revision,
        )
        os.replace(tmp, self.path)
        return self.path
