"""Versioned on-disk cluster stores ("build once, serve many").

A cluster store is one JSON document holding a whole clustering — every
cluster of :func:`repro.core.clustering.cluster_programs` with its
representative, members, expression pools (provenance included) and
fingerprint digest — plus a header identifying the format version, source
language and the test-case set the clustering was built against.

Invalidation rules (checked on load, see :func:`load_clusters`):

* ``format_version`` must equal :data:`FORMAT_VERSION` exactly — the format
  carries semantic content (expression encoding, pool order), so neither
  older nor newer stores are silently accepted;
* the ``case_signature`` — a digest of the canonical case-set key
  (:func:`repro.engine.cache.case_set_key`) — must match the cases the
  loader is about to repair against, because clusters are equivalence
  classes *relative to the input set* (Def. 4.4): the same corpus clustered
  against different cases is a different clustering.  Callers that know
  better (e.g. a superset case set for inspection only) can opt out.

Representative traces are deliberately not stored: the loader re-executes
each representative on the case set at hand, which keeps stores small and
doubles as an end-to-end revalidation of the decoded programs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Sequence

from ..core.clustering import Cluster
from ..core.inputs import InputCase
from .serialize import SerializationError, decode_cluster, encode_cluster

__all__ = [
    "FORMAT_VERSION",
    "FORMAT_NAME",
    "ClusterStoreError",
    "StoredClustering",
    "case_signature",
    "save_clusters",
    "load_clusters",
]

#: Bump whenever the on-disk layout or its semantics change.
#: Version history: 1 — initial layout; 2 — pool entries carry precomputed
#: repair-fast-path indexes (shape digest, variables, TED annotation).
FORMAT_VERSION = 2
FORMAT_NAME = "repro-clara-clusterstore"


class ClusterStoreError(ValueError):
    """Raised for unreadable, mis-versioned or mismatched stores."""


def case_signature(cases: Sequence[InputCase]) -> str:
    """Stable digest of an ordered case set.

    Built on the same canonical key the engine caches use, so two case sets
    are interchangeable for a store exactly when they are interchangeable
    for the trace cache.
    """
    from ..engine.cache import case_set_key

    return hashlib.sha256(repr(case_set_key(cases)).encode()).hexdigest()


class StoredClustering:
    """A decoded store: clusters plus the header metadata.

    ``clusters`` have empty ``representative_traces``; callers that repair
    against them must re-execute representatives first
    (:meth:`repro.core.pipeline.Clara.load_clusters` does).
    """

    def __init__(
        self,
        clusters: list[Cluster],
        *,
        language: str,
        entry: str | None,
        problem: str | None,
        case_signature: str,
        format_version: int,
    ) -> None:
        self.clusters = clusters
        self.language = language
        self.entry = entry
        self.problem = problem
        self.case_signature = case_signature
        self.format_version = format_version

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def total_members(self) -> int:
        return sum(cluster.size for cluster in self.clusters)


def save_clusters(
    path: str | Path,
    clusters: Sequence[Cluster],
    cases: Sequence[InputCase],
    *,
    language: str = "python",
    entry: str | None = None,
    problem: str | None = None,
) -> Path:
    """Serialize ``clusters`` (built against ``cases``) to ``path``.

    The document is written with sorted keys and a trailing newline so
    identical clusterings produce byte-identical stores.
    """
    path = Path(path)
    document = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "language": language,
        "entry": entry,
        "problem": problem,
        "case_signature": case_signature(cases),
        "cluster_count": len(clusters),
        "total_members": sum(cluster.size for cluster in clusters),
        "clusters": [encode_cluster(cluster) for cluster in clusters],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_clusters(
    path: str | Path,
    *,
    cases: Sequence[InputCase] | None = None,
    check_cases: bool = True,
) -> StoredClustering:
    """Load and validate a cluster store.

    Args:
        path: Store file written by :func:`save_clusters`.
        cases: When given (and ``check_cases`` is true), the store's case
            signature must match — repairing against a clustering built for
            different inputs silently changes what "equivalent" means, so a
            mismatch is an error, not a warning.
        check_cases: Set to ``False`` to skip the signature check (e.g. the
            read-only ``cluster info`` command).

    Raises:
        ClusterStoreError: Unreadable file, wrong format name, wrong
            format version, case-set mismatch, or malformed payload.
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ClusterStoreError(f"cannot read cluster store {path}: {exc}") from exc
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ClusterStoreError(f"cluster store {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != FORMAT_NAME:
        raise ClusterStoreError(
            f"{path} is not a cluster store (missing '{FORMAT_NAME}' format marker)"
        )
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ClusterStoreError(
            f"cluster store {path} has format version {version!r}, but this build "
            f"reads version {FORMAT_VERSION}; rebuild the store with "
            f"'repro-clara cluster build'"
        )
    signature = document.get("case_signature", "")
    if check_cases and cases is not None and signature != case_signature(cases):
        raise ClusterStoreError(
            f"cluster store {path} was built against a different test-case set; "
            f"clusters are only valid for the inputs they were clustered on — "
            f"rebuild the store for these cases (or pass check_cases=False to "
            f"inspect it anyway)"
        )
    try:
        clusters = [decode_cluster(entry) for entry in document["clusters"]]
    except (KeyError, TypeError, SerializationError) as exc:
        raise ClusterStoreError(f"cluster store {path} is malformed: {exc}") from exc
    return StoredClustering(
        clusters,
        language=document.get("language", "python"),
        entry=document.get("entry"),
        problem=document.get("problem"),
        case_signature=signature,
        format_version=version,
    )
