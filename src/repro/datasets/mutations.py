"""Fault injection: generation of *incorrect* attempts.

The MOOC and user-study attempt datasets are private, so incorrect attempts
are synthesised by injecting realistic faults into correct solutions.  The
fault mix mirrors the error classes discussed in the paper:

* small local slips (off-by-one range bounds, wrong comparison or arithmetic
  operator, wrong constant, missing ``float`` conversion) -- these are the
  attempts both Clara and AutoGrader should repair with one or two changes;
* structural mistakes (missing guard, missing statement, missing update of an
  accumulator, wrong output shape) -- repairs typically need fresh variables
  or added statements, which only Clara can produce (Appendix B);
* pathological attempts (empty function bodies) -- these populate the ``∞``
  bucket of the relative-repair-size histogram (Fig. 6);
* attempts using unsupported language features -- these populate the
  "unsupported" failure category of §6.2.

Every mutation is labelled so the quality-proxy experiment (E6 in DESIGN.md)
can check whether the generated repair touches the injected fault.
"""

from __future__ import annotations

import ast
import random
import re
from dataclasses import dataclass

from .problems import ProblemSpec

__all__ = [
    "Mutation",
    "mutate_source",
    "make_empty_attempt",
    "make_unsupported_attempt",
    "EMPTY_LABEL",
    "UNSUPPORTED_LABEL",
]

EMPTY_LABEL = "empty-program"
UNSUPPORTED_LABEL = "unsupported-feature"


@dataclass(frozen=True)
class Mutation:
    """A generated incorrect attempt."""

    source: str
    label: str


# ---------------------------------------------------------------------------
# Python mutations (ast-level)
# ---------------------------------------------------------------------------


class _PythonMutator(ast.NodeTransformer):
    def __init__(self, kind: str, rng: random.Random) -> None:
        self.kind = kind
        self.rng = rng
        self.applied = False

    # every visitor applies at most one change per program

    def visit_Call(self, node: ast.Call) -> ast.AST:  # noqa: N802
        self.generic_visit(node)
        if self.applied:
            return node
        if self.kind == "range-bounds" and isinstance(node.func, ast.Name):
            if node.func.id in ("range", "xrange") and len(node.args) >= 2:
                self.applied = True
                node.args = node.args[1:]  # drop the lower bound
                return node
        if self.kind == "drop-float" and isinstance(node.func, ast.Name):
            if node.func.id == "float" and len(node.args) == 1:
                self.applied = True
                return node.args[0]
        return node

    def visit_Compare(self, node: ast.Compare) -> ast.AST:  # noqa: N802
        self.generic_visit(node)
        if self.applied or self.kind != "comparison-op":
            return node
        swaps = {ast.Lt: ast.LtE, ast.LtE: ast.Lt, ast.Gt: ast.GtE, ast.GtE: ast.Gt,
                 ast.Eq: ast.NotEq, ast.NotEq: ast.Eq}
        new_ops = []
        for op in node.ops:
            replacement = swaps.get(type(op))
            if replacement is not None and not self.applied:
                new_ops.append(replacement())
                self.applied = True
            else:
                new_ops.append(op)
        node.ops = new_ops
        return node

    def visit_BinOp(self, node: ast.BinOp) -> ast.AST:  # noqa: N802
        self.generic_visit(node)
        if self.applied or self.kind != "arithmetic-op":
            return node
        swaps = {ast.Add: ast.Sub, ast.Sub: ast.Add, ast.Mult: ast.Add, ast.Pow: ast.Mult}
        replacement = swaps.get(type(node.op))
        if replacement is not None:
            node.op = replacement()
            self.applied = True
        return node

    def visit_Constant(self, node: ast.Constant) -> ast.AST:  # noqa: N802
        if self.applied or self.kind != "constant":
            return node
        if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
            return node
        self.applied = True
        delta = self.rng.choice((1, -1))
        return ast.copy_location(ast.Constant(value=node.value + delta), node)

    def visit_If(self, node: ast.If) -> ast.AST:  # noqa: N802
        self.generic_visit(node)
        if self.applied or self.kind != "drop-guard":
            return node
        # Remove the guard (and any else-branch), keeping the then-branch.
        self.applied = True
        return node.body

    def visit_Return(self, node: ast.Return) -> ast.AST:  # noqa: N802
        self.generic_visit(node)
        if self.applied or self.kind != "unwrap-return-list":
            return node
        if isinstance(node.value, ast.List) and len(node.value.elts) == 1:
            self.applied = True
            node.value = node.value.elts[0]
        return node


_PYTHON_MUTATION_KINDS = (
    "range-bounds",
    "drop-float",
    "comparison-op",
    "arithmetic-op",
    "constant",
    "drop-guard",
    "drop-guard",
    "unwrap-return-list",
    "drop-statement",
    "drop-statement",
)


def _mutate_python(source: str, rng: random.Random) -> Mutation | None:
    kind = rng.choice(_PYTHON_MUTATION_KINDS)
    try:
        module = ast.parse(source)
    except SyntaxError:
        return None
    if kind == "drop-statement":
        function = next(
            (n for n in module.body if isinstance(n, ast.FunctionDef)), None
        )
        if function is None or len(function.body) < 2:
            return None
        # Never drop loops (that would change the control-flow structure and
        # make the attempt unrepairable by construction) or the final return.
        candidates = [
            i
            for i, node in enumerate(function.body[:-1])
            if not isinstance(node, (ast.For, ast.While, ast.Return))
        ]
        # Also consider dropping a statement from inside the first loop body.
        loop = next(
            (n for n in function.body if isinstance(n, (ast.For, ast.While))), None
        )
        if candidates and rng.random() < 0.6:
            index = rng.choice(candidates)
            function.body.pop(index)
        elif loop is not None and len(loop.body) > 1:
            inner = [
                i
                for i, node in enumerate(loop.body)
                if not isinstance(node, (ast.For, ast.While))
            ]
            if not inner:
                return None
            loop.body.pop(rng.choice(inner))
        else:
            return None
        ast.fix_missing_locations(module)
        return Mutation(ast.unparse(module), "drop-statement")
    mutator = _PythonMutator(kind, rng)
    mutated = mutator.visit(module)
    if not mutator.applied:
        return None
    ast.fix_missing_locations(mutated)
    return Mutation(ast.unparse(mutated), kind)


def _python_empty(problem: ProblemSpec) -> Mutation:
    entry = _python_entry_name(problem)
    params = _python_params(problem)
    return Mutation(f"def {entry}({params}):\n    pass", EMPTY_LABEL)


def _python_unsupported(problem: ProblemSpec) -> Mutation:
    entry = _python_entry_name(problem)
    params = _python_params(problem)
    body = "    return [x for x in range(3)]"
    return Mutation(f"def {entry}({params}):\n{body}", UNSUPPORTED_LABEL)


def _python_entry_name(problem: ProblemSpec) -> str:
    match = re.search(r"def\s+(\w+)", problem.reference_sources[0])
    return match.group(1) if match else "solution"


def _python_params(problem: ProblemSpec) -> str:
    match = re.search(r"def\s+\w+\(([^)]*)\)", problem.reference_sources[0])
    return match.group(1) if match else ""


# ---------------------------------------------------------------------------
# C mutations (token/line-level)
# ---------------------------------------------------------------------------


_C_OPERATOR_SWAPS = [
    ("<=", "<"),
    ("<", "<="),
    (">=", ">"),
    (">", ">="),
    ("==", "!="),
    ("+", "-"),
    ("*", "+"),
]


def _mutate_c(source: str, rng: random.Random) -> Mutation | None:
    kind = rng.choice(
        (
            "operator",
            "constant",
            "swap-output",
            "drop-line",
            "init-value",
            "modulus",
        )
    )
    lines = source.split("\n")
    if kind == "operator":
        candidates = [
            (i, old, new)
            for i, line in enumerate(lines)
            for old, new in _C_OPERATOR_SWAPS
            if old in line and '"' not in line
        ]
        if not candidates:
            return None
        i, old, new = rng.choice(candidates)
        lines[i] = lines[i].replace(old, new, 1)
        return Mutation("\n".join(lines), f"operator:{old}->{new}")
    if kind == "constant":
        candidates = [
            (i, m)
            for i, line in enumerate(lines)
            for m in re.finditer(r"\b(\d+)\b", line)
            if '"' not in line
        ]
        if not candidates:
            return None
        i, match = rng.choice(candidates)
        value = int(match.group(1))
        replacement = str(value + rng.choice((1, -1)))
        lines[i] = lines[i][: match.start()] + replacement + lines[i][match.end():]
        return Mutation("\n".join(lines), "constant")
    if kind == "swap-output":
        if "YES" in source and "NO" in source:
            swapped = source.replace("YES", "@@@").replace("NO", "YES").replace("@@@", "NO")
            return Mutation(swapped, "swap-output")
        return None
    if kind == "drop-line":
        candidates = [
            i
            for i, line in enumerate(lines)
            if "=" in line
            and ";" in line
            and "scanf" not in line
            and "printf" not in line
            and "for" not in line
            and "while" not in line
            and "if" not in line
        ]
        if not candidates:
            return None
        index = rng.choice(candidates)
        del lines[index]
        return Mutation("\n".join(lines), "drop-line")
    if kind == "init-value":
        candidates = [
            (i, m)
            for i, line in enumerate(lines)
            for m in re.finditer(r"= (\d+)([,;])", line)
            if "int" in line or "float" in line
        ]
        if not candidates:
            return None
        i, match = rng.choice(candidates)
        new_value = str(int(match.group(1)) + rng.choice((1, -1)))
        lines[i] = lines[i][: match.start()] + f"= {new_value}{match.group(2)}" + lines[i][match.end():]
        return Mutation("\n".join(lines), "init-value")
    if kind == "modulus":
        if "% 10" in source:
            return Mutation(source.replace("% 10", "% 100", 1), "modulus")
        return None
    return None


def _c_empty(_problem: ProblemSpec) -> Mutation:
    return Mutation(
        "#include <stdio.h>\nint main() {\n    return 0;\n}\n", EMPTY_LABEL
    )


def _c_unsupported(_problem: ProblemSpec) -> Mutation:
    source = (
        "#include <stdio.h>\nint main() {\n"
        "    int arr[10];\n    int n;\n    scanf(\"%d\", &n);\n"
        "    printf(\"%d\\n\", n);\n    return 0;\n}\n"
    )
    return Mutation(source, UNSUPPORTED_LABEL)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def make_empty_attempt(problem: ProblemSpec) -> Mutation:
    """An essentially empty attempt (Fig. 6's ``∞`` relative-size bucket)."""
    return _python_empty(problem) if problem.language == "python" else _c_empty(problem)


def make_unsupported_attempt(problem: ProblemSpec) -> Mutation:
    """An attempt using a language feature outside the supported subset."""
    return (
        _python_unsupported(problem)
        if problem.language == "python"
        else _c_unsupported(problem)
    )


def mutate_source(
    problem: ProblemSpec,
    source: str,
    rng: random.Random,
    *,
    allow_special: bool = True,
) -> Mutation | None:
    """Inject one fault into a correct solution.

    With probability ~8% (when ``allow_special``) a special attempt is
    produced instead: an empty program or one using an unsupported feature.
    Returns ``None`` when the chosen mutation is not applicable; the caller
    retries with a fresh random choice.
    """
    if allow_special:
        roll = rng.random()
        if roll < 0.02:
            return _python_empty(problem) if problem.language == "python" else _c_empty(problem)
        if roll < 0.04:
            return (
                _python_unsupported(problem)
                if problem.language == "python"
                else _c_unsupported(problem)
            )
    if problem.language == "python":
        return _mutate_python(source, rng)
    return _mutate_c(source, rng)
