"""Generation of additional *correct* attempts.

The paper's key resource is a large pool of correct student solutions that
are syntactically diverse but often dynamically equivalent.  We synthesise
such a pool from the hand-written reference solutions by

* consistently renaming user variables (students pick different names), and
* applying per-problem equivalence swaps (different but equivalent ways of
  writing the same expression, cf. Fig. 2(c)/(d) of the paper).

Renaming never changes behaviour; swaps are taken from the problem spec and
were written to be behaviour-preserving (the generator additionally verifies
every generated attempt against the test suite before using it).
"""

from __future__ import annotations

import ast
import random
import re
from typing import Sequence

from .problems import ProblemSpec

__all__ = ["rename_python_variables", "rename_c_variables", "make_correct_variant"]

#: Pools of plausible student variable names, keyed by "role".
_NAME_POOLS = [
    ["result", "res", "out", "ans", "answer", "output", "deriv", "lst", "vals"],
    ["i", "j", "k", "idx", "index", "n", "pos", "counter", "e"],
    ["total", "summ", "acc", "value", "tot", "s", "aggregate"],
    ["tmp", "temp", "t", "aux", "hold", "scratch"],
    ["count", "cnt", "num", "times", "steps", "c2"],
    ["cur", "prev", "nxt", "a2", "b2", "x2", "y2"],
]

_C_RESERVED = {
    "main",
    "printf",
    "scanf",
    "puts",
    "int",
    "float",
    "double",
    "char",
    "long",
    "void",
    "if",
    "else",
    "while",
    "for",
    "do",
    "return",
    "break",
    "continue",
    "include",
    "stdio",
    "h",
    "d",
    "f",
    "c",
    "s",
}

_PY_RESERVED = {"range", "xrange", "len", "float", "int", "str", "append", "return"}


def _fresh_names(old_names: Sequence[str], rng: random.Random) -> dict[str, str]:
    mapping: dict[str, str] = {}
    used: set[str] = set(old_names)
    pools = [list(pool) for pool in _NAME_POOLS]
    for pool in pools:
        rng.shuffle(pool)
    for position, name in enumerate(old_names):
        if rng.random() < 0.35:
            continue  # keep some names unchanged, as real students do
        pool = pools[position % len(pools)]
        for candidate in pool:
            if candidate not in used and candidate != name:
                mapping[name] = candidate
                used.add(candidate)
                break
    return mapping


def rename_python_variables(source: str, rng: random.Random) -> str:
    """Consistently rename local variables of the single function in ``source``."""
    try:
        module = ast.parse(source)
    except SyntaxError:
        return source
    functions = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if not functions:
        return source
    function = functions[0]
    params = {arg.arg for arg in function.args.args}
    locals_: list[str] = []
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id not in params and node.id not in locals_:
                locals_.append(node.id)
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            if node.target.id not in params and node.target.id not in locals_:
                locals_.append(node.target.id)
    mapping = _fresh_names(locals_, rng)
    mapping = {k: v for k, v in mapping.items() if k not in _PY_RESERVED}
    if not mapping:
        return source

    class _Renamer(ast.NodeTransformer):
        def visit_Name(self, node: ast.Name) -> ast.Name:  # noqa: N802
            if node.id in mapping:
                return ast.copy_location(ast.Name(id=mapping[node.id], ctx=node.ctx), node)
            return node

    renamed = _Renamer().visit(module)
    ast.fix_missing_locations(renamed)
    return ast.unparse(renamed)


def rename_c_variables(source: str, rng: random.Random) -> str:
    """Consistently rename identifiers in C source (token-level)."""
    identifiers: list[str] = []
    for match in re.finditer(r"[A-Za-z_][A-Za-z0-9_]*", source):
        word = match.group(0)
        if word in _C_RESERVED or word in identifiers:
            continue
        identifiers.append(word)
    mapping = _fresh_names(identifiers, rng)
    mapping = {k: v for k, v in mapping.items() if k not in _C_RESERVED and len(k) <= 12}
    if not mapping:
        return source

    def replace(match: re.Match) -> str:
        word = match.group(0)
        return mapping.get(word, word)

    # Do not touch string literals (format strings, YES/NO, ...).
    parts = re.split(r'("(?:[^"\\]|\\.)*")', source)
    for index in range(0, len(parts), 2):
        parts[index] = re.sub(r"[A-Za-z_][A-Za-z0-9_]*", replace, parts[index])
    return "".join(parts)


def make_correct_variant(
    problem: ProblemSpec, base_source: str, rng: random.Random
) -> str:
    """Produce one syntactic variant of a correct solution."""
    source = base_source
    swaps = list(problem.equivalence_swaps)
    rng.shuffle(swaps)
    applied = 0
    for original, replacement in swaps:
        if applied >= 2:
            break
        if original in source and rng.random() < 0.5:
            source = source.replace(original, replacement, 1)
            applied += 1
    if problem.language == "python":
        return rename_python_variables(source, rng)
    return rename_c_variables(source, rng)
