"""Problem specifications and synthetic student-attempt corpora."""

from .generator import Attempt, Corpus, default_scale, generate_corpus
from .mutations import EMPTY_LABEL, UNSUPPORTED_LABEL, Mutation, mutate_source
from .problems import ProblemSpec, all_problems, get_problem, registry
from .variants import make_correct_variant, rename_c_variables, rename_python_variables

__all__ = [
    "Attempt",
    "Corpus",
    "generate_corpus",
    "default_scale",
    "Mutation",
    "mutate_source",
    "EMPTY_LABEL",
    "UNSUPPORTED_LABEL",
    "ProblemSpec",
    "all_problems",
    "get_problem",
    "registry",
    "make_correct_variant",
    "rename_python_variables",
    "rename_c_variables",
]
