"""Synthetic student-attempt corpus generation.

``generate_corpus`` produces, for one problem, a pool of *correct* attempts
(verified against the test suite) and a pool of *incorrect* attempts
(verified to fail at least one test), standing in for the MITx MOOC and
ESC-101 datasets used in the paper (see DESIGN.md, substitution table).

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from ..core.inputs import is_correct
from ..frontend import FrontendError, parse_source
from .mutations import (
    EMPTY_LABEL,
    UNSUPPORTED_LABEL,
    make_empty_attempt,
    make_unsupported_attempt,
    mutate_source,
)
from .problems import ProblemSpec, get_problem
from .variants import make_correct_variant

__all__ = ["Attempt", "Corpus", "generate_corpus", "default_scale"]


@dataclass(frozen=True)
class Attempt:
    """One synthetic student attempt."""

    source: str
    intended_correct: bool
    label: str = ""  # injected fault label for incorrect attempts


@dataclass
class Corpus:
    """A pool of correct and incorrect attempts for one problem."""

    problem: ProblemSpec
    correct: list[Attempt] = field(default_factory=list)
    incorrect: list[Attempt] = field(default_factory=list)

    @property
    def correct_sources(self) -> list[str]:
        return [attempt.source for attempt in self.correct]

    @property
    def incorrect_sources(self) -> list[str]:
        return [attempt.source for attempt in self.incorrect]


def default_scale() -> tuple[int, int]:
    """Default corpus size (correct, incorrect) per problem.

    The paper's corpus is ~12,973 correct / 4,293 incorrect attempts over
    three problems; the default here is scaled down so the whole Table 1
    experiment runs in minutes on a laptop.  Benchmarks can scale up via the
    ``REPRO_SCALE`` environment variable (see ``benchmarks/``).
    """
    return 60, 30


def _actually_correct(problem: ProblemSpec, source: str) -> bool | None:
    """True/False = verified verdict, None = does not even parse."""
    try:
        program = parse_source(source, language=problem.language, entry=problem.entry)
    except FrontendError:
        return None
    try:
        return is_correct(program, problem.cases)
    except Exception:  # noqa: BLE001 - treat execution crashes as incorrect
        return False


def generate_corpus(
    problem: ProblemSpec | str,
    n_correct: int | None = None,
    n_incorrect: int | None = None,
    seed: int = 0,
) -> Corpus:
    """Generate a corpus of attempts for ``problem``.

    Args:
        problem: Problem spec or name.
        n_correct: Number of correct attempts (default from
            :func:`default_scale`).
        n_incorrect: Number of incorrect attempts.
        seed: RNG seed; corpora are reproducible.
    """
    if isinstance(problem, str):
        problem = get_problem(problem)
    scale_correct, scale_incorrect = default_scale()
    n_correct = scale_correct if n_correct is None else n_correct
    n_incorrect = scale_incorrect if n_incorrect is None else n_incorrect
    # Mix the problem name in via a *stable* hash: ``hash(str)`` is salted
    # per-process (PYTHONHASHSEED), which would make corpora — and every
    # committed results/ artifact derived from them — irreproducible.
    rng = random.Random(seed * 7919 + zlib.crc32(problem.name.encode("utf-8")) % 1000)
    corpus = Corpus(problem=problem)

    # -- correct pool --------------------------------------------------------
    references = list(problem.reference_sources)
    attempts = 0
    while len(corpus.correct) < n_correct and attempts < n_correct * 8:
        attempts += 1
        base = references[attempts % len(references)]
        if len(corpus.correct) < len(references):
            candidate = base  # always include the plain references first
        else:
            candidate = make_correct_variant(problem, base, rng)
        if _actually_correct(problem, candidate) is True:
            corpus.correct.append(Attempt(source=candidate, intended_correct=True))

    # -- incorrect pool ------------------------------------------------------
    # A small, controlled fraction of pathological attempts: empty programs
    # (the paper's Fig. 6 "∞" cases) and attempts using unsupported language
    # features (the dominant failure category in §6.2).  The rest are
    # fault-injected variants of correct solutions.
    # Keep the pathological fraction close to the paper's (~2.5% of attempts
    # fail for unsupported-feature / control-flow reasons): at most two such
    # attempts per corpus, none for very small corpora.
    if n_incorrect >= 16:
        n_special = 2
    elif n_incorrect >= 8:
        n_special = 1
    else:
        n_special = 0
    if n_special:
        specials = [
            Attempt(
                make_empty_attempt(problem).source,
                intended_correct=False,
                label=EMPTY_LABEL,
            ),
            Attempt(
                make_unsupported_attempt(problem).source,
                intended_correct=False,
                label=UNSUPPORTED_LABEL,
            ),
        ]
        corpus.incorrect.extend(specials[:n_special])

    attempts = 0
    while len(corpus.incorrect) < n_incorrect and attempts < n_incorrect * 20:
        attempts += 1
        base = rng.choice(corpus.correct).source if corpus.correct else references[0]
        mutation = mutate_source(problem, base, rng, allow_special=False)
        if mutation is None:
            continue
        # Real students often make more than one mistake at a time; stacking
        # mutations spreads the relative-repair-size histogram (Fig. 6).
        labels = [mutation.label]
        extra = rng.choices((0, 1, 2), weights=(55, 30, 15))[0]
        for _ in range(extra):
            follow_up = mutate_source(problem, mutation.source, rng, allow_special=False)
            if follow_up is None:
                continue
            mutation = follow_up
            labels.append(follow_up.label)
        verdict = _actually_correct(problem, mutation.source)
        if verdict is True:
            continue  # the mutation happened to preserve behaviour
        corpus.incorrect.append(
            Attempt(
                source=mutation.source,
                intended_correct=False,
                label="+".join(labels),
            )
        )

    return corpus
