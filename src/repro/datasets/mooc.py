"""The three MITx MOOC problems of Table 1 (Appendix A of the paper).

* ``derivatives`` — derivative of a polynomial given as a coefficient list.
* ``oddTuples`` — every other element of a tuple.
* ``polynomials`` — evaluate a polynomial at a point.

For each problem we provide a trusted Python reference implementation (used
to compute expected outputs), a pool of hand-written correct solutions in the
styles real students use (loop over indices, ``while`` loops, guard-first vs
guard-last returns, ...), and per-problem equivalence swaps.
"""

from __future__ import annotations

from ..core.inputs import InputCase
from .problems import ProblemSpec, register

__all__ = ["DERIVATIVES", "ODD_TUPLES", "POLYNOMIALS"]


# ---------------------------------------------------------------------------
# derivatives
# ---------------------------------------------------------------------------


def _derivative(poly: list[float]) -> list[float]:
    result = [float(i * poly[i]) for i in range(1, len(poly))]
    return result if result else [0.0]


_DERIVATIVE_INPUTS = [
    [6.3, 7.6, 12.14],
    [],
    [1.0],
    [0.0, 0.0, 0.0],
    [1.0, 2.0, 3.0, 4.0],
    [5.5, -2.25, 0.0, 3.0, -1.5],
    [2.0, 4.0],
]

_DERIVATIVES_SOURCES = (
    """
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
""",
    """
def computeDeriv(poly):
    deriv = []
    for i in range(1, len(poly)):
        deriv += [float(i)*poly[i]]
    if len(deriv) == 0:
        return [0.0]
    return deriv
""",
    """
def computeDeriv(poly):
    res = []
    for i in range(1, len(poly)):
        res.append(float(i*poly[i]))
    return res or [0.0]
""",
    """
def computeDeriv(poly):
    result = []
    i = 1
    while i < len(poly):
        result.append(float(poly[i]*i))
        i = i + 1
    if len(result) > 0:
        return result
    else:
        return [0.0]
""",
    """
def computeDeriv(poly):
    answer = []
    for k in range(len(poly)):
        if k > 0:
            answer.append(float(k*poly[k]))
    if answer == []:
        return [0.0]
    return answer
""",
    """
def computeDeriv(poly):
    if len(poly) <= 1:
        return [0.0]
    out = []
    for i in range(1, len(poly)):
        out.append(1.0*poly[i]*i)
    return out
""",
)

DERIVATIVES = register(
    ProblemSpec(
        name="derivatives",
        language="python",
        description=(
            "Compute and return the derivative of a polynomial function "
            "(represented as a list of floats). If the derivative is 0, "
            "return [0.0]."
        ),
        cases=tuple(
            InputCase(args=(list(poly),), expected_return=_derivative(poly))
            for poly in _DERIVATIVE_INPUTS
        ),
        reference_sources=tuple(s.strip("\n") for s in _DERIVATIVES_SOURCES),
        equivalence_swaps=(
            ("range(1, len(poly))", "xrange(1, len(poly))"),
            ("result.append(float(poly[e]*e))", "result += [float(poly[e]*e)]"),
            ("result.append(float(poly[e]*e))", "result.append(float(e*poly[e]))"),
            ("res.append(float(i*poly[i]))", "res.append(1.0*poly[i]*i)"),
            ("if result == []:", "if len(result) == 0:"),
            ("deriv += [float(i)*poly[i]]", "deriv.append(float(i)*poly[i])"),
        ),
        entry=None,
        experiment="mooc",
    )
)


# ---------------------------------------------------------------------------
# oddTuples
# ---------------------------------------------------------------------------


def _odd_tuples(a_tup: tuple) -> tuple:
    return a_tup[::2]


_ODD_TUPLES_INPUTS = [
    (),
    (1,),
    (1, 2),
    ("I", "am", "a", "test", "tuple"),
    (1, 2, 3, 4, 5, 6, 7),
    (0.5, "x", 3, "y"),
]

_ODD_TUPLES_SOURCES = (
    """
def oddTuples(aTup):
    rTup = ()
    index = 0
    while index < len(aTup):
        rTup += (aTup[index],)
        index += 2
    return rTup
""",
    """
def oddTuples(aTup):
    result = ()
    for i in range(0, len(aTup), 2):
        result = result + (aTup[i],)
    return result
""",
    """
def oddTuples(aTup):
    out = ()
    for i in range(len(aTup)):
        if i % 2 == 0:
            out += (aTup[i],)
    return out
""",
    """
def oddTuples(aTup):
    ans = ()
    count = 0
    while count < len(aTup):
        if count % 2 == 0:
            ans = ans + (aTup[count],)
        count = count + 1
    return ans
""",
    """
def oddTuples(aTup):
    newTup = ()
    for k in range(0, len(aTup), 2):
        newTup += (aTup[k],)
    return newTup
""",
)

ODD_TUPLES = register(
    ProblemSpec(
        name="oddTuples",
        language="python",
        description="Return a tuple containing every other element of aTup.",
        cases=tuple(
            InputCase(args=(tuple(t),), expected_return=_odd_tuples(t))
            for t in _ODD_TUPLES_INPUTS
        ),
        reference_sources=tuple(s.strip("\n") for s in _ODD_TUPLES_SOURCES),
        equivalence_swaps=(
            ("rTup += (aTup[index],)", "rTup = rTup + (aTup[index],)"),
            ("result = result + (aTup[i],)", "result += (aTup[i],)"),
            ("for i in range(0, len(aTup), 2):", "for i in range(0, len(aTup), 2):"),
            ("if i % 2 == 0:", "if i % 2 != 1:"),
            ("count = count + 1", "count += 1"),
        ),
        entry=None,
        experiment="mooc",
    )
)


# ---------------------------------------------------------------------------
# polynomials (evaluatePoly)
# ---------------------------------------------------------------------------


def _evaluate_poly(poly: list[float], x: float) -> float:
    return float(sum(coefficient * x**power for power, coefficient in enumerate(poly)))


_POLYNOMIALS_INPUTS = [
    ([0.0, 0.0, 5.0, 9.3, 7.0], 10.0),
    ([], 2.0),
    ([1.5], 999.0),
    ([0.0, 1.0], 3.0),
    ([2.0, -3.0, 1.0], 2.5),
    ([1.0, 1.0, 1.0, 1.0], 1.0),
]

_POLYNOMIALS_SOURCES = (
    """
def evaluatePoly(poly, x):
    total = 0.0
    for power in range(len(poly)):
        total += poly[power] * x**power
    return total
""",
    """
def evaluatePoly(poly, x):
    result = 0.0
    power = 0
    while power < len(poly):
        result = result + poly[power] * x**power
        power = power + 1
    return result
""",
    """
def evaluatePoly(poly, x):
    value = 0.0
    for i in range(len(poly)):
        value += poly[i] * (x ** i)
    return float(value)
""",
    """
def evaluatePoly(poly, x):
    answer = 0.0
    exp = 0
    for coeff in poly:
        answer += coeff * x**exp
        exp += 1
    return answer
""",
)

POLYNOMIALS = register(
    ProblemSpec(
        name="polynomials",
        language="python",
        description=(
            "Compute the value of a polynomial (list of float coefficients) at "
            "the value x; return it as a float."
        ),
        cases=tuple(
            InputCase(args=(list(poly), x), expected_return=_evaluate_poly(poly, x))
            for poly, x in _POLYNOMIALS_INPUTS
        ),
        reference_sources=tuple(s.strip("\n") for s in _POLYNOMIALS_SOURCES),
        equivalence_swaps=(
            ("total += poly[power] * x**power", "total = total + poly[power] * x**power"),
            ("value += poly[i] * (x ** i)", "value += (x ** i) * poly[i]"),
            ("power = power + 1", "power += 1"),
        ),
        entry=None,
        experiment="mooc",
    )
)
