"""The six C user-study problems of Table 2 (Appendix A of the paper).

Each problem reads its input with ``scanf`` and prints its result with
``printf``; correctness is judged on the printed output, exactly as in the
ESC-101 course setting the paper describes.  Expected outputs are computed by
trusted Python reference functions below.
"""

from __future__ import annotations

from ..core.inputs import InputCase
from .problems import ProblemSpec, register

__all__ = [
    "FIBONACCI",
    "SPECIAL_NUMBER",
    "REVERSE_DIFFERENCE",
    "FACTORIAL_INTERVAL",
    "TRAPEZOID",
    "RHOMBUS",
]


# ---------------------------------------------------------------------------
# Fibonacci sequence: print n such that F(n) <= k < F(n+1)
# ---------------------------------------------------------------------------


def _fibonacci_expected(k: int) -> str:
    a, b, n = 1, 1, 1
    while b <= k:
        a, b = b, a + b
        n += 1
    return f"{n}\n"


_FIBONACCI_SOURCES = (
    r"""
#include <stdio.h>
int main() {
    int k, a = 1, b = 1, n = 1;
    scanf("%d", &k);
    while (b <= k) {
        int t = a + b;
        a = b;
        b = t;
        n = n + 1;
    }
    printf("%d\n", n);
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int k, prev = 1, cur = 1, count = 1;
    scanf("%d", &k);
    while (cur <= k) {
        int next = prev + cur;
        prev = cur;
        cur = next;
        count++;
    }
    printf("%d\n", count);
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int k, f1 = 1, f2 = 1, idx = 1, tmp;
    scanf("%d", &k);
    for (; f2 <= k; idx++) {
        tmp = f1 + f2;
        f1 = f2;
        f2 = tmp;
    }
    printf("%d\n", idx);
    return 0;
}
""",
)

FIBONACCI = register(
    ProblemSpec(
        name="fibonacci",
        language="c",
        description=(
            "Read k > 0 and print n > 0 such that F(n) <= k < F(n+1) for the "
            "Fibonacci sequence F(1)=F(2)=1."
        ),
        cases=tuple(
            InputCase(stdin=(k,), expected_output=_fibonacci_expected(k))
            for k in (1, 2, 3, 8, 10, 55, 100, 1000)
        ),
        reference_sources=tuple(s.strip("\n") for s in _FIBONACCI_SOURCES),
        equivalence_swaps=(
            ("n = n + 1;", "n++;"),
            ("count++;", "count = count + 1;"),
            ("while (b <= k)", "while (k >= b)"),
        ),
        experiment="user-study",
    )
)


# ---------------------------------------------------------------------------
# Special number: YES if the sum of cubes of digits equals the number
# ---------------------------------------------------------------------------


def _special_expected(n: int) -> str:
    total = sum(int(d) ** 3 for d in str(n)) if n > 0 else 0
    return "YES\n" if total == n else "NO\n"


_SPECIAL_SOURCES = (
    r"""
#include <stdio.h>
int main() {
    int n, sum = 0, d, m;
    scanf("%d", &n);
    m = n;
    while (m > 0) {
        d = m % 10;
        sum = sum + d*d*d;
        m = m / 10;
    }
    if (sum == n) printf("YES\n");
    else printf("NO\n");
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int num, total = 0, digit, rest;
    scanf("%d", &num);
    rest = num;
    while (rest > 0) {
        digit = rest % 10;
        total += digit * digit * digit;
        rest = rest / 10;
    }
    if (total == num) {
        printf("YES\n");
    } else {
        printf("NO\n");
    }
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int n, cube = 0, m, d;
    scanf("%d", &n);
    for (m = n; m > 0; m = m / 10) {
        d = m % 10;
        cube = cube + d * d * d;
    }
    if (cube == n) printf("YES\n"); else printf("NO\n");
    return 0;
}
""",
)

SPECIAL_NUMBER = register(
    ProblemSpec(
        name="special_number",
        language="c",
        description=(
            "Read n >= 0 and print YES if the sum of the cubes of its digits "
            "equals n, NO otherwise."
        ),
        cases=tuple(
            InputCase(stdin=(n,), expected_output=_special_expected(n))
            for n in (0, 1, 10, 100, 153, 370, 371, 407, 152)
        ),
        reference_sources=tuple(s.strip("\n") for s in _SPECIAL_SOURCES),
        equivalence_swaps=(
            ("sum = sum + d*d*d;", "sum += d*d*d;"),
            ("m = m / 10;", "m /= 10;"),
            ("while (m > 0)", "while (m >= 1)"),
        ),
        experiment="user-study",
    )
)


# ---------------------------------------------------------------------------
# Reverse difference: print n - reverse(n)
# ---------------------------------------------------------------------------


def _reverse_difference_expected(n: int) -> str:
    return f"{n - int(str(n)[::-1])}\n"


_REVERSE_SOURCES = (
    r"""
#include <stdio.h>
int main() {
    int n, rev = 0, m;
    scanf("%d", &n);
    m = n;
    while (m > 0) {
        rev = rev * 10 + m % 10;
        m = m / 10;
    }
    printf("%d\n", n - rev);
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int num, reversed = 0, temp, digit;
    scanf("%d", &num);
    temp = num;
    while (temp > 0) {
        digit = temp % 10;
        reversed = reversed * 10 + digit;
        temp = temp / 10;
    }
    printf("%d\n", num - reversed);
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int n, r = 0, x, diff;
    scanf("%d", &n);
    for (x = n; x > 0; x = x / 10) {
        r = 10 * r + x % 10;
    }
    diff = n - r;
    printf("%d\n", diff);
    return 0;
}
""",
)

REVERSE_DIFFERENCE = register(
    ProblemSpec(
        name="reverse_difference",
        language="c",
        description="Read n > 0 and print the difference between n and its reverse.",
        cases=tuple(
            InputCase(stdin=(n,), expected_output=_reverse_difference_expected(n))
            for n in (1234, 1, 90, 505, 12, 1000, 87654)
        ),
        reference_sources=tuple(s.strip("\n") for s in _REVERSE_SOURCES),
        equivalence_swaps=(
            ("rev = rev * 10 + m % 10;", "rev = 10 * rev + m % 10;"),
            ("m = m / 10;", "m /= 10;"),
        ),
        experiment="user-study",
    )
)


# ---------------------------------------------------------------------------
# Factorial interval: count factorial numbers inside [n, m]
# ---------------------------------------------------------------------------


def _factorial_interval_expected(n: int, m: int) -> str:
    count = 0
    factorial = 1
    index = 1
    while factorial <= m:
        if factorial >= n:
            count += 1
        index += 1
        factorial *= index
    return f"{count}\n"


_FACTORIAL_SOURCES = (
    r"""
#include <stdio.h>
int main() {
    int n, m, count = 0, f = 1, i = 1;
    scanf("%d %d", &n, &m);
    while (f <= m) {
        if (f >= n) count = count + 1;
        i = i + 1;
        f = f * i;
    }
    printf("%d\n", count);
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int lo, hi, total = 0, fact = 1, k = 1;
    scanf("%d %d", &lo, &hi);
    while (fact <= hi) {
        if (fact >= lo) {
            total++;
        }
        k++;
        fact = fact * k;
    }
    printf("%d\n", total);
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int n, m, cnt = 0, f = 1, i;
    scanf("%d %d", &n, &m);
    for (i = 2; f <= m; i++) {
        if (f >= n) cnt++;
        f = f * i;
    }
    printf("%d\n", cnt);
    return 0;
}
""",
)

FACTORIAL_INTERVAL = register(
    ProblemSpec(
        name="factorial_interval",
        language="c",
        description=(
            "Read 0 <= n <= m and print how many factorial numbers lie in the "
            "closed interval [n, m]."
        ),
        cases=tuple(
            InputCase(stdin=(n, m), expected_output=_factorial_interval_expected(n, m))
            for n, m in ((0, 1), (1, 6), (3, 25), (7, 119), (1, 720), (25, 26), (0, 5040))
        ),
        reference_sources=tuple(s.strip("\n") for s in _FACTORIAL_SOURCES),
        equivalence_swaps=(
            ("count = count + 1;", "count++;"),
            ("f = f * i;", "f *= i;"),
        ),
        experiment="user-study",
    )
)


# ---------------------------------------------------------------------------
# Trapezoid pattern
# ---------------------------------------------------------------------------


def _trapezoid_expected(h: int, b: int) -> str:
    rows = []
    for i in range(h):
        spaces = h - 1 - i
        stars = b - 2 * spaces
        rows.append(" " * spaces + "*" * stars)
    return "\n".join(rows) + "\n"


_TRAPEZOID_SOURCES = (
    r"""
#include <stdio.h>
int main() {
    int h, b, i, j;
    scanf("%d %d", &h, &b);
    for (i = 0; i < h; i++) {
        for (j = 0; j < h - 1 - i; j++) {
            printf(" ");
        }
        for (j = 0; j < b - 2*(h - 1 - i); j++) {
            printf("*");
        }
        printf("\n");
    }
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int height, base, row, col, spaces;
    scanf("%d %d", &height, &base);
    row = 1;
    while (row <= height) {
        spaces = height - row;
        col = 0;
        while (col < spaces) {
            printf(" ");
            col++;
        }
        col = 0;
        while (col < base - 2*spaces) {
            printf("*");
            col++;
        }
        printf("\n");
        row++;
    }
    return 0;
}
""",
)

TRAPEZOID = register(
    ProblemSpec(
        name="trapezoid",
        language="c",
        description=(
            "Read height h and base length b and print a regular trapezoid "
            "pattern made of '*' characters, h lines tall with the bottom line "
            "b characters wide."
        ),
        cases=tuple(
            InputCase(stdin=(h, b), expected_output=_trapezoid_expected(h, b))
            for h, b in ((1, 2), (3, 8), (5, 14), (4, 10), (2, 6))
        ),
        reference_sources=tuple(s.strip("\n") for s in _TRAPEZOID_SOURCES),
        equivalence_swaps=(
            ("j = 0; j < h - 1 - i; j++", "j = 1; j <= h - 1 - i; j++"),
            ("printf(\" \");", "printf(\"%c\", ' ');"),
        ),
        experiment="user-study",
    )
)


# ---------------------------------------------------------------------------
# Rhombus pattern
# ---------------------------------------------------------------------------


def _rhombus_expected(h: int) -> str:
    mid = (h + 1) // 2
    rows = []
    for row in range(1, h + 1):
        distance = abs(row - mid)
        line = " " * distance + "".join(
            str(col % 10) for col in range(distance + 1, h - distance + 1)
        )
        rows.append(line)
    return "\n".join(rows) + "\n"


_RHOMBUS_SOURCES = (
    r"""
#include <stdio.h>
int main() {
    int h, mid, row, col, d;
    scanf("%d", &h);
    mid = (h + 1) / 2;
    for (row = 1; row <= h; row++) {
        if (row <= mid) d = mid - row;
        else d = row - mid;
        for (col = 0; col < d; col++) {
            printf(" ");
        }
        for (col = d + 1; col <= h - d; col++) {
            printf("%d", col % 10);
        }
        printf("\n");
    }
    return 0;
}
""",
    r"""
#include <stdio.h>
int main() {
    int height, middle, r, c, dist;
    scanf("%d", &height);
    middle = (height + 1) / 2;
    r = 1;
    while (r <= height) {
        if (r <= middle) {
            dist = middle - r;
        } else {
            dist = r - middle;
        }
        c = 0;
        while (c < dist) {
            printf(" ");
            c = c + 1;
        }
        c = dist + 1;
        while (c <= height - dist) {
            printf("%d", c % 10);
            c = c + 1;
        }
        printf("\n");
        r = r + 1;
    }
    return 0;
}
""",
)

RHOMBUS = register(
    ProblemSpec(
        name="rhombus",
        language="c",
        description=(
            "Read an odd h >= 3 and print a rhombus pattern of h lines where "
            "each position shows its column number modulo 10."
        ),
        cases=tuple(
            InputCase(stdin=(h,), expected_output=_rhombus_expected(h))
            for h in (3, 5, 7, 9)
        ),
        reference_sources=tuple(s.strip("\n") for s in _RHOMBUS_SOURCES),
        equivalence_swaps=(
            ("c = c + 1;", "c++;"),
            ("printf(\"%d\", col % 10);", "printf(\"%d\", (col) % 10);"),
        ),
        experiment="user-study",
    )
)
