"""Problem specifications.

A :class:`ProblemSpec` bundles everything the pipeline needs to know about one
assignment: the language, the test inputs with expected behaviour (computed by
a trusted Python reference implementation), a pool of hand-written reference
solutions in different styles (these seed the correct-attempt generator), and
per-problem equivalence swaps used to diversify correct attempts.

The nine problems are exactly the ones listed in Appendix A of the paper:
three Python MOOC problems (Table 1) and six C user-study problems (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.inputs import InputCase

__all__ = ["ProblemSpec", "registry", "get_problem", "all_problems"]


@dataclass(frozen=True)
class ProblemSpec:
    """One programming assignment.

    Attributes:
        name: Identifier (e.g. ``"derivatives"``).
        language: ``"python"`` or ``"c"``.
        entry: Entry function name (``None`` = first function / ``main``).
        description: Short human-readable task statement.
        cases: Test inputs with expected behaviour.
        reference_sources: Hand-written correct solutions in different styles.
        equivalence_swaps: Pairs of source fragments that can be exchanged in
            reference sources without changing behaviour (used to generate
            more correct attempts).
        experiment: ``"mooc"`` (Table 1) or ``"user-study"`` (Table 2).
    """

    name: str
    language: str
    description: str
    cases: tuple[InputCase, ...]
    reference_sources: tuple[str, ...]
    equivalence_swaps: tuple[tuple[str, str], ...] = ()
    entry: str | None = None
    experiment: str = "mooc"


_REGISTRY: dict[str, ProblemSpec] = {}


def register(spec: ProblemSpec) -> ProblemSpec:
    """Register a problem specification (used by the dataset modules)."""
    _REGISTRY[spec.name] = spec
    return spec


def registry() -> dict[str, ProblemSpec]:
    """Return the full problem registry (importing the dataset modules)."""
    _ensure_loaded()
    return dict(_REGISTRY)


def get_problem(name: str) -> ProblemSpec:
    """Look up a problem by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown problem {name!r}; known problems: {known}") from None


def all_problems(experiment: str | None = None) -> list[ProblemSpec]:
    """All problems, optionally filtered by experiment ("mooc" / "user-study")."""
    _ensure_loaded()
    specs = list(_REGISTRY.values())
    if experiment is not None:
        specs = [spec for spec in specs if spec.experiment == experiment]
    return specs


def _ensure_loaded() -> None:
    # Imported lazily to avoid import cycles (the dataset modules import
    # ``register`` from here).
    from . import mooc  # noqa: F401
    from . import user_study  # noqa: F401
