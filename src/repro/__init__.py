"""repro — reproduction of Clara (PLDI 2018).

Automated clustering of correct student solutions and automated repair of
incorrect attempts for introductory programming assignments, following
Gulwani, Radiček and Zuleger, *Automated Clustering and Program Repair for
Introductory Programming Assignments*, PLDI 2018.

Public API highlights:

* :class:`repro.core.Clara` — the end-to-end pipeline (cluster + repair +
  feedback).
* :class:`repro.core.InputCase` — a test input with expected behaviour.
* :class:`repro.engine.BatchRepairEngine` — concurrent corpus repair with
  shared trace/match/repair caching and aggregate reporting.
* :class:`repro.engine.ProcessBatchEngine` — the same corpus repair sharded
  across worker subprocesses (multi-core) with deterministic counter merging.
* :class:`repro.service.RepairService` — the resident daemon: warm
  per-problem engines behind an asyncio NDJSON front door
  (``repro-clara serve``), with incremental
  :class:`repro.clusterstore.ClusterStore` updates and hot reload.
* :func:`repro.frontend.parse_source` — Python / mini-C front-ends.
* :mod:`repro.datasets` — the nine assignments of the paper with synthetic
  student attempts.
* :mod:`repro.evalharness` — experiment runners regenerating every table and
  figure of the evaluation section.
"""

from .core import (
    Clara,
    Feedback,
    InputCase,
    Repair,
    RepairOutcome,
    RepairStatus,
    cluster_programs,
    find_best_repair,
    generate_feedback,
    is_correct,
)
from .clusterstore import ClusterStore
from .engine import BatchRepairEngine, BatchReport, ProcessBatchEngine, RepairCaches
from .frontend import parse_source
from .service import RepairService, ServiceClient

__version__ = "1.2.0"

__all__ = [
    "BatchRepairEngine",
    "BatchReport",
    "Clara",
    "ClusterStore",
    "ProcessBatchEngine",
    "RepairService",
    "ServiceClient",
    "Feedback",
    "InputCase",
    "Repair",
    "RepairCaches",
    "RepairOutcome",
    "RepairStatus",
    "cluster_programs",
    "find_best_repair",
    "generate_feedback",
    "is_correct",
    "parse_source",
    "__version__",
]
