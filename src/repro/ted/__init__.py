"""Tree edit distance substrate (Zhang–Shasha)."""

from .tree import TreeNode, expr_to_tree, postorder, tree_size
from .zhang_shasha import (
    AnnotatedTree,
    TedCache,
    expr_edit_distance,
    ted_lower_bound,
    tree_edit_distance,
)

__all__ = [
    "TreeNode",
    "expr_to_tree",
    "postorder",
    "tree_size",
    "tree_edit_distance",
    "expr_edit_distance",
    "AnnotatedTree",
    "TedCache",
    "ted_lower_bound",
]
