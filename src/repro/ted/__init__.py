"""Tree edit distance substrate (Zhang–Shasha)."""

from .tree import TreeNode, expr_to_tree, postorder, tree_size
from .zhang_shasha import expr_edit_distance, tree_edit_distance

__all__ = [
    "TreeNode",
    "expr_to_tree",
    "postorder",
    "tree_size",
    "tree_edit_distance",
    "expr_edit_distance",
]
