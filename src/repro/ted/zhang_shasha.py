"""Zhang–Shasha tree edit distance (Zhang & Shasha, SIAM J. Comput. 1989).

The paper uses the tree edit distance between the ASTs of the original and
the repaired expression as the repair cost (§5).  This is a from-scratch
implementation of the classic O(n² · min(depth, leaves)²) dynamic program:

1. number nodes in post-order;
2. compute ``l(i)``, the post-order index of the leftmost leaf descendant of
   node ``i``;
3. compute the set of *keyroots* (nodes with no left sibling on the path to
   the root);
4. fill the forest-distance tables for every pair of keyroots.

Unit insert/delete/relabel costs are used, matching the paper's "how many AST
nodes changed" reading of repair size.

The repair fast path layers three optimizations on top of the DP, all
provably result-preserving:

* **Annotation memoization** — the post-order numbering, leftmost-leaf
  indices and keyroots of a tree (:class:`AnnotatedTree`) depend only on the
  expression, so they are computed once per (interned) expression and reused
  across every pairing (:meth:`TedCache.annotation`).  Annotations are pure
  shape-plus-labels data; renaming variables reuses the shape arrays and
  substitutes only the ``var:`` labels (:meth:`AnnotatedTree.rename_vars`),
  which is how cluster pool indexes derive the annotation of a translated
  pool expression in O(n) instead of re-walking the tree.
* **Distance memoization** — the full DP result is cached per expression
  pair (symmetric under unit costs, so both orders hit).
* **Lower-bound pruning** — when the caller supplies a cost ``budget``,
  the cheap bound ``max(|n₁−n₂|, max(n₁,n₂) − |labels₁ ∩ labels₂|)`` (every
  edit script must insert/delete the size difference and touch every node
  whose label has no counterpart) is checked first; when it already reaches
  the budget the DP is skipped and the bound is returned.  The returned
  value is then a *lower bound* ≥ budget, which is exactly what
  branch-and-bound callers need to discard the candidate; results below the
  budget are always exact.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Mapping

from ..model.expr import Expr, intern_expr
from .tree import TreeNode, expr_to_tree, postorder

__all__ = [
    "AnnotatedTree",
    "TedCache",
    "tree_edit_distance",
    "expr_edit_distance",
    "ted_lower_bound",
]

#: Label prefix of variable leaves (see :func:`repro.ted.tree.expr_to_tree`);
#: the only labels affected by variable renaming.
_VAR_LABEL_PREFIX = "var:"


class AnnotatedTree:
    """Post-order labels, leftmost-leaf indices and keyroots of a tree.

    Plain-data form of everything the Zhang–Shasha DP needs: ``labels[i]``
    is the label of the i-th node in post-order, ``lmld[i]`` the post-order
    index of its leftmost leaf descendant, ``keyroots`` the sorted keyroot
    indices.  Instances are immutable once built and safely shared between
    threads and memo tables.
    """

    __slots__ = ("labels", "lmld", "keyroots", "_label_counts")

    def __init__(
        self,
        labels: tuple[str, ...],
        lmld: tuple[int, ...],
        keyroots: tuple[int, ...],
    ) -> None:
        self.labels = labels
        self.lmld = lmld
        self.keyroots = keyroots
        self._label_counts: Counter | None = None

    @classmethod
    def from_tree(cls, root: TreeNode) -> "AnnotatedTree":
        nodes: list[TreeNode] = list(postorder(root))
        labels = tuple(node.label for node in nodes)
        index_of = {id(node): i for i, node in enumerate(nodes)}
        lmld = [0] * len(nodes)
        for i, node in enumerate(nodes):
            current = node
            while current.children:
                current = current.children[0]
            lmld[i] = index_of[id(current)]
        # Keyroots: the highest node for every distinct leftmost-leaf value.
        keyroot_for: dict[int, int] = {}
        for i, left in enumerate(lmld):
            keyroot_for[left] = i
        return cls(labels, tuple(lmld), tuple(sorted(keyroot_for.values())))

    @classmethod
    def from_expr(cls, expr: Expr) -> "AnnotatedTree":
        return cls.from_tree(expr_to_tree(expr))

    def __len__(self) -> int:
        return len(self.labels)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AnnotatedTree)
            and other.labels == self.labels
            and other.lmld == self.lmld
            and other.keyroots == self.keyroots
        )

    def __hash__(self) -> int:
        return hash((self.labels, self.lmld, self.keyroots))

    @property
    def label_counts(self) -> Counter:
        """Multiset of node labels (lazily computed, used by the lower bound)."""
        counts = self._label_counts
        if counts is None:
            counts = Counter(self.labels)
            self._label_counts = counts
        return counts

    def rename_vars(self, mapping: Mapping[str, str]) -> "AnnotatedTree":
        """Annotation of the same tree with variables renamed via ``mapping``.

        Renaming never changes the tree *shape*, so the leftmost-leaf and
        keyroot arrays are shared with ``self``; only ``var:`` labels are
        substituted.  Equals ``AnnotatedTree.from_expr(expr.rename_vars(m))``
        for the underlying expression, at O(n) cost.
        """
        prefix = _VAR_LABEL_PREFIX
        offset = len(prefix)
        labels = tuple(
            prefix + mapping.get(label[offset:], label[offset:])
            if label.startswith(prefix)
            else label
            for label in self.labels
        )
        return AnnotatedTree(labels, self.lmld, self.keyroots)


def ted_lower_bound(a: AnnotatedTree, b: AnnotatedTree) -> int:
    """Cheap lower bound on the tree edit distance between two trees.

    Any edit script must bridge the size difference with inserts/deletes,
    and every node whose label has no counterpart in the other tree's label
    multiset must be inserted, deleted or relabelled — one unit each.
    """
    size_a, size_b = len(a), len(b)
    shared = sum((a.label_counts & b.label_counts).values())
    return max(abs(size_a - size_b), max(size_a, size_b) - shared)


class TedCache:
    """Memoization and counters for expression edit distances.

    One instance is owned by :class:`repro.engine.cache.RepairCaches` and
    shared by every batch worker; a module-level default serves direct
    :func:`expr_edit_distance` calls.  ``enabled=False`` turns every lookup
    into a miss (nothing is stored) while the counters keep counting, which
    is how the unpruned baseline of ``benchmarks/test_repair_throughput.py``
    measures how many DP runs the fast path avoids.

    Counters (monotonic, lock-guarded):

    * ``dp_runs`` — full Zhang–Shasha DP executions;
    * ``memo_hits`` — distances answered from the pair memo;
    * ``lb_prunes`` — DPs skipped because the lower bound reached the budget;
    * ``trivial_hits`` — equal-expression short-circuits.

    Both memo tables are size-bounded (``max_entries``): when a table
    reaches the bound it is flushed wholesale, trading a rare warm-up
    re-computation for zero per-entry eviction bookkeeping — a long-lived
    engine grading an unbounded submission stream cannot grow them forever
    (the pre-fast-path code bounded its memo with ``lru_cache`` the same
    order of magnitude).
    """

    def __init__(self, enabled: bool = True, max_entries: int = 1 << 16) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self._annotations: dict[Expr, AnnotatedTree] = {}
        self._distances: dict[tuple[Expr, Expr], int] = {}
        self._lock = threading.Lock()
        self.dp_runs = 0
        self.memo_hits = 0
        self.lb_prunes = 0
        self.trivial_hits = 0

    # -- annotations -----------------------------------------------------------

    def annotation(self, expr: Expr) -> AnnotatedTree:
        """Return the (memoized) Zhang–Shasha annotation of ``expr``."""
        if not self.enabled:
            return AnnotatedTree.from_expr(expr)
        ann = self._annotations.get(expr)
        if ann is None:
            ann = AnnotatedTree.from_expr(expr)
            if len(self._annotations) >= self.max_entries:
                self._annotations.clear()
            self._annotations[expr] = ann
        return ann

    def seed_annotation(self, expr: Expr, annotation: AnnotatedTree) -> None:
        """Pre-populate the annotation memo (e.g. from a cluster pool index).

        The caller guarantees ``annotation`` equals
        ``AnnotatedTree.from_expr(expr)``; pool indexes derive it via
        :meth:`AnnotatedTree.rename_vars` without re-walking the tree.
        """
        if self.enabled:
            if len(self._annotations) >= self.max_entries:
                self._annotations.clear()
            self._annotations.setdefault(expr, annotation)

    # -- distances -------------------------------------------------------------

    def distance(self, expr1: Expr, expr2: Expr, *, budget: float | None = None) -> int:
        """Edit distance between two expressions, memoized and budget-pruned.

        When ``budget`` is given and the lower bound already reaches it, the
        bound is returned without running the DP — a valid lower bound on
        the true distance, sufficient for the caller to discard the pairing.
        Results strictly below the budget are always exact.
        """
        if expr1 is expr2 or expr1 == expr2:
            with self._lock:
                self.trivial_hits += 1
            return 0
        a = intern_expr(expr1)
        b = intern_expr(expr2)
        if self.enabled:
            cached = self._distances.get((a, b))
            if cached is not None:
                with self._lock:
                    self.memo_hits += 1
                return cached
        ann_a = self.annotation(a)
        ann_b = self.annotation(b)
        if budget is not None:
            bound = ted_lower_bound(ann_a, ann_b)
            if bound >= budget:
                with self._lock:
                    self.lb_prunes += 1
                return bound
        with self._lock:
            self.dp_runs += 1
        result = _annotated_distance(ann_a, ann_b, 1, 1, 1)
        if self.enabled:
            if len(self._distances) >= self.max_entries:
                self._distances.clear()
            # Unit costs make the distance symmetric: store both orders.
            self._distances[(a, b)] = result
            self._distances[(b, a)] = result
        return result

    # -- maintenance -----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Snapshot of the counters, for reports and benchmarks."""
        with self._lock:
            return {
                "dp_runs": self.dp_runs,
                "memo_hits": self.memo_hits,
                "lb_prunes": self.lb_prunes,
                "trivial_hits": self.trivial_hits,
            }

    def entry_counts(self) -> dict[str, int]:
        return {
            "ted_annotations": len(self._annotations),
            "ted_distances": len(self._distances),
        }

    def clear(self) -> None:
        """Drop memoized entries (counters are preserved)."""
        self._annotations.clear()
        self._distances.clear()


#: Default cache behind plain ``expr_edit_distance(a, b)`` calls (replaces
#: the former module ``lru_cache``); the engine threads its own instance.
_DEFAULT_CACHE = TedCache()


def tree_edit_distance(
    tree1: TreeNode,
    tree2: TreeNode,
    *,
    insert_cost: int = 1,
    delete_cost: int = 1,
    relabel_cost: int = 1,
) -> int:
    """Return the edit distance between two ordered labelled trees."""
    return _annotated_distance(
        AnnotatedTree.from_tree(tree1),
        AnnotatedTree.from_tree(tree2),
        insert_cost,
        delete_cost,
        relabel_cost,
    )


def _annotated_distance(
    a: AnnotatedTree,
    b: AnnotatedTree,
    insert_cost: int,
    delete_cost: int,
    relabel_cost: int,
) -> int:
    size_a, size_b = len(a), len(b)
    distance = [[0] * size_b for _ in range(size_a)]

    def update_cost(i: int, j: int) -> int:
        return 0 if a.labels[i] == b.labels[j] else relabel_cost

    for keyroot_a in a.keyroots:
        for keyroot_b in b.keyroots:
            _forest_distance(
                a,
                b,
                keyroot_a,
                keyroot_b,
                distance,
                insert_cost,
                delete_cost,
                update_cost,
            )
    return distance[size_a - 1][size_b - 1]


def _forest_distance(
    a: AnnotatedTree,
    b: AnnotatedTree,
    keyroot_a: int,
    keyroot_b: int,
    distance: list[list[int]],
    insert_cost: int,
    delete_cost: int,
    update_cost,
) -> None:
    la, lb = a.lmld, b.lmld
    off_a = la[keyroot_a]
    off_b = lb[keyroot_b]
    rows = keyroot_a - off_a + 2
    cols = keyroot_b - off_b + 2
    forest = [[0] * cols for _ in range(rows)]

    for i in range(1, rows):
        forest[i][0] = forest[i - 1][0] + delete_cost
    for j in range(1, cols):
        forest[0][j] = forest[0][j - 1] + insert_cost

    for i in range(1, rows):
        for j in range(1, cols):
            node_a = off_a + i - 1
            node_b = off_b + j - 1
            if la[node_a] == off_a and lb[node_b] == off_b:
                forest[i][j] = min(
                    forest[i - 1][j] + delete_cost,
                    forest[i][j - 1] + insert_cost,
                    forest[i - 1][j - 1] + update_cost(node_a, node_b),
                )
                distance[node_a][node_b] = forest[i][j]
            else:
                left_a = la[node_a] - off_a
                left_b = lb[node_b] - off_b
                forest[i][j] = min(
                    forest[i - 1][j] + delete_cost,
                    forest[i][j - 1] + insert_cost,
                    forest[left_a][left_b] + distance[node_a][node_b],
                )


def expr_edit_distance(
    expr1: Expr,
    expr2: Expr,
    *,
    cache: TedCache | None = None,
    budget: float | None = None,
) -> int:
    """Tree edit distance between the ASTs of two model expressions.

    Args:
        expr1: The "old" expression.
        expr2: The "new" expression.
        cache: Memo table and counters to route the computation through;
            defaults to a shared module-level cache.
        budget: Optional branch-and-bound budget.  When the cheap lower
            bound already reaches it the DP is skipped and the bound (a
            value ≥ ``budget`` but possibly below the true distance) is
            returned; results below the budget are always exact.
    """
    if cache is None:
        cache = _DEFAULT_CACHE
    return cache.distance(expr1, expr2, budget=budget)
