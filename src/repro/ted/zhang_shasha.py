"""Zhang–Shasha tree edit distance (Zhang & Shasha, SIAM J. Comput. 1989).

The paper uses the tree edit distance between the ASTs of the original and
the repaired expression as the repair cost (§5).  This is a from-scratch
implementation of the classic O(n² · min(depth, leaves)²) dynamic program:

1. number nodes in post-order;
2. compute ``l(i)``, the post-order index of the leftmost leaf descendant of
   node ``i``;
3. compute the set of *keyroots* (nodes with no left sibling on the path to
   the root);
4. fill the forest-distance tables for every pair of keyroots.

Unit insert/delete/relabel costs are used, matching the paper's "how many AST
nodes changed" reading of repair size.
"""

from __future__ import annotations

from functools import lru_cache

from ..model.expr import Expr
from .tree import TreeNode, expr_to_tree, postorder

__all__ = ["tree_edit_distance", "expr_edit_distance"]


class _AnnotatedTree:
    """Post-order numbering, leftmost-leaf indices and keyroots of a tree."""

    def __init__(self, root: TreeNode) -> None:
        self.nodes: list[TreeNode] = list(postorder(root))
        self.labels: list[str] = [node.label for node in self.nodes]
        index_of = {id(node): i for i, node in enumerate(self.nodes)}
        self.lmld: list[int] = [0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            current = node
            while current.children:
                current = current.children[0]
            self.lmld[i] = index_of[id(current)]
        # Keyroots: the highest node for every distinct leftmost-leaf value.
        keyroot_for: dict[int, int] = {}
        for i, left in enumerate(self.lmld):
            keyroot_for[left] = i
        self.keyroots: list[int] = sorted(keyroot_for.values())

    def __len__(self) -> int:
        return len(self.nodes)


def tree_edit_distance(
    tree1: TreeNode,
    tree2: TreeNode,
    *,
    insert_cost: int = 1,
    delete_cost: int = 1,
    relabel_cost: int = 1,
) -> int:
    """Return the edit distance between two ordered labelled trees."""
    a = _AnnotatedTree(tree1)
    b = _AnnotatedTree(tree2)
    size_a, size_b = len(a), len(b)
    distance = [[0] * size_b for _ in range(size_a)]

    def update_cost(i: int, j: int) -> int:
        return 0 if a.labels[i] == b.labels[j] else relabel_cost

    for keyroot_a in a.keyroots:
        for keyroot_b in b.keyroots:
            _forest_distance(
                a,
                b,
                keyroot_a,
                keyroot_b,
                distance,
                insert_cost,
                delete_cost,
                update_cost,
            )
    return distance[size_a - 1][size_b - 1]


def _forest_distance(
    a: _AnnotatedTree,
    b: _AnnotatedTree,
    keyroot_a: int,
    keyroot_b: int,
    distance: list[list[int]],
    insert_cost: int,
    delete_cost: int,
    update_cost,
) -> None:
    la, lb = a.lmld, b.lmld
    off_a = la[keyroot_a]
    off_b = lb[keyroot_b]
    rows = keyroot_a - off_a + 2
    cols = keyroot_b - off_b + 2
    forest = [[0] * cols for _ in range(rows)]

    for i in range(1, rows):
        forest[i][0] = forest[i - 1][0] + delete_cost
    for j in range(1, cols):
        forest[0][j] = forest[0][j - 1] + insert_cost

    for i in range(1, rows):
        for j in range(1, cols):
            node_a = off_a + i - 1
            node_b = off_b + j - 1
            if la[node_a] == off_a and lb[node_b] == off_b:
                forest[i][j] = min(
                    forest[i - 1][j] + delete_cost,
                    forest[i][j - 1] + insert_cost,
                    forest[i - 1][j - 1] + update_cost(node_a, node_b),
                )
                distance[node_a][node_b] = forest[i][j]
            else:
                left_a = la[node_a] - off_a
                left_b = lb[node_b] - off_b
                forest[i][j] = min(
                    forest[i - 1][j] + delete_cost,
                    forest[i][j - 1] + insert_cost,
                    forest[left_a][left_b] + distance[node_a][node_b],
                )


def expr_edit_distance(expr1: Expr, expr2: Expr) -> int:
    """Tree edit distance between the ASTs of two model expressions."""
    return _cached_expr_distance(expr1, expr2)


@lru_cache(maxsize=65536)
def _cached_expr_distance(expr1: Expr, expr2: Expr) -> int:
    if expr1 == expr2:
        return 0
    return tree_edit_distance(expr_to_tree(expr1), expr_to_tree(expr2))
