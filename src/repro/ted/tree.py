"""Ordered labelled trees used by the tree-edit-distance algorithm.

Model expressions are converted into :class:`TreeNode` objects whose labels
are the operation name, the variable name, or the constant value.  The
Zhang–Shasha algorithm (see :mod:`repro.ted.zhang_shasha`) works on the
post-order numbering computed by :func:`postorder_index`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..model.expr import Const, Expr, Op, Var

__all__ = ["TreeNode", "expr_to_tree", "tree_size", "postorder"]


@dataclass
class TreeNode:
    """A node of an ordered labelled tree."""

    label: str
    children: list["TreeNode"] = field(default_factory=list)

    def add(self, child: "TreeNode") -> "TreeNode":
        self.children.append(child)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if not self.children:
            return self.label
        inner = ", ".join(repr(c) for c in self.children)
        return f"{self.label}({inner})"


def expr_to_tree(expr: Expr) -> TreeNode:
    """Convert a model expression into a labelled tree."""
    if isinstance(expr, Var):
        return TreeNode(f"var:{expr.name}")
    if isinstance(expr, Const):
        return TreeNode(f"const:{expr.value!r}")
    if isinstance(expr, Op):
        node = TreeNode(f"op:{expr.name}")
        for arg in expr.args:
            node.add(expr_to_tree(arg))
        return node
    raise TypeError(f"not an expression: {expr!r}")  # pragma: no cover


def tree_size(node: TreeNode) -> int:
    """Number of nodes in the tree."""
    return 1 + sum(tree_size(child) for child in node.children)


def postorder(node: TreeNode) -> Iterator[TreeNode]:
    """Yield nodes in post-order (children before parents)."""
    for child in node.children:
        yield from postorder(child)
    yield node
