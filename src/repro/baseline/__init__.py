"""AutoGrader-style baseline: error-model rewrite search."""

from .autograder import AutoGrader, AutoGraderRepair
from .error_model import RewriteRule, applicable_rewrites, default_error_model

__all__ = [
    "AutoGrader",
    "AutoGraderRepair",
    "RewriteRule",
    "applicable_rewrites",
    "default_error_model",
]
