"""Error models for the AutoGrader-style baseline (Singh et al., PLDI 2013).

AutoGrader takes an instructor-provided *error model*: a set of expression
rewrite rules describing the corrections students typically need.  The
baseline searches for a minimal set of rule applications that makes the
program pass the test suite.

Crucially -- and this is the comparison point the paper makes in §6.2.1 and
Appendix B -- the error model can only rewrite existing expressions.  It can
not introduce fresh variables or new statements, which is why AutoGrader fails
on the "big conceptual error" attempts that Clara repairs.

Each rule maps an expression node to a list of alternative nodes.  Rules are
deliberately generic (off-by-one constants, comparison operator flips, range
bound fixes, operand swaps, variable substitutions), mirroring the published
error models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..model.expr import Const, Expr, Op, Var

__all__ = ["RewriteRule", "default_error_model", "applicable_rewrites"]


@dataclass(frozen=True)
class RewriteRule:
    """A named expression rewrite rule."""

    name: str
    apply: Callable[[Expr, Sequence[str]], list[Expr]]

    def alternatives(self, node: Expr, variables: Sequence[str]) -> list[Expr]:
        """Alternative nodes for ``node`` (may be empty)."""
        return self.apply(node, variables)


# -- individual rules -----------------------------------------------------------


def _integer_constants(node: Expr, _variables: Sequence[str]) -> list[Expr]:
    """k -> k±1, 0, 1 (the classic off-by-one family)."""
    if not isinstance(node, Const):
        return []
    value = node.value
    if not isinstance(value, int) or isinstance(value, bool):
        return []
    candidates = {value + 1, value - 1, 0, 1}
    candidates.discard(value)
    return [Const(v) for v in sorted(candidates)]


def _comparison_operators(node: Expr, _variables: Sequence[str]) -> list[Expr]:
    """Relax/tighten/negate comparison operators."""
    swaps = {
        "Lt": ("LtE", "Gt"),
        "LtE": ("Lt", "GtE"),
        "Gt": ("GtE", "Lt"),
        "GtE": ("Gt", "LtE"),
        "Eq": ("NotEq",),
        "NotEq": ("Eq",),
    }
    if isinstance(node, Op) and node.name in swaps and len(node.args) == 2:
        return [Op(name, *node.args) for name in swaps[node.name]]
    return []


def _arithmetic_operators(node: Expr, _variables: Sequence[str]) -> list[Expr]:
    swaps = {
        "Add": ("Sub",),
        "Sub": ("Add",),
        "Mult": ("Add", "Pow"),
        "Div": ("FloorDiv", "Mult"),
        "FloorDiv": ("Div", "Mod"),
        "Mod": ("FloorDiv",),
    }
    if isinstance(node, Op) and node.name in swaps and len(node.args) == 2:
        return [Op(name, *node.args) for name in swaps[node.name]]
    return []


def _swap_operands(node: Expr, _variables: Sequence[str]) -> list[Expr]:
    if isinstance(node, Op) and node.name in ("Sub", "Div", "FloorDiv", "Mod", "Lt", "Gt", "LtE", "GtE") and len(node.args) == 2:
        return [Op(node.name, node.args[1], node.args[0])]
    return []


def _range_bounds(node: Expr, _variables: Sequence[str]) -> list[Expr]:
    """range(a) <-> range(1, a); range(a, b) <-> range(a+1, b) etc."""
    if not isinstance(node, Op) or node.name not in ("range", "xrange"):
        return []
    out: list[Expr] = []
    if len(node.args) == 1:
        out.append(Op(node.name, Const(1), node.args[0]))
        out.append(Op(node.name, Const(0), node.args[0]))
    elif len(node.args) == 2:
        out.append(Op(node.name, node.args[1]))
        out.append(Op(node.name, Const(0), node.args[1]))
        out.append(Op(node.name, Const(1), node.args[1]))
        out.append(Op(node.name, node.args[0], Op("Add", node.args[1], Const(1))))
    elif len(node.args) == 3:
        out.append(Op(node.name, node.args[0], node.args[1]))
    return [candidate for candidate in out if candidate != node]


def _variable_substitution(node: Expr, variables: Sequence[str]) -> list[Expr]:
    """Replace a variable occurrence by another program variable."""
    if not isinstance(node, Var):
        return []
    return [Var(name) for name in variables if name != node.name and not name.startswith("$")]


def _wrap_in_list(node: Expr, _variables: Sequence[str]) -> list[Expr]:
    """v -> [v] (returning a scalar instead of a list is a common slip)."""
    if isinstance(node, Const) and isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
        return [Const([node.value])]
    return []


def _float_wrap(node: Expr, _variables: Sequence[str]) -> list[Expr]:
    """e -> float(e) and float(e) -> e."""
    if isinstance(node, Op) and node.name == "float" and len(node.args) == 1:
        return [node.args[0]]
    if isinstance(node, (Var, Op)) and not (isinstance(node, Op) and node.name == "float"):
        return [Op("float", node)]
    return []


def default_error_model() -> list[RewriteRule]:
    """The generic error model used in the Table 1 comparison."""
    return [
        RewriteRule("integer-constants", _integer_constants),
        RewriteRule("comparison-operators", _comparison_operators),
        RewriteRule("arithmetic-operators", _arithmetic_operators),
        RewriteRule("swap-operands", _swap_operands),
        RewriteRule("range-bounds", _range_bounds),
        RewriteRule("variable-substitution", _variable_substitution),
        RewriteRule("wrap-scalar-in-list", _wrap_in_list),
        RewriteRule("float-wrap", _float_wrap),
    ]


def applicable_rewrites(
    expr: Expr, rules: Iterable[RewriteRule], variables: Sequence[str]
) -> list[tuple[tuple[int, ...], Expr, str]]:
    """All single rewrites applicable anywhere inside ``expr``.

    Returns tuples ``(path, replacement_subexpression, rule_name)``.
    """
    out: list[tuple[tuple[int, ...], Expr, str]] = []
    for path, node in expr.paths():
        for rule in rules:
            for alternative in rule.alternatives(node, variables):
                out.append((path, alternative, rule.name))
    return out
