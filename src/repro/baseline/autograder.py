"""AutoGrader-style baseline repair (Singh, Gulwani, Solar-Lezama, PLDI 2013).

The original AutoGrader synthesises a minimal set of corrections drawn from an
instructor-written error model, using constraint-based synthesis (Sketch).
Neither the tool nor its error models are available, so this module
reimplements the approach's essence at the level of our program model:

* the *error model* is a set of expression rewrite rules
  (:mod:`repro.baseline.error_model`);
* the search enumerates sets of rule applications of increasing size (1, then
  2, ...), applies them to the program, and runs the test suite;
* the first passing candidate with the fewest applications is returned.

The important structural property is preserved: the baseline can only rewrite
*existing* expressions.  It cannot add fresh variables, add statements, or
restructure control flow — precisely the limitations the paper's comparison
highlights (§6.2.1 and Appendix B).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Sequence

from ..model.expr import Expr
from ..model.program import Program
from ..ted import expr_edit_distance
from .error_model import RewriteRule, applicable_rewrites, default_error_model
from ..core.inputs import InputCase, is_correct

__all__ = ["AutoGraderRepair", "AutoGrader"]

#: One concrete edit: replace the subexpression at ``path`` inside the update
#: of (loc_id, var) with ``replacement``.
_Edit = tuple[int, str, tuple[int, ...], Expr, str]


@dataclass
class AutoGraderRepair:
    """A successful baseline repair."""

    edits: list[tuple[int, str, Expr, Expr, str]]
    repaired_program: Program
    cost: int
    elapsed: float

    @property
    def num_modified_expressions(self) -> int:
        """Number of distinct (location, variable) expressions modified."""
        return len({(loc, var) for loc, var, *_ in self.edits})

    def tree_edit_cost(self) -> int:
        """Total tree-edit distance of the modifications."""
        return sum(
            expr_edit_distance(old, new) for _, _, old, new, _ in self.edits
        )


@dataclass
class AutoGrader:
    """Error-model-based repair baseline.

    Args:
        cases: Test cases defining correctness.
        rules: The error model (defaults to the generic model).
        max_edits: Maximum number of simultaneous rule applications.
        max_candidates: Search budget (number of candidate programs tested).
        timeout: Wall-clock budget in seconds.
    """

    cases: Sequence[InputCase]
    rules: list[RewriteRule] = field(default_factory=default_error_model)
    max_edits: int = 2
    max_candidates: int = 20_000
    timeout: float = 30.0

    def repair(self, program: Program) -> AutoGraderRepair | None:
        """Search for a minimal set of rewrites making ``program`` correct."""
        start = time.perf_counter()
        variables = [v for v in program.variables if not v.startswith("$")]
        edits = self._enumerate_edits(program, variables)
        tested = 0

        for size in range(1, self.max_edits + 1):
            for combo in combinations(range(len(edits)), size):
                if tested >= self.max_candidates:
                    return None
                if time.perf_counter() - start > self.timeout:
                    return None
                selected = [edits[i] for i in combo]
                if not _compatible(selected):
                    continue
                candidate = self._apply(program, selected)
                tested += 1
                if is_correct(candidate, self.cases):
                    applied = [
                        (
                            loc_id,
                            var,
                            program.update_for(loc_id, var),
                            candidate.update_for(loc_id, var),
                            rule,
                        )
                        for loc_id, var, _path, _expr, rule in selected
                    ]
                    return AutoGraderRepair(
                        edits=applied,
                        repaired_program=candidate,
                        cost=size,
                        elapsed=time.perf_counter() - start,
                    )
        return None

    # -- helpers -----------------------------------------------------------------

    def _enumerate_edits(self, program: Program, variables: Sequence[str]) -> list[_Edit]:
        edits: list[_Edit] = []
        for loc_id, var, expr in program.iter_updates():
            for path, replacement, rule in applicable_rewrites(expr, self.rules, variables):
                edits.append((loc_id, var, path, replacement, rule))
        return edits

    @staticmethod
    def _apply(program: Program, edits: Sequence[_Edit]) -> Program:
        repaired = program.copy()
        for loc_id, var, path, replacement, _rule in edits:
            current = repaired.update_for(loc_id, var)
            repaired.locations[loc_id].updates[var] = current.replace_at(path, replacement)
        return repaired


def _compatible(edits: Sequence[_Edit]) -> bool:
    """Two edits are incompatible when one rewrites inside the other's path."""
    seen: list[tuple[int, str, tuple[int, ...]]] = []
    for loc_id, var, path, _replacement, _rule in edits:
        for other_loc, other_var, other_path in seen:
            if loc_id == other_loc and var == other_var:
                shorter, longer = sorted((path, other_path), key=len)
                if longer[: len(shorter)] == shorter:
                    return False
        seen.append((loc_id, var, path))
    return True
