"""Command-line interface.

Examples::

    repro-clara table1 --correct 40 --incorrect 20
    repro-clara table2 --correct 30 --incorrect 15
    repro-clara fig6
    repro-clara repair --problem derivatives --file attempt.py
    repro-clara cluster build --problem derivatives --correct 60 \
        --output clusters.json
    repro-clara cluster info clusters.json
    repro-clara cluster export clusters.json --output clusters-v2.json
    repro-clara cluster import clusters-v2.json --output clusters.json
    repro-clara batch --problem derivatives --attempts submissions/ \
        --clusters clusters.json --workers 4 --output report.jsonl
    repro-clara batch --problem derivatives --attempts submissions/ \
        --clusters clusters.json --processes 4 --profile
    repro-clara serve --clusters clusters.json --port 9172
    repro-clara serve --clusters a.json --clusters b.json --fleet 2
    repro-clara list-problems
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path

from .clusterstore import (
    FORMAT_VERSION,
    V2_FORMAT_VERSION,
    ClusterStoreError,
    export_clusters,
    import_clusters,
    read_store_header,
)
from .core.pipeline import Clara
from .datasets import all_problems, generate_corpus, get_problem
from .engine import BatchAttempt, BatchRepairEngine
from .evalharness import (
    format_failure_breakdown,
    format_table1,
    format_table2,
    render_fig6,
    render_fig7a,
    render_fig7b,
    run_experiment,
    run_user_study,
)

__all__ = ["main"]


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--correct", type=int, default=None, help="correct attempts per problem")
    parser.add_argument("--incorrect", type=int, default=None, help="incorrect attempts per problem")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_table1(args: argparse.Namespace) -> int:
    problems = [spec.name for spec in all_problems(experiment="mooc")]
    results = run_experiment(
        problems,
        n_correct=args.correct,
        n_incorrect=args.incorrect,
        seed=args.seed,
        run_autograder=not args.no_autograder,
    )
    print(format_table1(results, with_autograder=not args.no_autograder))
    print()
    print(format_failure_breakdown(results))
    if not args.no_autograder:
        print()
        print(render_fig7a(results))
        print()
        print(render_fig7b(results))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    problems = [spec.name for spec in all_problems(experiment="mooc")]
    results = run_experiment(
        problems,
        n_correct=args.correct,
        n_incorrect=args.incorrect,
        seed=args.seed,
        run_autograder=False,
    )
    print(render_fig6(results))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = run_user_study(
        n_correct=args.correct, n_incorrect=args.incorrect, seed=args.seed
    )
    print(format_table2(rows))
    return 0


def _cmd_list_problems(_args: argparse.Namespace) -> int:
    for spec in all_problems():
        print(f"{spec.name:<20} [{spec.language}] {spec.experiment:<11} {spec.description}")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    spec = get_problem(args.problem)
    source = Path(args.file).read_text(encoding="utf-8")
    corpus = generate_corpus(spec, args.correct, 0, seed=args.seed)
    clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
    clara.add_correct_sources(corpus.correct_sources)
    outcome = clara.repair_source(source)
    print(f"status: {outcome.status}  ({outcome.elapsed:.2f}s, {clara.cluster_count} clusters)")
    if outcome.feedback is not None:
        print(outcome.feedback.text())
    return 0 if outcome.succeeded else 1


def _load_attempts(path: Path, language: str) -> list[BatchAttempt]:
    """Load a batch of attempts from a directory, a JSONL file or one file.

    * directory — every ``*.py`` (or ``*.c`` for C problems) file, sorted by
      name; the file name becomes the attempt id;
    * ``*.jsonl`` file — one JSON object per line with a ``source`` field and
      an optional ``id``;
    * any other file — a single attempt.

    All reads are explicit UTF-8 (student sources routinely carry
    non-ASCII identifiers, string literals and comments); relying on the
    platform default encoding would corrupt them on non-UTF-8 locales.
    """
    if path.is_dir():
        pattern = "*.c" if language == "c" else "*.py"
        return [
            BatchAttempt(attempt_id=entry.name, source=entry.read_text(encoding="utf-8"))
            for entry in sorted(path.glob(pattern))
        ]
    if path.suffix == ".jsonl":
        attempts: list[BatchAttempt] = []
        for index, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
            if not line.strip():
                continue
            record = json.loads(line)
            if not isinstance(record, dict) or not isinstance(record.get("source"), str):
                raise ValueError(
                    f"line {index + 1}: expected an object with a string 'source' field"
                )
            attempts.append(
                BatchAttempt(
                    attempt_id=str(record.get("id", f"attempt-{index}")),
                    source=record["source"],
                )
            )
        return attempts
    return [BatchAttempt(attempt_id=path.name, source=path.read_text(encoding="utf-8"))]


def _cmd_cluster_build(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    try:
        spec = get_problem(args.problem)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    corpus = generate_corpus(spec, args.correct, 0, seed=args.seed)
    clara = Clara(
        cases=spec.cases,
        language=spec.language,
        entry=spec.entry,
        cluster_workers=args.workers,
    )
    result = clara.add_correct_sources(corpus.correct_sources)
    try:
        path = clara.save_clusters(args.output, problem=spec.name)
    except OSError as exc:
        print(f"cannot write cluster store {args.output}: {exc}", file=sys.stderr)
        return 2
    stats = result.stats
    print(
        f"built {clara.cluster_count} clusters from {stats.programs} correct "
        f"solutions ({stats.buckets} fingerprint buckets, "
        f"{stats.full_matches} full matches) -> {path}",
        file=sys.stderr,
    )
    for index, reason in result.failures:
        print(f"  failed to cluster correct[{index}]: {reason}", file=sys.stderr)
    return 0


def _cmd_cluster_info(args: argparse.Namespace) -> int:
    # The header is read leniently — a store of any format version still
    # identifies itself (version, revision, problem), so operators can tell
    # a current store from a stale one without hitting the strict loader's
    # rebuild-hint error.
    try:
        header = read_store_header(args.store)
    except ClusterStoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    current = "" if header.is_current else f" (stale; this build reads {FORMAT_VERSION})"
    print(f"cluster store: {args.store}")
    print(f"format version: {header.format_version}{current}")
    print(f"revision:       {header.revision}")
    print(f"problem:        {header.problem or '(unknown)'}")
    print(f"language:       {header.language}")
    print(f"case signature: {header.case_signature[:16]}…")
    print(f"clusters:       {header.cluster_count}")
    print(f"members:        {header.total_members}")
    if not header.is_current:
        if header.format_version == V2_FORMAT_VERSION:
            print(
                "segment statistics need a current-format store; migrate this "
                f"one in place with 'repro-clara cluster import {args.store} "
                f"--output {args.store}'"
            )
        else:
            print(
                "segment statistics need a current-format store; rebuild with "
                "'repro-clara cluster build' to serve from this one"
            )
        return 0
    # A current (v3) store reports entirely from the header's segment index —
    # no segment file is opened, so 'info' stays O(header) even on stores
    # whose clusters would take seconds to decode.
    print(f"segments:       {len(header.segments)} ({header.segment_bytes()} bytes)")
    # Retrieval-vector coverage: headers written before the prefilter
    # existed carry no vectors and still serve fine — the prefilter just
    # stays off (and counts fallbacks) for the affected candidates.
    from .retrieval import decode_retrieval_payload

    covered = 0
    for entry in header.segments:
        decoded = decode_retrieval_payload(entry.retrieval)
        if decoded:
            covered += len(decoded)
    if covered and covered >= header.cluster_count:
        retrieval_status = f"vectors for all {header.cluster_count} clusters"
    elif covered:
        retrieval_status = (
            f"vectors for {covered}/{header.cluster_count} clusters "
            f"(partial; prefilter falls back where absent)"
        )
    else:
        retrieval_status = (
            "no vectors (store predates retrieval; prefilter disabled, "
            "exact matching only)"
        )
    print(f"retrieval:      {retrieval_status}")
    for entry in header.segments:
        fingerprint = (entry.fingerprint or "")[:12] or "-"
        skeleton = (entry.skeleton or "")[:12] or "-"
        vectors = decode_retrieval_payload(entry.retrieval)
        print(
            f"  {entry.segment}: clusters={entry.clusters} "
            f"members={entry.members} bytes={entry.bytes} "
            f"fingerprint={fingerprint} skeleton={skeleton} "
            f"vectors={'yes' if vectors else 'no'}"
        )
    return 0


def _cmd_cluster_export(args: argparse.Namespace) -> int:
    try:
        path = export_clusters(args.store, args.output)
    except ClusterStoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot export cluster store {args.store}: {exc}", file=sys.stderr)
        return 2
    print(f"exported {args.store} -> {path} (format version {V2_FORMAT_VERSION})", file=sys.stderr)
    return 0


def _cmd_cluster_import(args: argparse.Namespace) -> int:
    try:
        path = import_clusters(args.source, args.output)
    except ClusterStoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot import cluster document {args.source}: {exc}", file=sys.stderr)
        return 2
    print(f"imported {args.source} -> {path} (format version {FORMAT_VERSION})", file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.processes < 1:
        print(f"--processes must be >= 1, got {args.processes}", file=sys.stderr)
        return 2
    if args.processes > 1 and not args.clusters:
        # Worker subprocesses rebuild their pipelines from the store header's
        # problem name; there is no way to ship a freshly generated pool.
        print("--processes > 1 requires --clusters", file=sys.stderr)
        return 2
    try:
        spec = get_problem(args.problem)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        attempts = _load_attempts(Path(args.attempts), spec.language)
    except FileNotFoundError:
        print(f"no such file or directory: {args.attempts}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # json.JSONDecodeError is a ValueError subclass.
        print(f"malformed attempts file {args.attempts}: {exc}", file=sys.stderr)
        return 2
    if not attempts:
        print(f"no attempts found at {args.attempts}", file=sys.stderr)
        return 1
    clara = Clara(
        cases=spec.cases,
        language=spec.language,
        entry=spec.entry,
        retrieval_prefilter=not args.no_prefilter,
    )
    if args.profile:
        from .core.profile import PhaseProfiler

        clara.caches.profiler = PhaseProfiler()
    if args.clusters:
        try:
            engine = BatchRepairEngine.from_store(
                args.clusters,
                clara,
                workers=args.workers,
                budget=args.budget,
                processes=args.processes,
            )
        except (ClusterStoreError, ValueError) as exc:
            # ValueError: --processes > 1 against a store that names no
            # problem (workers could not rebuild their pipelines) or whose
            # language contradicts --problem's.
            print(str(exc), file=sys.stderr)
            return 2
    else:
        corpus = generate_corpus(spec, args.correct, 0, seed=args.seed)
        clara.add_correct_sources(corpus.correct_sources)
        engine = BatchRepairEngine(clara, workers=args.workers, budget=args.budget)
    report = engine.run(attempts)
    if args.output:
        report.write_jsonl(args.output)
    else:
        print(report.to_jsonl(), end="")
    summary = report.summary()
    histogram = ", ".join(
        f"{status}={count}" for status, count in summary["status_histogram"].items()
    )
    parallelism = (
        f"{args.processes} processes"
        if args.processes > 1
        else f"{args.workers} workers"
    )
    print(
        f"batch: {summary['attempts']} attempts in {summary['wall_time']:.2f}s "
        f"({summary['attempts_per_second']:.2f}/s, {parallelism})",
        file=sys.stderr,
    )
    print(f"statuses: {histogram}", file=sys.stderr)
    print(
        "cache: trace {trace_hits}/{trace_total} hits, match {match_hits}/{match_total},"
        " repair {repair_hits}/{repair_total}".format(
            trace_hits=summary["cache"]["trace_hits"],
            trace_total=summary["cache"]["trace_hits"] + summary["cache"]["trace_misses"],
            match_hits=summary["cache"]["match_hits"],
            match_total=summary["cache"]["match_hits"] + summary["cache"]["match_misses"],
            repair_hits=summary["cache"]["repair_hits"],
            repair_total=summary["cache"]["repair_hits"] + summary["cache"]["repair_misses"],
        ),
        file=sys.stderr,
    )
    if args.profile:
        # Process runs attach their merged sections to the report; in-process
        # runs read them off the live pipeline.  Same payload shape either
        # way (Clara.counters_payload), which is what lets the CI smoke job
        # diff the two files section by section.
        sections = report.profile if report.profile is not None else clara.counters_payload()
        profile_path = _write_batch_profile(args, spec, report, sections)
        breakdown = ", ".join(
            f"{phase}={seconds:.3f}s"
            for phase, seconds in sections["phases"]["timings"].items()
        )
        print(f"profile: {breakdown or '(no instrumented work ran)'}", file=sys.stderr)
        print(f"profile report -> {profile_path}", file=sys.stderr)
    return 0


def _write_batch_profile(args, spec, report, sections) -> Path:
    """Write the per-phase timing/counter breakdown to ``results/local/``.

    ``sections`` is a :meth:`repro.core.pipeline.Clara.counters_payload`
    dict — from the live pipeline for in-process runs, or the merged
    per-worker payload (``report.profile``) for ``--processes > 1``.
    Timings are machine-dependent, so the report goes to the gitignored
    local results directory (created relative to the working directory when
    run outside the repository).
    """
    payload = {
        "problem": spec.name,
        "attempts": len(report.records),
        "workers": args.workers,
        "processes": args.processes,
        "phases": sections["phases"],
        "ted": sections["ted"],
        "compile": sections["compile"],
        "solve": sections["solve"],
        "cache": report.cache_stats.as_dict(),
        "cache_entries": sections["cache_entries"],
        "store_paging": sections["store_paging"],
        "retrieval": sections["retrieval"],
    }
    directory = Path("results") / "local"
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "batch_profile.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def _build_serve_service(args: argparse.Namespace):
    """Build the single-process service or the fleet router for ``serve``.

    Returns ``(service, description)`` or raises the store/problem errors
    the caller already maps to exit code 2.
    """
    if args.fleet is not None:
        from .fleet import FleetService

        fleet_kwargs = {}
        if args.kill_after is not None:
            # None means "use the supervisor default" here; FleetService's
            # own None means "disable the kill watchdog".
            fleet_kwargs["kill_after"] = args.kill_after
        service = FleetService(
            args.clusters,
            fleet_size=args.fleet,
            threads=args.workers,
            default_deadline=args.deadline,
            fault_plan_path=args.fault_plan,
            **fleet_kwargs,
        )
        if not service.wait_ready(60.0):
            # Shards that never came up answer with structured retriable
            # errors; serving the healthy ones beats refusing to start.
            print("warning: not every fleet shard reached serving", file=sys.stderr)
        for shard, names in enumerate(service._shard_problems):
            print(f"fleet shard {shard}: {', '.join(names)}", file=sys.stderr)
        description = (
            f"{len(service.problems())} problems, fleet of {service.fleet_size}, "
            f"{args.workers} threads/worker"
        )
        return service, description

    from .service import RepairService

    service = RepairService(
        queue_size=args.queue_size,
        workers=args.workers,
        default_deadline=args.deadline,
    )
    for store_path in args.clusters:
        runtime = service.add_problem(store_path)
        print(
            f"loaded problem {runtime.name!r} from {store_path} "
            f"(revision {runtime.revision}, "
            f"{runtime.snapshot().engine.clara.cluster_count} clusters)",
            file=sys.stderr,
        )
    description = (
        f"{len(service.problems())} problems, queue {args.queue_size}, "
        f"{args.workers} workers"
    )
    return service, description


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import RepairServer

    if args.fault_plan and args.fleet is None:
        print("--fault-plan requires --fleet (faults are injected in workers)", file=sys.stderr)
        return 2
    try:
        service, description = _build_serve_service(args)
    except ValueError as exc:
        # The constructors own the bounds (queue_size/workers/fleet >= 1);
        # surface their messages rather than duplicating the checks here.
        print(str(exc), file=sys.stderr)
        return 2
    except ClusterStoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    server = RepairServer(
        service, host=args.host, port=args.port, drain_timeout=args.drain_timeout
    )

    def announce(bound: "RepairServer") -> None:
        print(
            f"repro-clara service listening on {bound.host}:{bound.port} ({description})",
            file=sys.stderr,
        )
        if args.ready_file:
            # Readiness notification: supervisors (and the CI smoke job)
            # poll this file to learn the bound address — essential with
            # --port 0, where the kernel picks the port.  Written via a
            # temp file + rename so a poller racing the write never reads
            # an empty (created-but-unwritten) file.
            ready = Path(args.ready_file)
            tmp = ready.with_name(ready.name + ".tmp")
            tmp.write_text(f"{bound.host} {bound.port}\n")
            os.replace(tmp, ready)

    try:
        # SIGTERM/SIGINT trigger the same graceful drain as the shutdown
        # op: stop admitting, answer stragglers with retriable "draining"
        # errors, give in-flight repairs --drain-timeout seconds.
        asyncio.run(server.serve(on_ready=announce, handle_signals=True))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        if args.ready_file:
            # A stale ready file would hand the next run's pollers a dead
            # (or, with --port 0, wrong) address.  unlink runs on *every*
            # exit path — clean drain, Ctrl-C, or a serve() crash.
            Path(args.ready_file).unlink(missing_ok=True)
    print("service stopped", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-clara",
        description="Clara (PLDI 2018) reproduction: clustering and repair of student programs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="reproduce Table 1 (MOOC evaluation)")
    _add_scale_arguments(p_table1)
    p_table1.add_argument("--no-autograder", action="store_true")
    p_table1.set_defaults(func=_cmd_table1)

    p_fig6 = sub.add_parser("fig6", help="reproduce Figure 6 (relative repair sizes)")
    _add_scale_arguments(p_fig6)
    p_fig6.set_defaults(func=_cmd_fig6)

    p_table2 = sub.add_parser("table2", help="reproduce Table 2 (user study)")
    _add_scale_arguments(p_table2)
    p_table2.set_defaults(func=_cmd_table2)

    p_list = sub.add_parser("list-problems", help="list the nine assignments")
    p_list.set_defaults(func=_cmd_list_problems)

    p_repair = sub.add_parser("repair", help="repair a single attempt from a file")
    p_repair.add_argument("--problem", required=True)
    p_repair.add_argument("--file", required=True)
    _add_scale_arguments(p_repair)
    p_repair.set_defaults(func=_cmd_repair)

    p_cluster = sub.add_parser(
        "cluster",
        help="build, persist and inspect cluster stores",
        description="Cluster a correct pool once and persist it, so batch "
        "runs skip re-clustering (see 'batch --clusters').",
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    p_cluster_build = cluster_sub.add_parser(
        "build", help="cluster a generated correct pool and save the store"
    )
    p_cluster_build.add_argument("--problem", required=True)
    p_cluster_build.add_argument(
        "--output", required=True, help="cluster store path (JSON)"
    )
    p_cluster_build.add_argument(
        "--correct", type=int, default=None, help="correct attempts to cluster"
    )
    p_cluster_build.add_argument("--seed", type=int, default=0)
    p_cluster_build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="threads clustering fingerprint buckets concurrently",
    )
    p_cluster_build.set_defaults(func=_cmd_cluster_build)

    p_cluster_info = cluster_sub.add_parser(
        "info", help="print header metadata and segment-index statistics of a store"
    )
    p_cluster_info.add_argument("store", help="cluster store file")
    p_cluster_info.set_defaults(func=_cmd_cluster_info)

    p_cluster_export = cluster_sub.add_parser(
        "export",
        help="export a store to the single-file v2 interchange document",
        description="Write the store's clusters as one self-contained format-2 "
        "JSON document — the byte-stable interchange form for archiving and "
        "diffing (a store migrated from v2 exports byte-identically to its "
        "original file; see docs/STORAGE.md).",
    )
    p_cluster_export.add_argument("store", help="cluster store file (format 3)")
    p_cluster_export.add_argument(
        "--output", required=True, help="v2 interchange document path"
    )
    p_cluster_export.set_defaults(func=_cmd_cluster_export)

    p_cluster_import = cluster_sub.add_parser(
        "import",
        help="import a v2 interchange document as an indexed (v3) store",
        description="Convert a format-2 single-file store or an 'export' "
        "document into the current indexed layout. Passing the same path as "
        "source and --output migrates a v2 store in place.",
    )
    p_cluster_import.add_argument("source", help="v2 store or interchange document")
    p_cluster_import.add_argument(
        "--output", required=True, help="indexed (v3) store path"
    )
    p_cluster_import.set_defaults(func=_cmd_cluster_import)

    p_batch = sub.add_parser(
        "batch",
        help="repair a corpus of attempts concurrently, emit a JSONL report",
        description="Repair a corpus of attempts concurrently and emit a JSONL "
        "report (one line per attempt plus a summary trailer). Exit codes: "
        "0 = report produced (per-attempt statuses, including failures, are "
        "in the report), 1 = no attempts found, 2 = usage error.",
    )
    p_batch.add_argument("--problem", required=True)
    p_batch.add_argument(
        "--attempts",
        required=True,
        help="directory of attempt files, a JSONL file with {id, source} lines, "
        "or a single source file",
    )
    p_batch.add_argument("--workers", type=int, default=4, help="worker threads")
    p_batch.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="shard the corpus across N worker subprocesses, each repairing "
        "its CFG-skeleton-aligned shard single-threaded with its own warm "
        "caches; the merged report and --profile counters are identical to "
        "a single-process run (requires --clusters; --workers is then "
        "ignored). Default 1 = repair in this process.",
    )
    p_batch.add_argument(
        "--budget", type=float, default=None, help="per-attempt budget in seconds"
    )
    p_batch.add_argument(
        "--output", default=None, help="JSONL report path (default: stdout)"
    )
    p_batch.add_argument(
        "--correct", type=int, default=None, help="correct attempts for clustering"
    )
    p_batch.add_argument(
        "--clusters",
        default=None,
        help="load clusters from a store built by 'cluster build' instead of "
        "re-clustering a generated pool (--correct/--seed are ignored)",
    )
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument(
        "--profile",
        action="store_true",
        help="emit a per-phase timing/counter breakdown (parse, exec, match, "
        "candidate-gen, TED, ILP) to results/local/batch_profile.json",
    )
    p_batch.add_argument(
        "--no-prefilter",
        action="store_true",
        help="disable the nearest-cluster retrieval prefilter (escape hatch; "
        "repairs are field-identical either way, only match counts differ)",
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the resident repair service (newline-delimited JSON over TCP)",
        description="Serve repair requests from warm per-problem engines. Each "
        "--clusters store names its problem; requests are one JSON object per "
        "line (see docs/SERVICE.md). Exit codes: 0 = clean shutdown (via the "
        "'shutdown' op or Ctrl-C), 2 = a store is missing, stale or names an "
        "unknown problem.",
    )
    p_serve.add_argument(
        "--clusters",
        action="append",
        required=True,
        help="cluster store built by 'cluster build'; repeat to serve several problems",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=9172, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="max repairs in flight before requests are rejected as overloaded",
    )
    p_serve.add_argument("--workers", type=int, default=4, help="repair worker threads")
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds (requests may override)",
    )
    p_serve.add_argument(
        "--ready-file",
        default=None,
        help="write 'host port' to this file once the socket is bound "
        "(readiness signal for supervisors; resolves --port 0)",
    )
    p_serve.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="serve through N supervised worker subprocesses (crash-isolated "
        "shards, one warm engine set per worker) instead of in-process; "
        "--workers then sets threads per worker (see docs/SERVICE.md)",
    )
    p_serve.add_argument(
        "--fault-plan",
        default=None,
        help="JSON fault-injection plan handed to every fleet worker "
        "(tests and soak benchmarks only; requires --fleet)",
    )
    p_serve.add_argument(
        "--kill-after",
        type=float,
        default=None,
        help="fleet only: kill a worker whose current request has been "
        "processing this many seconds (default 60)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds in-flight requests get to finish on SIGTERM/SIGINT/"
        "shutdown before connections are closed",
    )
    p_serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
