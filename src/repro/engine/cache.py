"""Memoization layer shared by the pipeline and the batch engine.

MOOC dumps are highly redundant: students resubmit unchanged code, copy each
other, and converge on the same handful of mistakes, so a naive loop over a
corpus re-executes identical programs and re-matches identical control-flow
graphs thousands of times.  This module provides :class:`RepairCaches`, one
object bundling three memo tables that remove that redundancy:

* a **trace/correctness cache** — executions of a program on a case set
  (Def. 3.5 traces, and the correctness predicate of §1, footnote 1) are
  keyed on :meth:`repro.model.program.Program.structure_key` plus a
  canonical key of the case set, so syntactically identical attempts run
  each test case exactly once across a whole batch;
* a **structural-match cache** — the location bijection of Def. 4.1 between
  an attempt and a cluster representative is computed at most once per
  (attempt, representative) pair, and shared between the pipeline's gate
  check and the per-cluster search of
  :func:`repro.core.repair.find_best_repair`;
* a **repair memo** — the full outcome of the cluster search for an attempt
  (status, selected :class:`~repro.core.repair.Repair`, feedback) keyed on
  the attempt fingerprint plus a pipeline-supplied context (pipeline
  identity, clustering version, budget, source positions), so duplicate
  attempts skip the ILP entirely; see
  :meth:`RepairCaches.repair_outcome` for what is deliberately *not*
  cached.

It additionally owns the three fast-path memos and threads them into the
layers that use them: a :class:`repro.ted.TedCache` (annotations + edit
distances, candidate costing), a
:class:`repro.interpreter.compile.CompileCache` (compiled expression
closures, trace execution and candidate screening) and a
:class:`repro.ilp.SolveCache` (ILP solutions keyed by canonical problem
fingerprint, threaded into :func:`repro.core.repair.repair_against_cluster`
via :func:`repro.ilp.solve_fast`).  All cache-routed executions run under
the profiler's ``exec`` phase; solves run under ``ilp``.

All tables are guarded by a single lock, making one :class:`RepairCaches`
instance safe to share across the worker threads of
:class:`repro.engine.batch.BatchRepairEngine`.  Constructing the caches with
``enabled=False`` turns every lookup into a miss without storing anything,
which is how the uncached baseline of ``benchmarks/test_batch_throughput.py``
is measured.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Callable, MutableMapping, Sequence

from ..clusterstore.fingerprint import Fingerprint, program_fingerprint
from ..core.inputs import InputCase, program_traces, trace_passes_case
from ..core.inputs import is_correct as _is_correct_uncached
from ..core.matching import structural_match
from ..core.profile import PhaseProfiler, profiled
from ..ilp.fastpath import SolveCache
from ..interpreter.compile import CompileCache
from ..model.program import Program
from ..model.trace import Trace
from ..retrieval import RetrievalStats
from ..ted import TedCache

__all__ = ["CacheStats", "RepairCaches", "case_set_key", "freeze_key"]


def freeze_key(value: object) -> object:
    """Convert ``value`` into an equivalent hashable form.

    Test-case payloads may contain lists and dicts (e.g. the ``derivatives``
    problem passes coefficient lists); cache keys must be hashable, so
    containers are converted recursively: lists/tuples become tuples, sets
    become sorted tuples, dicts become sorted item tuples.  Scalars pass
    through unchanged.
    """
    if isinstance(value, (list, tuple)):
        return tuple(freeze_key(item) for item in value)
    if isinstance(value, set):
        return tuple(sorted((freeze_key(item) for item in value), key=repr))
    if isinstance(value, dict):
        return tuple(
            (freeze_key(k), freeze_key(v)) for k, v in sorted(value.items(), key=repr)
        )
    return value


def _case_key(case: InputCase) -> tuple:
    return (
        freeze_key(case.args),
        freeze_key(case.stdin),
        case.checks_return(),
        freeze_key(case.expected_return) if case.checks_return() else None,
        case.checks_output(),
        freeze_key(case.expected_output) if case.checks_output() else None,
    )


def case_set_key(cases: Sequence[InputCase]) -> tuple:
    """Return a hashable canonical key for an ordered case set.

    Order matters: traces are cached as a list parallel to ``cases``, so two
    case sets with the same members in different orders get distinct keys.
    """
    return tuple(_case_key(case) for case in cases)


@dataclass
class CacheStats:
    """Hit/miss counters for the three memo tables.

    ``trace`` counts trace/correctness lookups, ``match`` counts
    structural-match lookups, ``repair`` counts whole-outcome lookups.  A
    lookup with caching disabled counts as a miss, so hit rates remain
    comparable between cached and uncached runs.
    """

    trace_hits: int = 0
    trace_misses: int = 0
    match_hits: int = 0
    match_misses: int = 0
    repair_hits: int = 0
    repair_misses: int = 0

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def trace_hit_rate(self) -> float:
        return self._rate(self.trace_hits, self.trace_misses)

    @property
    def match_hit_rate(self) -> float:
        return self._rate(self.match_hits, self.match_misses)

    @property
    def repair_hit_rate(self) -> float:
        return self._rate(self.repair_hits, self.repair_misses)

    def as_dict(self) -> dict[str, float]:
        """Flat dict of all counters and rates, for JSON reports."""
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "trace_hit_rate": self.trace_hit_rate,
            "match_hits": self.match_hits,
            "match_misses": self.match_misses,
            "match_hit_rate": self.match_hit_rate,
            "repair_hits": self.repair_hits,
            "repair_misses": self.repair_misses,
            "repair_hit_rate": self.repair_hit_rate,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            trace_hits=self.trace_hits,
            trace_misses=self.trace_misses,
            match_hits=self.match_hits,
            match_misses=self.match_misses,
            repair_hits=self.repair_hits,
            repair_misses=self.repair_misses,
        )

    # -- algebra ---------------------------------------------------------------

    _COUNTER_FIELDS = (
        "trace_hits",
        "trace_misses",
        "match_hits",
        "match_misses",
        "repair_hits",
        "repair_misses",
    )

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheStats":
        """Rebuild counters from an :meth:`as_dict` payload (rates ignored).

        The hit rates are derived values and are recomputed from the
        counters, so ``CacheStats.from_dict(stats.as_dict())`` round-trips
        exactly; this is how per-worker cache deltas cross the process
        boundary in :mod:`repro.engine.parallel`.
        """
        return cls(**{name: int(payload.get(name, 0)) for name in cls._COUNTER_FIELDS})

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new snapshot with both operands' counters summed.

        Commutative, with ``CacheStats()`` as the identity — folding any
        permutation of per-worker deltas yields the same totals (and hence
        the same derived hit rates).  Neither operand is mutated.
        """
        return CacheStats(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in self._COUNTER_FIELDS
            }
        )

    def diff(self, other: "CacheStats") -> "CacheStats":
        """Return a new snapshot holding ``self - other`` per counter.

        The inverse of :meth:`merge`; the batch engine uses it to isolate
        the counters accumulated *during* one run from whatever the shared
        caches saw before it started.
        """
        return CacheStats(
            **{
                name: getattr(self, name) - getattr(other, name)
                for name in self._COUNTER_FIELDS
            }
        )


@dataclass
class RepairCaches:
    """Shared memoization for traces, correctness, matching and repairs.

    Args:
        enabled: When ``False`` every lookup misses and nothing is stored;
            computations still run, making this the switch for uncached
            baselines and for callers that mutate programs in place.

    One instance is owned by each :class:`repro.core.pipeline.Clara` and is
    shared by every worker thread of a batch run.  All public methods are
    thread-safe.
    """

    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    #: Tree-edit-distance memo (annotations + pair distances) threaded into
    #: candidate generation by :func:`repro.core.repair.find_best_repair`.
    #: Created in ``__post_init__`` so its ``enabled`` flag follows the
    #: caches' — an uncached baseline also measures uncached TED.
    ted: TedCache | None = None
    #: Compiled-expression memo (closures per interned expression, see
    #: :mod:`repro.interpreter.compile`) threaded into trace execution and
    #: candidate screening.  Created in ``__post_init__``; its ``enabled``
    #: flag follows the caches' so uncached baselines recompile per use.
    compiled: CompileCache | None = None
    #: ILP solve memo (optimal solutions and proven-infeasible verdicts per
    #: canonical problem fingerprint, see :mod:`repro.ilp.fastpath`)
    #: threaded into the repair selection solve.  Created in
    #: ``__post_init__``; its ``enabled`` flag follows the caches' so
    #: uncached baselines re-solve every instance.
    solve: SolveCache | None = None
    #: Nearest-cluster prefilter counters (:mod:`repro.retrieval`), filled
    #: by the pipeline's structural gate and surfaced through ``batch
    #: --profile`` and the service ``stats`` op.  Counters, not a cache:
    #: they accumulate regardless of ``enabled`` (disabling the caches
    #: must not silently disable prefilter accounting).
    retrieval: RetrievalStats | None = None
    #: Optional per-phase profiler (``repro-clara batch --profile``); when
    #: attached, parse/match/candidate-gen/TED/ILP work is timed and counted.
    profiler: PhaseProfiler | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, init=False, repr=False)
    _program_keys: MutableMapping[Program, tuple] = field(
        default_factory=weakref.WeakKeyDictionary, init=False, repr=False
    )
    _traces: dict[tuple, list[Trace]] = field(default_factory=dict, init=False, repr=False)
    _correct: dict[tuple, bool] = field(default_factory=dict, init=False, repr=False)
    _matches: dict[tuple, dict[int, int] | None] = field(default_factory=dict, init=False, repr=False)
    _fingerprints: dict[tuple, Fingerprint] = field(default_factory=dict, init=False, repr=False)
    _repairs: dict[tuple, tuple] = field(default_factory=dict, init=False, repr=False)
    #: Single-flight guard: keys whose repair is currently being computed,
    #: mapped to an event concurrent duplicates wait on.
    _repair_inflight: dict[tuple, threading.Event] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.ted is None:
            self.ted = TedCache(enabled=self.enabled)
        if self.compiled is None:
            self.compiled = CompileCache(enabled=self.enabled)
        if self.solve is None:
            self.solve = SolveCache(enabled=self.enabled)
        if self.retrieval is None:
            self.retrieval = RetrievalStats()

    # -- keys ------------------------------------------------------------------

    def program_key(self, program: Program) -> tuple:
        """Return ``program.structure_key()``, memoized per program object.

        Programs hash by identity; the memo is a ``WeakKeyDictionary`` so it
        never outlives the programs themselves — a long-lived engine grading
        an unbounded submission stream does not pin every parsed attempt in
        memory.  Callers that mutate a program after keying it must bypass
        the caches (see ``enabled``).
        """
        if not self.enabled:
            return program.structure_key()
        with self._lock:
            key = self._program_keys.get(program)
        if key is None:
            # Fingerprinting walks the whole program; doing it outside the
            # lock keeps other workers from serializing on it.  A racing
            # duplicate computation is benign: setdefault keeps one winner.
            key = program.structure_key()
            with self._lock:
                key = self._program_keys.setdefault(program, key)
        return key

    # -- traces and correctness -------------------------------------------------

    def traces(self, program: Program, cases: Sequence[InputCase]) -> list[Trace]:
        """Execute ``program`` on ``cases`` (Def. 3.5), memoized.

        Returns the same list object on a hit; callers must treat it as
        immutable.  Only default execution limits are supported — callers
        needing custom :class:`~repro.interpreter.executor.ExecutionLimits`
        should call :func:`repro.core.inputs.program_traces` directly.
        """
        if not self.enabled:
            with self._lock:
                self.stats.trace_misses += 1
            return self._execute(program, cases)
        key = (self.program_key(program), case_set_key(cases))
        with self._lock:
            cached = self._traces.get(key)
            if cached is not None:
                self.stats.trace_hits += 1
                return cached
            self.stats.trace_misses += 1
        traces = self._execute(program, cases)
        with self._lock:
            self._traces.setdefault(key, traces)
        return traces

    def _execute(self, program: Program, cases: Sequence[InputCase]) -> list[Trace]:
        """Run the compiled executor, attributed to the ``exec`` phase.

        All engine-routed executions funnel through here, so ``batch
        --profile`` sees execution time under ``exec`` and the number of
        location steps taken under the ``exec_steps`` counter.
        """
        with profiled(self.profiler, "exec"):
            traces = program_traces(program, cases, compile_cache=self.compiled)
        if self.profiler is not None:
            self.profiler.count("exec_steps", sum(len(trace) for trace in traces))
        return traces

    def is_correct(self, program: Program, cases: Sequence[InputCase]) -> bool:
        """Correctness predicate (§1, footnote 1) on top of cached traces.

        Equivalent to :func:`repro.core.inputs.is_correct`; on a miss it
        executes *all* cases (to populate the trace cache) instead of
        stopping at the first failure.
        """
        if not self.enabled:
            with self._lock:
                self.stats.trace_misses += 1
            # No trace cache to populate, so use the short-circuiting core
            # predicate — the pre-engine behaviour uncached baselines reproduce.
            return _is_correct_uncached(program, cases, compile_cache=self.compiled)
        key = (self.program_key(program), case_set_key(cases))
        with self._lock:
            if key in self._correct:
                self.stats.trace_hits += 1
                return self._correct[key]
        traces = self.traces(program, cases)
        verdict = all(
            trace_passes_case(trace, case) for trace, case in zip(traces, cases)
        )
        with self._lock:
            self._correct[key] = verdict
        return verdict

    def fingerprint(
        self,
        program: Program,
        cases: Sequence[InputCase],
        traces: Sequence[Trace] | None = None,
    ) -> Fingerprint:
        """Matching-invariant fingerprint of ``program`` on ``cases``, memoized.

        Used by pruned clustering (:func:`repro.core.clustering.cluster_programs`)
        to bucket programs; a duplicate correct solution is fingerprinted
        once per case set.  ``traces`` may be passed when the caller already
        executed the program (clustering does), avoiding a trace lookup.
        """
        if not self.enabled:
            if traces is None:
                traces = self.traces(program, cases)
            return program_fingerprint(program, traces)
        key = (self.program_key(program), case_set_key(cases))
        with self._lock:
            cached = self._fingerprints.get(key)
            if cached is not None:
                return cached
        if traces is None:
            traces = self.traces(program, cases)
        fingerprint = program_fingerprint(program, traces)
        with self._lock:
            fingerprint = self._fingerprints.setdefault(key, fingerprint)
        return fingerprint

    # -- structural matching ------------------------------------------------------

    def structural_match(self, query: Program, base: Program) -> dict[int, int] | None:
        """Location bijection of Def. 4.1, memoized per (query, base) pair.

        This is the single entry point used both by the pipeline's
        "any cluster with the same control flow?" gate and by the repair
        search, so each (attempt, representative) pair is matched exactly
        once.  The returned mapping is shared on hits and must not be
        mutated.
        """
        if not self.enabled:
            with self._lock:
                self.stats.match_misses += 1
            with profiled(self.profiler, "match"):
                return structural_match(query, base)
        key = (self.program_key(query), self.program_key(base))
        with self._lock:
            if key in self._matches:
                self.stats.match_hits += 1
                return self._matches[key]
            self.stats.match_misses += 1
        with profiled(self.profiler, "match"):
            result = structural_match(query, base)
        with self._lock:
            self._matches.setdefault(key, result)
        return result

    # -- whole-repair memo ---------------------------------------------------------

    def repair_outcome(
        self,
        program: Program,
        context_key: tuple,
        compute: Callable[[], tuple],
        store_if: Callable[[tuple], bool] | None = None,
    ) -> tuple:
        """Memoize the cluster-search outcome for one attempt.

        Args:
            program: The parsed incorrect attempt.
            context_key: Everything besides the program's structure that
                determines the result.  The owning pipeline passes its
                identity token (one cache may serve several pipelines), its
                clustering version, solver name, budget, feedback threshold
                and the attempt's source-position signature (line numbers
                feed into feedback, but are deliberately absent from
                ``structure_key``).
            compute: Zero-argument callable producing the value on a miss.
            store_if: Optional predicate over the computed value; when it
                returns ``False`` the value is passed through but *not*
                memoized.  The pipeline uses this to keep load-dependent
                ``timeout`` outcomes from becoming sticky for all future
                duplicates of an attempt.

        The cached value is whatever ``compute`` returns (the pipeline stores
        ``(status, repair, feedback, detail)``); duplicate attempts therefore
        share ``Repair``/``Feedback`` objects, which are treated as immutable
        after construction.

        Lookups are *single-flight*: when worker threads hit the same key
        concurrently, one computes while the rest wait for its result, so a
        burst of identical submissions costs one ILP solve rather than one
        per worker.  If the computing thread raises (or declines to store),
        a waiter takes over.
        """
        if not self.enabled:
            with self._lock:
                self.stats.repair_misses += 1
            return compute()
        key = (self.program_key(program), context_key)
        while True:
            with self._lock:
                if key in self._repairs:
                    self.stats.repair_hits += 1
                    return self._repairs[key]
                event = self._repair_inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._repair_inflight[key] = event
                    self.stats.repair_misses += 1
                    break
            # Another thread owns the computation; wait, then re-check (the
            # owner may have failed, in which case this thread takes over).
            event.wait()
        try:
            value = compute()
            if store_if is None or store_if(value):
                with self._lock:
                    self._repairs[key] = value
            return value
        finally:
            with self._lock:
                self._repair_inflight.pop(key, None)
            event.set()

    # -- maintenance ---------------------------------------------------------------

    def drop_repair_memos(self, token: object) -> int:
        """Evict memoized repair outcomes belonging to one pipeline identity.

        ``token`` is a pipeline's memo token (the first element of every
        repair ``context_key`` it stores).  Called when a pipeline is
        retired — e.g. a service hot reload replacing one generation of
        engine with the next — so a long-lived shared cache does not
        accumulate unreachable entries for pipelines that no longer exist.
        Returns the number of entries evicted.
        """
        with self._lock:
            dead = [key for key in self._repairs if key[1][0] is token]
            for key in dead:
                del self._repairs[key]
            return len(dead)

    def clear(self) -> None:
        """Drop all cached entries (counters are preserved)."""
        with self._lock:
            self._program_keys.clear()
            self._traces.clear()
            self._correct.clear()
            self._matches.clear()
            self._fingerprints.clear()
            self._repairs.clear()
        self.ted.clear()
        self.compiled.clear()
        self.solve.clear()

    def entry_counts(self) -> dict[str, int]:
        """Number of stored entries per table (for reports and debugging)."""
        with self._lock:
            counts = {
                "traces": len(self._traces),
                "correct": len(self._correct),
                "matches": len(self._matches),
                "fingerprints": len(self._fingerprints),
                "repairs": len(self._repairs),
            }
        counts.update(self.ted.entry_counts())
        counts.update(self.compiled.entry_counts())
        counts.update(self.solve.entry_counts())
        return counts
