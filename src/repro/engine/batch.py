"""Batch repair over a corpus of attempts (the engine's public face).

The paper evaluates Clara one attempt at a time; real deployments (the tool
ran on MITx/edX dumps with thousands of submissions, §6.1) need to chew
through whole corpora.  :class:`BatchRepairEngine` wraps a configured
:class:`repro.core.pipeline.Clara` and repairs many attempts through a
``concurrent.futures`` thread pool, sharing the pipeline's
:class:`repro.engine.cache.RepairCaches` between workers so that duplicate
attempts — the common case in MOOC data — are parsed, executed, matched and
repaired once.

Results are returned as a :class:`BatchReport`: per-attempt
:class:`BatchRecord` rows in submission order (independent of worker
scheduling) plus aggregate statistics — status histogram, latency
percentiles, throughput, and cache hit rates.  The report serialises to
JSONL for downstream analysis (see the ``batch`` subcommand of
:mod:`repro.cli`).

Single-attempt repair is the batch-size-1 case:
``Clara.repair_source(src)`` simply runs an engine over ``[src]``.

For multi-core corpus runs, :mod:`repro.engine.parallel` shards a batch
across worker *processes* (each wrapping this engine single-threaded) and
merges the per-shard reports back into one :class:`BatchReport`.
"""

from __future__ import annotations

import json
import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from .cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.pipeline import Clara, RepairOutcome

__all__ = ["BatchAttempt", "BatchRecord", "BatchReport", "BatchRepairEngine"]

#: Default number of worker threads.
DEFAULT_WORKERS = 4


@dataclass(frozen=True)
class BatchAttempt:
    """One submission in a batch: an identifier plus its source text."""

    attempt_id: str
    source: str


@dataclass
class BatchRecord:
    """Per-attempt row of a :class:`BatchReport`.

    Mirrors the fields of :class:`repro.core.pipeline.RepairOutcome` plus the
    repair metrics the evaluation tables report (cost, relative size —
    Fig. 6 —, number of modified expressions — Fig. 7).
    """

    attempt_id: str
    status: str
    elapsed: float
    detail: str = ""
    cost: float | None = None
    relative_size: float | None = None
    num_modified: int | None = None
    feedback: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        """Plain-dict form, one JSONL line of the batch report."""
        return {
            "attempt_id": self.attempt_id,
            "status": self.status,
            "elapsed": round(self.elapsed, 6),
            "detail": self.detail,
            "cost": self.cost,
            "relative_size": self.relative_size,
            "num_modified": self.num_modified,
            "feedback": self.feedback,
        }


@dataclass
class BatchReport:
    """Outcome of one batch run.

    Attributes:
        records: One row per attempt, in submission order.
        outcomes: The underlying pipeline outcomes, parallel to ``records``
            (kept for callers that need the repaired programs or feedback
            objects; they are omitted from the JSONL serialisation).
        wall_time: End-to-end wall-clock duration of the run, in seconds.
        workers: Worker-thread count the batch ran with.
        cache_stats: Snapshot of the cache counters accumulated *during*
            this run (pre-existing counts are subtracted out).
    """

    records: list[BatchRecord]
    outcomes: list["RepairOutcome"]
    wall_time: float
    workers: int
    cache_stats: CacheStats
    #: Merged per-phase/cache/retrieval/paging counter sections attached by
    #: :class:`repro.engine.parallel.ProcessBatchEngine` (the same shape
    #: :meth:`repro.core.pipeline.Clara.counters_payload` produces);
    #: ``None`` for in-process runs, where the CLI reads the sections off
    #: the live pipeline instead.  Not part of the JSONL serialisation.
    profile: dict | None = None

    # -- aggregates -------------------------------------------------------------

    def status_histogram(self) -> dict[str, int]:
        """Attempt count per terminal status, sorted by frequency."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def latency_percentile(self, q: float) -> float:
        """Per-attempt latency percentile ``q`` in [0, 100], in seconds."""
        if not self.records:
            return 0.0
        latencies = sorted(record.elapsed for record in self.records)
        if len(latencies) == 1:
            return latencies[0]
        quantiles = statistics.quantiles(latencies, n=100, method="inclusive")
        index = min(98, max(0, round(q) - 1))
        return quantiles[index]

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(95)

    @property
    def attempts_per_second(self) -> float:
        """Throughput of the whole run (0 when the run was instantaneous)."""
        if self.wall_time <= 0:
            return 0.0
        return len(self.records) / self.wall_time

    def summary(self) -> dict:
        """Aggregate statistics as a plain dict (the JSONL trailer line)."""
        return {
            "attempts": len(self.records),
            "workers": self.workers,
            "wall_time": round(self.wall_time, 6),
            "attempts_per_second": round(self.attempts_per_second, 3),
            "p50_latency": round(self.p50_latency, 6),
            "p95_latency": round(self.p95_latency, 6),
            "status_histogram": self.status_histogram(),
            "cache": self.cache_stats.as_dict(),
        }

    # -- serialisation ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON line per attempt followed by a ``{"summary": ...}`` line."""
        lines = [json.dumps(record.to_json()) for record in self.records]
        lines.append(json.dumps({"summary": self.summary()}))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str | Path) -> Path:
        """Write :meth:`to_jsonl` to ``path`` (UTF-8) and return it.

        The encoding is explicit: report fields (attempt ids, failure
        details, feedback) may carry non-ASCII text from student sources,
        and a platform-default-encoded report would not round-trip on
        machines whose locale is not UTF-8.
        """
        path = Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path


class BatchRepairEngine:
    """Repair a corpus of attempts concurrently against one pipeline.

    Args:
        clara: A configured pipeline whose clusters are already built via
            ``add_correct_sources``.  Its caches are shared across workers;
            its clusters are treated as read-only for the duration of a run.
        workers: Worker-thread count.  ``1`` runs inline on the calling
            thread (no pool), which is what ``Clara.repair_source`` uses.
        budget: Per-attempt wall-clock budget in seconds, overriding the
            pipeline's ``timeout`` when given.  Attempts exceeding it are
            reported with status ``timeout``.

    The worker pool is made of *threads sharing one pipeline*: every worker
    sees the same cluster state and the same :class:`RepairCaches`, which is
    what deduplicates MOOC-shaped corpora (and what the resident service
    relies on for warm duplicate hits).  The repair hot path is pure Python
    and releases no GIL, so threads buy cache sharing and I/O-free
    scheduling — not CPU parallelism.  To put more *cores* on a corpus, use
    :class:`repro.engine.parallel.ProcessBatchEngine` (``batch --processes
    N``): it shards the corpus across spawned worker processes, each running
    this engine single-threaded over shared-nothing caches, and merges the
    per-shard reports and counters deterministically.

    Thread safety: :meth:`run` may be called repeatedly (each call snapshots
    cache counters independently), and several engines may share one
    ``Clara``; what must not happen concurrently is mutating the pipeline's
    clusters (``add_correct_sources``/``load_clusters``) while a run is in
    flight — the service layer swaps in a whole new engine instead
    (:meth:`repro.service.service.ProblemRuntime.reload`).
    """

    def __init__(
        self,
        clara: "Clara",
        *,
        workers: int = DEFAULT_WORKERS,
        budget: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.clara = clara
        self.workers = workers
        self.budget = budget

    @classmethod
    def from_store(
        cls,
        clusters_path: str | Path,
        clara: "Clara",
        *,
        workers: int = DEFAULT_WORKERS,
        budget: float | None = None,
        lazy: bool = True,
        processes: int = 1,
    ) -> "BatchRepairEngine":
        """Build an engine from a persisted cluster store.

        Attaches ``clusters_path`` to ``clara`` (validating format version,
        case signature and language) and wraps it.  This is the "index once,
        query many" entry point: every batch worker process of a deployment
        opens the same store instead of re-clustering the correct pool on
        start-up.

        By default the store is opened **header-only** and segments page in
        on demand as attempts are repaired
        (:meth:`repro.core.pipeline.Clara.attach_lazy_clusters`); outcomes
        are identical to an eager load — skeleton-mismatched segments
        provably contain no repair candidate — and the paging counters show
        up in ``batch --profile`` output.  Pass ``lazy=False`` to read every
        segment up front (:meth:`repro.core.pipeline.Clara.load_clusters`).

        With ``processes > 1`` this returns a
        :class:`repro.engine.parallel.ProcessBatchEngine` instead: the
        corpus is sharded across that many spawned worker processes, each
        opening the store header-only with its own warm caches and
        repairing its shard single-threaded.  ``clara`` then only supplies
        configuration (language check, prefilter settings, attached
        profiler) — it is *not* attached to the store, and ``workers`` /
        ``lazy`` are ignored (each worker process is single-threaded and
        lazy by construction).  The store must name a registered problem,
        as the workers rebuild their pipelines from the dataset registry.
        """
        if processes > 1:
            from .parallel import ProcessBatchEngine

            return ProcessBatchEngine(
                clusters_path,
                processes=processes,
                budget=budget,
                profile=clara.caches.profiler is not None,
                retrieval_prefilter=clara.retrieval_prefilter,
                retrieval_top_k=clara.retrieval_top_k,
                language=clara.language,
            )
        if lazy:
            from ..clusterstore.store import open_lazy

            clara.attach_lazy_clusters(open_lazy(clusters_path, cases=clara.cases))
        else:
            clara.load_clusters(clusters_path)
        return cls(clara, workers=workers, budget=budget)

    # -- public API --------------------------------------------------------------

    def run(
        self,
        attempts: Iterable[str | BatchAttempt],
        *,
        budget: float | None = None,
    ) -> BatchReport:
        """Repair every attempt and return the aggregated report.

        Accepts raw source strings (auto-numbered ``attempt-0``, ...) or
        :class:`BatchAttempt` objects.  Records are returned in submission
        order regardless of completion order, and a batch of size 1 produces
        byte-identical results to a sequential ``repair_source`` call.

        Args:
            attempts: The corpus to repair.
            budget: Per-attempt budget for *this run only*, overriding the
                engine-wide ``budget`` when given (the service layer passes
                each request's deadline through here).
        """
        items = self._normalise(attempts)
        effective_budget = self.budget if budget is None else budget
        before = self.clara.caches.stats.snapshot()
        started = time.perf_counter()
        if self.workers == 1 or len(items) <= 1:
            outcomes = [self._repair_one(item, effective_budget) for item in items]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(
                    pool.map(lambda item: self._repair_one(item, effective_budget), items)
                )
        wall_time = time.perf_counter() - started
        after = self.clara.caches.stats.snapshot()
        return BatchReport(
            records=[
                self._record(item, outcome) for item, outcome in zip(items, outcomes)
            ],
            outcomes=outcomes,
            wall_time=wall_time,
            workers=self.workers,
            cache_stats=after.diff(before),
        )

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _normalise(attempts: Iterable[str | BatchAttempt]) -> list[BatchAttempt]:
        items: list[BatchAttempt] = []
        for index, attempt in enumerate(attempts):
            if isinstance(attempt, BatchAttempt):
                items.append(attempt)
            else:
                items.append(BatchAttempt(attempt_id=f"attempt-{index}", source=attempt))
        return items

    def _repair_one(self, item: BatchAttempt, budget: float | None) -> "RepairOutcome":
        started = time.perf_counter()
        try:
            return self.clara._repair_attempt(item.source, budget=budget)
        except Exception as exc:  # noqa: BLE001 - crash isolation per attempt
            # Store-staleness must keep propagating: the service layer
            # transparently re-runs those on the current store generation.
            from ..clusterstore.store import ClusterStoreError
            from ..core.pipeline import RepairOutcome, RepairStatus

            if isinstance(exc, ClusterStoreError):
                raise
            return RepairOutcome(
                status=RepairStatus.INTERNAL_ERROR,
                detail=f"{type(exc).__name__}: {exc}",
                elapsed=time.perf_counter() - started,
            )

    @staticmethod
    def _record(item: BatchAttempt, outcome: "RepairOutcome") -> BatchRecord:
        record = BatchRecord(
            attempt_id=item.attempt_id,
            status=outcome.status,
            elapsed=outcome.elapsed,
            detail=outcome.detail,
        )
        if outcome.repair is not None:
            record.cost = outcome.repair.cost
            record.relative_size = outcome.repair.relative_size()
            record.num_modified = outcome.repair.num_modified_expressions
        if outcome.feedback is not None:
            record.feedback = [entry.message for entry in outcome.feedback.items]
        return record
