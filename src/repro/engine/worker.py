"""Batch worker subprocess: repair one shard, stream NDJSON records back.

Spawned by :class:`repro.engine.parallel.ProcessBatchEngine` as
``python -m repro.engine.worker --store ... --shard N``.  The protocol is
newline-delimited JSON over the standard pipes, both ends explicitly
UTF-8:

* stdin — one ``{"id", "attempt_id", "source"}`` object per attempt of
  this shard, then EOF;
* stdout — one ``{"id", "record"}`` object per attempt as soon as it is
  repaired (``record`` is :meth:`repro.engine.batch.BatchRecord.to_json`),
  flushed per line so a crashed worker loses only unfinished attempts;
  then one final ``{"counters", "cache"}`` frame carrying the pipeline's
  :meth:`repro.core.pipeline.Clara.counters_payload` and the accumulated
  trace/match/repair cache delta.

The worker rebuilds its pipeline from the dataset registry (the store
header names the problem), opens the store **header-only** and repairs
single-threaded — so its counters are deterministic for its shard, the
property the parent's merge rests on.  Tracebacks go to stderr, which the
parent attaches to crash-fill records.

Fault injection: ``REPRO_BATCH_WORKER_CRASH=<shard>:<after>`` makes the
worker owning ``<shard>`` hard-exit with code 23 after streaming
``<after>`` records — the hook behind the crash-surfacing tests.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

__all__ = ["main"]


def _crash_after(shard: int) -> int | None:
    """Records to emit before hard-exiting, per the fault-injection env var."""
    from .parallel import CRASH_ENV

    spec = os.environ.get(CRASH_ENV, "")
    if not spec:
        return None
    crash_shard, _, after = spec.partition(":")
    try:
        if int(crash_shard) != shard:
            return None
        return int(after)
    except ValueError:
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.engine.worker",
        description="Repair one shard of a process-parallel batch run.",
    )
    parser.add_argument("--store", required=True, help="cluster store path")
    parser.add_argument(
        "--shard", type=int, required=True, help="shard index (for diagnostics)"
    )
    parser.add_argument(
        "--budget", type=float, default=None, help="per-attempt budget in seconds"
    )
    parser.add_argument(
        "--top-k", type=int, default=None, help="retrieval prefilter head size"
    )
    parser.add_argument(
        "--profile", action="store_true", help="attach a per-phase profiler"
    )
    parser.add_argument(
        "--no-prefilter", action="store_true", help="disable the retrieval prefilter"
    )
    args = parser.parse_args(argv)

    # The protocol is UTF-8 on both pipes regardless of locale: attempt
    # sources and failure details may carry non-ASCII text.
    sys.stdin.reconfigure(encoding="utf-8")
    sys.stdout.reconfigure(encoding="utf-8")

    from ..clusterstore.store import read_store_header
    from ..core.pipeline import Clara
    from ..core.profile import PhaseProfiler
    from ..datasets.problems import get_problem
    from ..retrieval.index import DEFAULT_TOP_K
    from .batch import BatchAttempt, BatchRepairEngine
    from .cache import CacheStats, RepairCaches

    header = read_store_header(args.store)
    if not header.problem:
        print(f"store {args.store} names no problem", file=sys.stderr)
        return 2
    spec = get_problem(header.problem)
    caches = RepairCaches(
        profiler=PhaseProfiler() if args.profile else None,
    )
    clara = Clara(
        cases=spec.cases,
        language=spec.language,
        entry=spec.entry,
        retrieval_prefilter=not args.no_prefilter,
        retrieval_top_k=DEFAULT_TOP_K if args.top_k is None else args.top_k,
        caches=caches,
    )
    engine = BatchRepairEngine.from_store(
        args.store, clara, workers=1, budget=args.budget
    )

    crash_after = _crash_after(args.shard)
    cache_total = CacheStats()
    emitted = 0
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        request = json.loads(line)
        report = engine.run(
            [BatchAttempt(attempt_id=request["attempt_id"], source=request["source"])]
        )
        cache_total = cache_total.merge(report.cache_stats)
        print(
            json.dumps({"id": request["id"], "record": report.records[0].to_json()}),
            flush=True,
        )
        emitted += 1
        if crash_after is not None and emitted >= crash_after:
            # Simulate a hard death (no cleanup, no final frame) so tests
            # exercise the parent's crash-fill path, not a graceful exit.
            os._exit(23)
    print(
        json.dumps(
            {"counters": clara.counters_payload(), "cache": cache_total.as_dict()}
        ),
        flush=True,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
