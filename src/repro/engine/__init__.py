"""Batch repair engine: resource-aware corpus processing on top of the core.

The core (:mod:`repro.core`) reproduces the paper's per-attempt pipeline;
this package scales it to corpora.  It contributes two pieces:

* :mod:`repro.engine.cache` — :class:`RepairCaches`, the shared memoization
  of traces, correctness checks, structural matches and whole repairs;
* :mod:`repro.engine.batch` — :class:`BatchRepairEngine` and
  :class:`BatchReport`, concurrent repair of many attempts with per-attempt
  budgets and aggregate statistics;
* :mod:`repro.engine.parallel` — :class:`ProcessBatchEngine`, the
  multi-core path: skeleton-aligned shards across worker subprocesses
  (:mod:`repro.engine.worker`) with deterministic counter merging.

The dependency direction is ``engine → core``; the one place the core calls
back (``Clara.repair_source`` delegating to a batch of size 1) imports this
package lazily to keep the layering acyclic.
"""

from .batch import BatchAttempt, BatchRecord, BatchRepairEngine, BatchReport
from .cache import CacheStats, RepairCaches, case_set_key, freeze_key
from .parallel import ProcessBatchEngine

__all__ = [
    "BatchAttempt",
    "BatchRecord",
    "BatchRepairEngine",
    "BatchReport",
    "CacheStats",
    "ProcessBatchEngine",
    "RepairCaches",
    "case_set_key",
    "freeze_key",
]
