"""Process-parallel batch repair with deterministic counter merging.

:class:`repro.engine.batch.BatchRepairEngine` scales a corpus across
*threads*, which share one pipeline's caches but — the repair hot path
being pure Python that releases no GIL — never more than one core.
:class:`ProcessBatchEngine` is the multi-core path behind ``batch
--processes N``: it shards a corpus across N spawned worker subprocesses
(:mod:`repro.engine.worker`), each of which opens the cluster store
header-only with its own warm shared-nothing
:class:`~repro.engine.cache.RepairCaches` and repairs its shard
single-threaded, streaming per-attempt records back over a pipe.  The
parent merges the shard streams into one
:class:`~repro.engine.batch.BatchReport` in submission order and folds
every per-worker counter section by commutative sum, so ``--profile``
output is byte-stable regardless of process count.

Why the merged counters *equal* a single-process run (not merely sum to
something plausible): shards are planned by **CFG-skeleton digest**
(:func:`shard_key`).  Two attempts land on the same worker whenever their
skeletons are equal, i.e. whenever they are structurally matchable at all
(Def. 4.1) — so every trace/match/repair memo key, every structural-match
probe and every store segment a worker touches is local to the skeleton
classes it owns.  Duplicate attempts hit the same warm cache they would
have hit in one process; a segment pages in on exactly one worker, namely
the one owning its skeleton; no cache entry or match that a single
process would have shared is ever split across two processes.  Summing
per-shard counters therefore reproduces the single-process values
exactly for the sections built from class-local work: the profiler's
``phases.counters``, the trace/match/repair ``cache`` hit/miss counters,
the ``retrieval`` prefilter counters and the ``store_paging`` section
(totals asserted equal across workers, loaded counts summed).  The
expression-level TED/compile/solve memos *can* legitimately share entries
across skeleton classes (the same sub-expression appears in two shapes),
so those sections are merged by the same sum but carry no identity
guarantee — ``benchmarks/test_parallel_batch.py`` records which sections
are provably identical.

Determinism also does not depend on ``PYTHONHASHSEED``: shard planning
uses SHA-256 skeleton digests and CRC-32 of the source bytes (for
unparseable attempts) with first-appearance round-robin assignment, and
each worker is single-threaded, so per-shard record streams and counters
are reproducible run to run.

A worker that dies mid-shard (crash, OOM kill) does not hang the merge:
its already-streamed records are kept, and every unanswered attempt of
that shard is reported as a structured ``internal-error`` record naming
the shard and exit code.  The dead worker's final counters frame is
simply absent from the merge.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..clusterstore.segments import skeleton_digest
from ..clusterstore.store import StoreHeader, read_store_header
from ..core.profile import PhaseProfiler
from ..retrieval.index import DEFAULT_TOP_K, RetrievalStats
from .batch import BatchAttempt, BatchRecord, BatchRepairEngine, BatchReport
from .cache import CacheStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.pipeline import RepairOutcome

__all__ = ["ProcessBatchEngine", "shard_key", "shard_plan", "merge_store_paging"]

#: Environment variable for fault-injection tests: ``"<shard>:<after>"``
#: makes the worker owning that shard hard-exit (``os._exit``) after
#: streaming ``after`` records, exercising the parent's crash-fill path.
CRASH_ENV = "REPRO_BATCH_WORKER_CRASH"

#: Exit code the crash hook uses; distinctive enough that a test can tell
#: an injected crash from an import error (1) or a usage error (2).
CRASH_EXIT_CODE = 23


# -- shard planning ----------------------------------------------------------------


def shard_key(source: str, *, language: str, entry: str | None) -> str:
    """Deterministic equivalence-class key for shard planning.

    Parseable attempts key on their CFG-skeleton digest — the necessary
    condition for structural matching (Def. 4.1), hence the boundary along
    which caches and store segments partition.  Unparseable attempts can
    never share cache entries beyond the parse itself, so they key on a
    CRC-32 of their bytes, which keeps byte-identical duplicates together
    (one parse failure per distinct source, same as a single process).
    Stable across processes, platforms and ``PYTHONHASHSEED``.
    """
    from ..frontend import parse_source

    try:
        program = parse_source(source, language=language, entry=entry)
    except Exception:  # noqa: BLE001 - any frontend failure → content key
        return "unparsed:%08x" % (zlib.crc32(source.encode("utf-8")) & 0xFFFFFFFF)
    return "skeleton:" + skeleton_digest(program)


def shard_plan(
    attempts: Sequence[BatchAttempt],
    processes: int,
    *,
    language: str,
    entry: str | None,
) -> list[list[int]]:
    """Partition attempt indices into ``processes`` skeleton-aligned shards.

    Every attempt of one equivalence class (equal :func:`shard_key`) lands
    on one shard; classes are dealt round-robin in first-appearance order,
    which balances class counts without consulting anything
    nondeterministic.  Some shards may be empty when there are fewer
    classes than processes.  Thread safety: pure function.
    """
    assignment: dict[str, int] = {}
    shards: list[list[int]] = [[] for _ in range(processes)]
    for index, attempt in enumerate(attempts):
        key = shard_key(attempt.source, language=language, entry=entry)
        if key not in assignment:
            assignment[key] = len(assignment) % processes
        shards[assignment[key]].append(index)
    return shards


# -- counter-section merging ---------------------------------------------------------


def merge_store_paging(sections: Iterable[dict | None]) -> dict | None:
    """Fold per-worker ``store_paging`` sections into the global view.

    Every worker opens the same store, so the ``*_total`` counters must
    agree (asserted — a mismatch means workers saw different stores, which
    would invalidate the whole merge).  The ``*_loaded`` counters sum:
    skeleton sharding pages each segment into exactly one worker, so the
    sum equals the single-process loaded count, and ``segments_skipped``
    is recomputed as total minus the merged loaded.

    Returns ``None`` when no worker reported a section (no lazy store).
    """
    reported = [section for section in sections if section]
    if not reported:
        return None
    totals = {
        (section["segments_total"], section["clusters_total"]) for section in reported
    }
    if len(totals) != 1:
        raise ValueError(
            f"workers disagree on store totals {sorted(totals)}; "
            "they cannot have opened the same store"
        )
    segments_total, clusters_total = next(iter(totals))
    segments_loaded = sum(section["segments_loaded"] for section in reported)
    return {
        "segments_total": segments_total,
        "segments_loaded": segments_loaded,
        "segments_skipped": segments_total - segments_loaded,
        "clusters_total": clusters_total,
        "clusters_loaded": sum(section["clusters_loaded"] for section in reported),
    }


def _sum_counter_dicts(sections: Iterable[dict]) -> dict:
    """Key-wise sum of flat ``{name: int}`` counter dicts (order-preserving)."""
    merged: dict = {}
    for section in sections:
        for name, value in section.items():
            merged[name] = merged.get(name, 0) + value
    return merged


# -- the engine ----------------------------------------------------------------------


@dataclass
class _ShardResult:
    """What one worker thread collected: records by index, final frame, exit."""

    records: dict[int, BatchRecord] = field(default_factory=dict)
    frame: dict | None = None
    exit_code: int | None = None
    stderr: str = ""


class ProcessBatchEngine:
    """Shard a corpus across worker processes; merge one deterministic report.

    Built by ``BatchRepairEngine.from_store(..., processes=N)`` (the
    ``batch --processes N`` path).  Each worker subprocess rebuilds its
    pipeline from the dataset registry (the store header's ``problem``
    name), opens the store header-only, and repairs its skeleton-aligned
    shard single-threaded — per-shard counters are therefore deterministic,
    which is what lets the merged ``--profile`` payload be committed and
    asserted byte-identical to a single-process run (see the module
    docstring for the argument, and ``results/parallel_batch.json`` for
    the committed evidence).

    Args:
        clusters_path: A current-format cluster store whose header names a
            registered problem (workers look it up to rebuild test cases).
        processes: Worker-process count (>= 1); also the reported
            ``BatchReport.workers``.  Shards left empty by the planner
            spawn no process.
        budget: Per-attempt wall-clock budget forwarded to every worker.
        profile: Attach a :class:`~repro.core.profile.PhaseProfiler` in
            every worker and merge the payloads (``batch --profile``).
        retrieval_prefilter / retrieval_top_k: Forwarded pipeline
            configuration (:class:`repro.core.pipeline.Clara`).
        language: When given, validated against the store header up front
            so a mismatch fails in the parent, not N times in workers.

    Differences from the in-process engine, by construction: the
    ``outcomes`` on the returned report carry status/detail/elapsed only —
    repaired programs and feedback *objects* do not cross the process
    boundary (the feedback *messages* are on the records, which is what
    the CLI and JSONL serialisation use).  Callers needing live
    ``RepairOutcome.repair`` objects want the in-process engine.

    Thread safety: one ``run`` at a time per engine instance; the workers
    it spawns share nothing with the caller.

    Raises:
        ClusterStoreError: Unreadable or non-store ``clusters_path``.
        ValueError: Store names no problem, or its language contradicts
            ``language``.
    """

    def __init__(
        self,
        clusters_path: str | Path,
        *,
        processes: int,
        budget: float | None = None,
        profile: bool = False,
        retrieval_prefilter: bool = True,
        retrieval_top_k: int = DEFAULT_TOP_K,
        language: str | None = None,
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.clusters_path = Path(clusters_path)
        self.header: StoreHeader = read_store_header(self.clusters_path)
        if not self.header.problem:
            raise ValueError(
                f"store {self.clusters_path} names no problem; process workers "
                "rebuild their pipelines from the dataset registry and need one"
            )
        if language is not None and self.header.language != language:
            raise ValueError(
                f"store {self.clusters_path} holds {self.header.language!r} "
                f"clusters but the pipeline is configured for {language!r}"
            )
        self.processes = processes
        self.budget = budget
        self.profile = profile
        self.retrieval_prefilter = retrieval_prefilter
        self.retrieval_top_k = retrieval_top_k

    # -- public API --------------------------------------------------------------

    def run(
        self,
        attempts: Iterable[str | BatchAttempt],
        *,
        budget: float | None = None,
    ) -> BatchReport:
        """Repair every attempt across the worker fleet; one merged report.

        Accepts the same corpus shapes as
        :meth:`repro.engine.batch.BatchRepairEngine.run` and returns
        records in submission order regardless of which worker finished
        first.  The merged counter sections are attached as
        ``report.profile`` (the :meth:`repro.core.pipeline.Clara.counters_payload`
        shape); ``report.cache_stats`` carries the summed trace/match/repair
        counters.
        """
        items = BatchRepairEngine._normalise(attempts)
        effective_budget = self.budget if budget is None else budget
        started = time.perf_counter()
        if not items:
            return BatchReport(
                records=[],
                outcomes=[],
                wall_time=time.perf_counter() - started,
                workers=self.processes,
                cache_stats=CacheStats(),
            )
        shards = shard_plan(
            items,
            self.processes,
            language=self.header.language,
            entry=self.header.entry,
        )
        results: list[_ShardResult] = [_ShardResult() for _ in shards]
        threads = []
        for shard_index, member_indices in enumerate(shards):
            if not member_indices:
                results[shard_index].exit_code = 0
                continue
            thread = threading.Thread(
                target=self._drive_worker,
                args=(shard_index, member_indices, items, effective_budget, results),
                name=f"batch-shard-{shard_index}",
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        return self._merge(items, shards, results, time.perf_counter() - started)

    # -- worker lifecycle ----------------------------------------------------------

    def _worker_command(self, shard_index: int, budget: float | None) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.engine.worker",
            "--store",
            str(self.clusters_path),
            "--shard",
            str(shard_index),
            "--top-k",
            str(self.retrieval_top_k),
        ]
        if budget is not None:
            command += ["--budget", repr(budget)]
        if self.profile:
            command.append("--profile")
        if not self.retrieval_prefilter:
            command.append("--no-prefilter")
        return command

    @staticmethod
    def _environment() -> dict:
        env = dict(os.environ)
        # The worker must import the same repro package this process runs,
        # whether or not it was pip-installed.
        src = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        return env

    def _drive_worker(
        self,
        shard_index: int,
        member_indices: list[int],
        items: list[BatchAttempt],
        budget: float | None,
        results: list[_ShardResult],
    ) -> None:
        """Feed one worker its shard over stdin; collect its NDJSON stream."""
        result = results[shard_index]
        payload = "".join(
            json.dumps(
                {
                    "id": index,
                    "attempt_id": items[index].attempt_id,
                    "source": items[index].source,
                }
            )
            + "\n"
            for index in member_indices
        )
        try:
            proc = subprocess.Popen(
                self._worker_command(shard_index, budget),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                encoding="utf-8",
                env=self._environment(),
            )
        except OSError as exc:  # spawn failure (no interpreter, fd limits)
            result.exit_code = -1
            result.stderr = f"spawn failed: {exc}"
            return
        stdout, stderr = proc.communicate(payload)
        result.exit_code = proc.returncode
        result.stderr = stderr.strip()
        for line in stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                frame = json.loads(line)
            except json.JSONDecodeError:
                continue  # a partial final line from a killed worker
            if "record" in frame:
                result.records[frame["id"]] = BatchRecord(**frame["record"])
            elif "counters" in frame:
                result.frame = frame

    # -- merging ---------------------------------------------------------------------

    def _merge(
        self,
        items: list[BatchAttempt],
        shards: list[list[int]],
        results: list[_ShardResult],
        wall_time: float,
    ) -> BatchReport:
        from ..core.pipeline import RepairOutcome, RepairStatus

        records: list[BatchRecord | None] = [None] * len(items)
        for shard_index, member_indices in enumerate(shards):
            result = results[shard_index]
            for index in member_indices:
                record = result.records.get(index)
                if record is None:
                    detail = (
                        f"worker process for shard {shard_index} exited with "
                        f"code {result.exit_code} before repairing this attempt"
                    )
                    if result.stderr:
                        detail += f" (stderr: {result.stderr.splitlines()[-1][:200]})"
                    record = BatchRecord(
                        attempt_id=items[index].attempt_id,
                        status=RepairStatus.INTERNAL_ERROR,
                        elapsed=0.0,
                        detail=detail,
                    )
                records[index] = record

        frames = [result.frame for result in results if result.frame is not None]
        cache_stats = CacheStats()
        for frame in frames:
            cache_stats = cache_stats.merge(CacheStats.from_dict(frame["cache"]))

        profile: dict | None = None
        if frames:
            profiler = PhaseProfiler()
            retrieval = RetrievalStats()
            for frame in frames:
                counters = frame["counters"]
                profiler = profiler.merge(PhaseProfiler.from_dict(counters["phases"]))
                retrieval = retrieval.merge(
                    RetrievalStats.from_dict(counters["retrieval"])
                )
            profile = {
                "phases": profiler.as_dict(),
                "ted": _sum_counter_dicts(f["counters"]["ted"] for f in frames),
                "compile": _sum_counter_dicts(
                    f["counters"]["compile"] for f in frames
                ),
                "solve": _sum_counter_dicts(f["counters"]["solve"] for f in frames),
                "cache_entries": _sum_counter_dicts(
                    f["counters"]["cache_entries"] for f in frames
                ),
                "store_paging": merge_store_paging(
                    f["counters"]["store_paging"] for f in frames
                ),
                "retrieval": retrieval.as_dict(),
            }

        final_records = [record for record in records if record is not None]
        outcomes: list[RepairOutcome] = [
            RepairOutcome(
                status=record.status, elapsed=record.elapsed, detail=record.detail
            )
            for record in final_records
        ]
        return BatchReport(
            records=final_records,
            outcomes=outcomes,
            wall_time=wall_time,
            workers=self.processes,
            cache_stats=cache_stats,
            profile=profile,
        )
