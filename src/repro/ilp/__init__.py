"""0-1 integer linear programming substrate."""

from .fastpath import SolveCache, solve_fast
from .problem import Constraint, IlpProblem, IlpSolution
from .solver import IlpError, InfeasibleError, solve
from .structure import (
    AssignmentForm,
    analyze_assignment_form,
    problem_fingerprint,
    solve_assignment,
)

__all__ = [
    "Constraint",
    "IlpProblem",
    "IlpSolution",
    "solve",
    "solve_fast",
    "SolveCache",
    "AssignmentForm",
    "analyze_assignment_form",
    "problem_fingerprint",
    "solve_assignment",
    "IlpError",
    "InfeasibleError",
]
