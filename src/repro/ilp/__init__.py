"""0-1 integer linear programming substrate."""

from .problem import Constraint, IlpProblem, IlpSolution
from .solver import IlpError, InfeasibleError, solve

__all__ = [
    "Constraint",
    "IlpProblem",
    "IlpSolution",
    "solve",
    "IlpError",
    "InfeasibleError",
]
