"""Structure analysis of repair ILPs: canonical fingerprints and the
assignment-degenerate form.

Two observations about the problems :func:`repro.core.repair._build_ilp`
emits motivate this module:

* **Redundancy.** MOOC corpora re-solve structurally identical programs, so
  the same ILP — up to variable and constraint insertion order — appears
  over and over.  :func:`problem_fingerprint` computes a canonical,
  hashable normal form (sorted variables, sorted non-zero objective
  coefficients, sorted constraints with sorted coefficient vectors) that is
  independent of construction order and of ``PYTHONHASHSEED``, suitable as
  a memo key for :class:`repro.ilp.fastpath.SolveCache`.

* **Degeneracy.** When no local-repair candidate carries an ω constraint
  (no implications — e.g. every site belongs to a fixed variable), the
  constraint system is exactly a family of "exactly one" choice groups in
  which each variable occurs at most twice.  Such a system is a min-cost
  *assignment*: 2-colour the group-intersection graph, treat the two
  colours as the sides of a bipartite graph, and every feasible selection
  is a perfect matching (variables in two groups are cross edges,
  variables in one group are slack edges).  :func:`analyze_assignment_form`
  recognizes this shape and :func:`solve_assignment` solves it exactly via
  :func:`repro.graphs.assignment.min_cost_perfect_matching` — no
  branch-and-bound nodes at all.

Any problem that does not match the degenerate shape is declined
(``analyze_assignment_form`` returns ``None``) and falls back to the
branch-and-bound spec solver; :func:`repro.ilp.fastpath.solve_fast` wires
the dispatch together.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..graphs.assignment import min_cost_perfect_matching
from .problem import IlpProblem, IlpSolution
from .solver import InfeasibleError

__all__ = [
    "AssignmentForm",
    "analyze_assignment_form",
    "problem_fingerprint",
    "solve_assignment",
]


def problem_fingerprint(problem: IlpProblem) -> tuple:
    """Canonical, hashable normal form of a 0-1 ILP.

    Two problems get the same fingerprint iff they have the same variable
    set, the same (non-zero) objective, the same optimisation sense and the
    same multiset of constraints — regardless of the order in which
    variables and constraints were added or coefficients listed, and
    independent of the process hash seed (everything is sorted, nothing
    iterates a set).  Constraint names are cosmetic and excluded.
    """
    objective = tuple(
        sorted((var, coeff) for var, coeff in problem.objective.items() if coeff)
    )
    constraints = tuple(
        sorted(
            (constraint.sense, constraint.rhs, tuple(sorted(constraint.coeffs)))
            for constraint in problem.constraints
        )
    )
    return (
        problem.minimize,
        tuple(sorted(problem.variables)),
        objective,
        constraints,
    )


@dataclass
class AssignmentForm:
    """A recognized assignment-degenerate problem, ready for matching.

    ``groups`` holds the member variables of every exactly-one constraint
    in declaration order; ``colors`` 2-colours the group-intersection graph
    (0 = left side, 1 = right side); ``var_groups`` maps each constrained
    variable to the one or two groups containing it.  ``infeasible`` is set
    when some group is empty (``sum([]) == 1`` — the marker
    :func:`repro.core.repair._build_ilp` emits for an unrepairable fixed
    site), which proves infeasibility outright.
    """

    infeasible: bool
    groups: list[tuple[str, ...]]
    colors: list[int]
    var_groups: dict[str, tuple[int, ...]]


def analyze_assignment_form(problem: IlpProblem) -> AssignmentForm | None:
    """Recognize the min-cost assignment shape, or return ``None``.

    The shape requires every constraint to be an exactly-one choice group
    (sense ``==``, right-hand side 1, all coefficients 1, no repeated
    variable), every variable to occur in at most two groups, and the
    group-intersection graph to be bipartite.  Implications (``>=``
    constraints) or any other row shape decline to branch-and-bound.
    """
    groups: list[tuple[str, ...]] = []
    infeasible = False
    for constraint in problem.constraints:
        if constraint.sense != "==" or constraint.rhs != 1.0:
            return None
        if any(coeff != 1.0 for _, coeff in constraint.coeffs):
            return None
        members = tuple(var for var, _ in constraint.coeffs)
        if len(set(members)) != len(members):
            return None
        if not members:
            infeasible = True
        groups.append(members)

    var_groups: dict[str, list[int]] = {}
    for index, members in enumerate(groups):
        for var in members:
            var_groups.setdefault(var, []).append(index)
    if any(len(indices) > 2 for indices in var_groups.values()):
        return None

    adjacency: list[list[int]] = [[] for _ in groups]
    for indices in var_groups.values():
        if len(indices) == 2:
            a, b = indices
            adjacency[a].append(b)
            adjacency[b].append(a)
    colors = [-1] * len(groups)
    for root in range(len(groups)):
        if colors[root] != -1:
            continue
        colors[root] = 0
        queue: deque[int] = deque([root])
        while queue:
            node = queue.popleft()
            for other in adjacency[node]:
                if colors[other] == -1:
                    colors[other] = 1 - colors[node]
                    queue.append(other)
                elif colors[other] == colors[node]:
                    return None  # odd cycle: not an assignment problem

    return AssignmentForm(
        infeasible=infeasible,
        groups=groups,
        colors=colors,
        var_groups={var: tuple(indices) for var, indices in var_groups.items()},
    )


def solve_assignment(problem: IlpProblem, form: AssignmentForm) -> IlpSolution:
    """Solve a recognized assignment-degenerate problem exactly.

    Reduction: groups coloured 0 become left vertices and groups coloured 1
    right vertices.  A variable in two groups is a cross edge (selecting it
    satisfies both); a variable in one group is an edge to that group's
    private slack vertex (the group is satisfied alone); slack vertices pair
    off among themselves at zero cost, padding the two sides to equal size.
    Parallel variables between the same pair of vertices keep only the
    cheapest (swapping any selection to the cheapest parallel variable
    preserves feasibility), so a minimum-cost perfect matching is exactly an
    optimal selection.  Unconstrained variables are set to 1 iff that
    improves the objective.

    Raises :class:`InfeasibleError` with ``proven=True`` when no perfect
    matching exists (or a group is empty): both arguments are complete, so
    the verdict is cacheable.  The returned solution always carries
    ``optimal=True`` and ``nodes_explored=0``.
    """
    if form.infeasible:
        raise InfeasibleError(
            "an empty choice group admits no assignment", proven=True
        )
    minimize = problem.minimize

    def normal_cost(var: str) -> float:
        coeff = problem.objective.get(var, 0.0)
        return coeff if minimize else -coeff

    values = {var: 0 for var in problem.variables}
    for var in problem.variables:
        if var not in form.var_groups and normal_cost(var) < 0:
            values[var] = 1

    left = [index for index, color in enumerate(form.colors) if color == 0]
    right = [index for index, color in enumerate(form.colors) if color == 1]
    declaration_order = {var: index for index, var in enumerate(problem.variables)}

    # Cheapest variable per vertex pair; ties broken by declaration order so
    # the selected assignment is deterministic.
    chooser: dict[tuple, tuple[float, int, str]] = {}

    def offer(left_vertex: tuple, right_vertex: tuple, var: str) -> None:
        key = (left_vertex, right_vertex)
        entry = (normal_cost(var), declaration_order[var], var)
        if key not in chooser or entry < chooser[key]:
            chooser[key] = entry

    for var, indices in form.var_groups.items():
        if len(indices) == 2:
            a, b = indices
            if form.colors[a] == 0:
                offer(("group", a), ("group", b), var)
            else:
                offer(("group", b), ("group", a), var)
        else:
            (group,) = indices
            if form.colors[group] == 0:
                offer(("group", group), ("slack", group), var)
            else:
                offer(("slack", group), ("group", group), var)

    left_vertices = [("group", index) for index in left]
    left_vertices += [("slack", index) for index in right]
    right_vertices = [("group", index) for index in right]
    right_vertices += [("slack", index) for index in left]
    edges: dict[tuple, float] = {key: entry[0] for key, entry in chooser.items()}
    for i in right:
        for j in left:
            edges[(("slack", i), ("slack", j))] = 0.0

    result = min_cost_perfect_matching(left_vertices, right_vertices, edges)
    if result is None:
        raise InfeasibleError(
            "the choice groups admit no consistent selection", proven=True
        )
    matching, _ = result
    for left_vertex, right_vertex in matching.items():
        if left_vertex[0] == "slack" and right_vertex[0] == "slack":
            continue
        values[chooser[(left_vertex, right_vertex)][2]] = 1

    return IlpSolution(
        values=values,
        objective=problem.objective_value(values),
        optimal=True,
        nodes_explored=0,
    )
