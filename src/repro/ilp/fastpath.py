"""The solver fast path: solve memoization and degenerate dispatch.

Plain :func:`repro.ilp.solver.solve` remains the executable specification;
:func:`solve_fast` is the entry point the repair pipeline actually calls.
It layers three accelerations on top of the spec, each of which is
objective-identical to it by construction:

1. **Memoization** (:class:`SolveCache`).  Problems are keyed by the
   canonical fingerprint of :func:`repro.ilp.structure.problem_fingerprint`
   — identical formulations built in different orders share one entry.
   Only *unconditional* verdicts are stored: optimal solutions
   (``optimal=True``) and proven infeasibility
   (:class:`~repro.ilp.solver.InfeasibleError` with ``proven=True``).
   Node-limit-truncated incumbents and bound-restricted misses are passed
   through uncached, so a cached answer is valid under any later
   ``upper_bound``.

2. **Degenerate dispatch.**  Problems recognized by
   :func:`repro.ilp.structure.analyze_assignment_form` as pure min-cost
   assignments are solved by
   :func:`repro.graphs.assignment.min_cost_perfect_matching` — zero
   branch-and-bound nodes.  Dispatch is *unconditional*: it happens whether
   or not a cache is attached, so repair outcomes never depend on cache
   configuration (the differential tests in ``tests/test_ilp_fastpath.py``
   rely on this).

3. **Warm starts.**  An ``upper_bound`` (the best repair cost found so far
   in :func:`repro.core.repair.find_best_repair`) is forwarded to
   branch-and-bound as the initial incumbent.  A solve that cannot beat the
   bound returns ``None`` instead of raising, which callers treat exactly
   like the documented ``cost_bound`` contract: a repair at least as costly
   as the current best could never be selected anyway.

Counters (hits, misses, degenerate dispatches, branch-and-bound fallbacks,
nodes explored) surface through ``batch --profile`` and the service stats
endpoint, next to the TED and compile cache counters.
"""

from __future__ import annotations

import threading

from .problem import IlpProblem, IlpSolution
from .solver import InfeasibleError, solve
from .structure import analyze_assignment_form, problem_fingerprint, solve_assignment

__all__ = ["SolveCache", "solve_fast"]

#: Cache sentinel: the problem was *proven* infeasible.
_INFEASIBLE = object()
#: Lookup sentinel: no cached entry.
_MISS = object()


class SolveCache:
    """Memo table and counters for ILP solves.

    One instance is owned by :class:`repro.engine.cache.RepairCaches`
    (created in its ``__post_init__`` alongside the TED and compile caches)
    and shared by every batch worker; all methods are lock-guarded.
    ``enabled=False`` turns every lookup into a miss (nothing is stored)
    while the counters keep counting, mirroring
    :class:`repro.ted.TedCache` — that is how the differential tests and
    the solver benchmark measure what the fast path avoids.

    Counters (monotonic):

    * ``hits`` / ``misses`` — fingerprint lookups answered / not answered
      from the table;
    * ``degenerate_dispatches`` — solves routed to the min-cost assignment
      solver instead of branch-and-bound;
    * ``bnb_fallbacks`` — solves that did run branch-and-bound;
    * ``nodes_explored`` — total branch-and-bound nodes across fallbacks
      (degenerate dispatches and cache hits contribute zero).

    The table is size-bounded: at ``max_entries`` it simply stops storing
    (existing keys may still be refreshed), so a long-lived service cannot
    grow it without bound while hit/miss accounting stays deterministic.
    """

    def __init__(self, enabled: bool = True, max_entries: int = 1 << 14) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._table: dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.degenerate_dispatches = 0
        self.bnb_fallbacks = 0
        self.nodes_explored = 0

    # -- lookup/store ----------------------------------------------------------

    def key_for(self, problem: IlpProblem) -> tuple | None:
        """Fingerprint ``problem``, or ``None`` when caching is disabled."""
        return problem_fingerprint(problem) if self.enabled else None

    def lookup(self, key: tuple | None) -> object:
        """Return the stored verdict for ``key`` or the miss sentinel."""
        with self._lock:
            if key is not None and key in self._table:
                self.hits += 1
                return self._table[key]
            self.misses += 1
            return _MISS

    def store(self, key: tuple | None, entry: object) -> None:
        if key is None:
            return
        with self._lock:
            if len(self._table) < self.max_entries or key in self._table:
                self._table[key] = entry

    def record(self, *, degenerate: int = 0, fallbacks: int = 0, nodes: int = 0) -> None:
        """Bump dispatch counters (called by :func:`solve_fast`)."""
        with self._lock:
            self.degenerate_dispatches += degenerate
            self.bnb_fallbacks += fallbacks
            self.nodes_explored += nodes

    # -- maintenance -----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Snapshot of the counters, for reports and benchmarks."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "degenerate_dispatches": self.degenerate_dispatches,
                "bnb_fallbacks": self.bnb_fallbacks,
                "nodes_explored": self.nodes_explored,
            }

    def entry_counts(self) -> dict[str, int]:
        with self._lock:
            return {"solves": len(self._table)}

    def clear(self) -> None:
        """Drop memoized entries (counters are preserved)."""
        with self._lock:
            self._table.clear()


def _beats_bound(problem: IlpProblem, objective: float, bound: float) -> bool:
    return objective < bound if problem.minimize else objective > bound


def _copy(solution: IlpSolution, nodes_explored: int) -> IlpSolution:
    # Hand out a private values dict so neither the cache entry nor other
    # consumers of the same fingerprint can be mutated through a result.
    return IlpSolution(
        values=dict(solution.values),
        objective=solution.objective,
        optimal=solution.optimal,
        nodes_explored=nodes_explored,
    )


def solve_fast(
    problem: IlpProblem,
    *,
    node_limit: int = 200_000,
    cache: SolveCache | None = None,
    upper_bound: float | None = None,
) -> IlpSolution | None:
    """Solve a 0-1 ILP through the fast path.

    Objective-identical to :func:`repro.ilp.solver.solve` in every case
    (``tests/test_ilp_fastpath.py`` asserts it property-style), with three
    shortcuts: a memo lookup by canonical fingerprint, exact min-cost
    assignment dispatch for degenerate problems, and incumbent warm-starting
    of branch-and-bound.

    Args:
        problem: The 0-1 program to solve.
        node_limit: Branch-and-bound node budget (fallback path only).
        cache: Optional :class:`SolveCache`; degenerate dispatch happens
            with or without it.
        upper_bound: Optional incumbent objective.  When given, only a
            solution strictly better than the bound is returned; ``None``
            means no such solution exists (which does *not* prove the
            problem infeasible).

    Returns:
        The solution, or ``None`` when ``upper_bound`` is set and cannot be
        beaten (including unproven infeasibility under the bound or the
        node limit).

    Raises:
        InfeasibleError: Proven infeasibility (always), or unproven
            (node-limit truncation with no incumbent) when no
            ``upper_bound`` was supplied — mirroring the spec solver.
    """
    key: tuple | None = None
    if cache is not None:
        key = cache.key_for(problem)
        entry = cache.lookup(key)
        if entry is not _MISS:
            if entry is _INFEASIBLE:
                raise InfeasibleError(
                    "memoized verdict: no feasible assignment exists", proven=True
                )
            assert isinstance(entry, IlpSolution)
            if upper_bound is not None and not _beats_bound(
                problem, entry.objective, upper_bound
            ):
                return None
            return _copy(entry, nodes_explored=0)

    form = analyze_assignment_form(problem)
    if form is not None:
        if cache is not None:
            cache.record(degenerate=1)
        try:
            solution = solve_assignment(problem, form)
        except InfeasibleError:
            if cache is not None:
                cache.store(key, _INFEASIBLE)
            raise
        if cache is not None:
            cache.store(key, _copy(solution, solution.nodes_explored))
        if upper_bound is not None and not _beats_bound(
            problem, solution.objective, upper_bound
        ):
            return None
        return solution

    if cache is not None:
        cache.record(fallbacks=1)
    try:
        solution = solve(problem, node_limit=node_limit, upper_bound=upper_bound)
    except InfeasibleError as error:
        if cache is not None:
            cache.record(nodes=error.nodes_explored)
            if error.proven:
                cache.store(key, _INFEASIBLE)
        if not error.proven and upper_bound is not None:
            return None
        raise
    if cache is not None:
        cache.record(nodes=solution.nodes_explored)
        if solution.optimal:
            # An optimal solution is the global optimum even when found
            # under an upper bound: warm-start pruning only ever discards
            # completions at least as costly as the incumbent.
            cache.store(key, _copy(solution, solution.nodes_explored))
    return solution
