"""Branch-and-bound solver for 0-1 ILPs.

The repair encoding (paper Def. 5.5) produces problems with a very regular
structure: "exactly one" choice groups (one per representative variable, one
per implementation variable, one per location/variable pair) plus implication
constraints tying selected local repairs to the chosen variable relation, with
non-negative objective coefficients only on the local-repair variables.

The solver below is a generic 0-1 branch-and-bound with:

* constraint propagation to fixpoint (bound reasoning on every constraint,
  with the special cases of choice groups and implications falling out of the
  generic rule);
* a lower bound that adds, for every undecided choice group disjoint from
  the groups already charged, the cheapest still-available member (plus the
  cost of every unassigned negative-cost variable);
* best-first variable selection (most constrained group first, cheapest value
  first), which reaches the optimum quickly for repair instances.

A node limit protects against pathological inputs; if it is hit, the best
incumbent found so far is returned with ``optimal=False``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .problem import Constraint, IlpProblem, IlpSolution

__all__ = ["solve", "IlpError", "InfeasibleError"]


class IlpError(Exception):
    """Base class for solver errors."""


class InfeasibleError(IlpError):
    """No feasible assignment was found.

    ``proven`` distinguishes a completed argument (root propagation reached
    a contradiction, or the search space was exhausted with neither a node
    limit nor an initial ``upper_bound`` in play) from a search that merely
    *failed to find* an assignment because it was truncated by the node
    limit or restricted to solutions beating an incumbent bound.  Only
    proven infeasibility may be memoized by
    :class:`repro.ilp.fastpath.SolveCache`.

    ``nodes_explored`` carries the branch-and-bound node count at the time
    of the raise, so profiling can attribute infeasible solves too.
    """

    def __init__(
        self,
        message: str = "no feasible assignment exists",
        *,
        proven: bool = True,
        nodes_explored: int = 0,
    ) -> None:
        super().__init__(message)
        self.proven = proven
        self.nodes_explored = nodes_explored


@dataclass
class _SearchState:
    assignment: dict[str, int]
    cost: float


def solve(
    problem: IlpProblem,
    *,
    node_limit: int = 200_000,
    upper_bound: float | None = None,
) -> IlpSolution:
    """Solve a 0-1 ILP; raises :class:`InfeasibleError` if no solution exists.

    Args:
        problem: The 0-1 program to solve.
        node_limit: Branch-and-bound node budget.  When it is hit, the best
            incumbent found so far is returned with ``optimal=False``; if no
            incumbent exists yet, :class:`InfeasibleError` is raised with
            ``proven=False``.
        upper_bound: Optional incumbent objective value used to warm-start
            the search (in the problem's own objective sense): only
            solutions *strictly better* than the bound are considered, and
            branches that cannot beat it are pruned immediately.  When no
            solution beats the bound, :class:`InfeasibleError` is raised
            with ``proven=False`` — the problem may still be feasible.
            Because pruning only ever removes completions that are at least
            as costly as the current incumbent, a warm-started solve that
            does return a solution returns exactly the one the cold solve
            would have found.
    """
    solver = _Solver(problem, node_limit=node_limit, upper_bound=upper_bound)
    return solver.run()


class _Solver:
    def __init__(
        self,
        problem: IlpProblem,
        node_limit: int,
        upper_bound: float | None = None,
    ) -> None:
        self.problem = problem
        self.node_limit = node_limit
        self.variables = list(problem.variables)
        self.objective = {
            var: problem.objective.get(var, 0.0) for var in self.variables
        }
        if not problem.minimize:
            self.objective = {var: -coeff for var, coeff in self.objective.items()}
        self.constraints = problem.constraints
        self.var_constraints: dict[str, list[Constraint]] = {v: [] for v in self.variables}
        for constraint in self.constraints:
            for var, _ in constraint.coeffs:
                self.var_constraints[var].append(constraint)
        self.choice_groups = [
            constraint
            for constraint in self.constraints
            if constraint.sense == "=="
            and constraint.rhs == 1.0
            and all(coeff == 1.0 for _, coeff in constraint.coeffs)
        ]
        # Variables whose (normalized) cost is negative: every one still
        # unassigned may yet lower the objective, so the lower bound must
        # charge them.  Repair instances have non-negative costs only, but
        # maximisation problems negate into this case.
        self.negative_vars = [
            var for var in self.variables if self.objective.get(var, 0.0) < 0
        ]
        # ``best_cost`` lives in the normalized (minimisation) space; an
        # externally supplied incumbent bound is translated into it.
        self.bounded = upper_bound is not None
        if upper_bound is None:
            self.best_cost = float("inf")
        elif problem.minimize:
            self.best_cost = upper_bound
        else:
            self.best_cost = -upper_bound
        self.best_assignment: dict[str, int] | None = None
        self.nodes = 0
        self.truncated = False

    # -- public ----------------------------------------------------------------

    def run(self) -> IlpSolution:
        assignment: dict[str, int] = {}
        if not self._propagate(assignment):
            # A propagation contradiction is a complete argument: it uses
            # neither the node limit nor the incumbent bound.
            raise InfeasibleError(
                "propagation found the root infeasible",
                proven=True,
                nodes_explored=self.nodes,
            )
        self._search(assignment)
        if self.best_assignment is None:
            if self.truncated:
                message = "node limit hit before any feasible assignment was found"
            elif self.bounded:
                message = "no feasible assignment beats the upper bound"
            else:
                message = "no feasible assignment exists"
            raise InfeasibleError(
                message,
                proven=not self.truncated and not self.bounded,
                nodes_explored=self.nodes,
            )
        values = {var: self.best_assignment.get(var, 0) for var in self.variables}
        objective = self.problem.objective_value(values)
        return IlpSolution(
            values=values,
            objective=objective,
            optimal=not self.truncated,
            nodes_explored=self.nodes,
        )

    # -- propagation -------------------------------------------------------------

    def _constraint_bounds(
        self, constraint: Constraint, assignment: dict[str, int]
    ) -> tuple[float, float]:
        lower = 0.0
        upper = 0.0
        for var, coeff in constraint.coeffs:
            value = assignment.get(var)
            if value is not None:
                lower += coeff * value
                upper += coeff * value
            elif coeff >= 0:
                upper += coeff
            else:
                lower += coeff
        return lower, upper

    def _constraint_consistent(
        self, constraint: Constraint, assignment: dict[str, int]
    ) -> bool:
        lower, upper = self._constraint_bounds(constraint, assignment)
        if constraint.sense == "==":
            return lower - 1e-9 <= constraint.rhs <= upper + 1e-9
        if constraint.sense == ">=":
            return upper >= constraint.rhs - 1e-9
        return lower <= constraint.rhs + 1e-9  # "<="

    def _propagate(self, assignment: dict[str, int]) -> bool:
        """Fix forced variables; return ``False`` on contradiction."""
        queue = list(self.constraints)
        while queue:
            constraint = queue.pop()
            if not self._constraint_consistent(constraint, assignment):
                return False
            for var, _ in constraint.coeffs:
                if var in assignment:
                    continue
                forced = None
                for candidate in (0, 1):
                    assignment[var] = candidate
                    ok = self._constraint_consistent(constraint, assignment)
                    del assignment[var]
                    if not ok:
                        forced = 1 - candidate
                        break
                if forced is not None:
                    assignment[var] = forced
                    if not all(
                        self._constraint_consistent(c, assignment)
                        for c in self.var_constraints[var]
                    ):
                        return False
                    queue.extend(self.var_constraints[var])
        return True

    # -- bounding -----------------------------------------------------------------

    def _current_cost(self, assignment: dict[str, int]) -> float:
        return sum(
            self.objective[var] * value
            for var, value in assignment.items()
            if value and self.objective.get(var)
        )

    def _lower_bound(self, assignment: dict[str, int]) -> float:
        bound = self._current_cost(assignment)
        for var in self.negative_vars:
            if var not in assignment:
                bound += self.objective[var]
        counted: set[str] = set()
        for group in self.choice_groups:
            members = [var for var, _ in group.coeffs]
            if any(assignment.get(var) == 1 for var in members):
                continue
            available = [var for var in members if assignment.get(var) != 0]
            # Only charge groups whose available members are disjoint from
            # every group already charged: a shared variable set to 1 could
            # satisfy both groups at a single cost, so charging the
            # remaining members of an overlapping group would overcharge
            # (an inadmissible bound that prunes true optima).
            if not available or any(var in counted for var in available):
                continue
            cheapest = min(self.objective.get(var, 0.0) for var in available)
            if cheapest > 0:
                bound += cheapest
                counted.update(available)
        return bound

    # -- search -----------------------------------------------------------------

    def _select_variable(self, assignment: dict[str, int]) -> str | None:
        # Prefer a free variable from the tightest undecided choice group.
        best_var: str | None = None
        best_key: tuple[int, float] | None = None
        for group in self.choice_groups:
            members = [var for var, _ in group.coeffs]
            if any(assignment.get(var) == 1 for var in members):
                continue
            free = [var for var in members if var not in assignment]
            if not free:
                continue
            for var in free:
                key = (len(free), self.objective.get(var, 0.0))
                if best_key is None or key < best_key:
                    best_key = key
                    best_var = var
        if best_var is not None:
            return best_var
        for var in self.variables:
            if var not in assignment:
                return var
        return None

    def _search(self, assignment: dict[str, int]) -> None:
        self.nodes += 1
        if self.nodes >= self.node_limit:
            self.truncated = True
            return
        if self._lower_bound(assignment) >= self.best_cost:
            return
        variable = self._select_variable(assignment)
        if variable is None:
            cost = self._current_cost(assignment)
            if cost < self.best_cost and self._complete_is_feasible(assignment):
                self.best_cost = cost
                self.best_assignment = dict(assignment)
            return
        # Try the cheaper value first (for minimisation with non-negative
        # costs that is almost always 0, but selecting a repair variable to 1
        # is what satisfies choice groups, so order by resulting bound).
        order = (0, 1) if self.objective.get(variable, 0.0) > 0 else (1, 0)
        for value in order:
            trail = dict(assignment)
            trail[variable] = value
            if not all(
                self._constraint_consistent(c, trail)
                for c in self.var_constraints[variable]
            ):
                continue
            if not self._propagate(trail):
                continue
            self._search(trail)

    def _complete_is_feasible(self, assignment: dict[str, int]) -> bool:
        values = {var: assignment.get(var, 0) for var in self.variables}
        return self.problem.is_feasible(values)
