"""Zero-one integer linear programs (paper Def. 5.5).

A problem consists of binary variables, linear constraints with sense ``=``,
``>=`` or ``<=``, and a linear objective to minimise or maximise.  This is
exactly the class of problems the repair algorithm produces; the solver in
:mod:`repro.ilp.solver` replaces the off-the-shelf ``lpsolve`` used by the
paper's implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = ["Constraint", "IlpProblem", "IlpSolution"]


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``sum(coeffs[v] * v) sense rhs``."""

    coeffs: tuple[tuple[str, float], ...]
    sense: str  # "==", ">=" or "<="
    rhs: float
    name: str = ""

    def variables(self) -> list[str]:
        return [var for var, _ in self.coeffs]


@dataclass
class IlpSolution:
    """A feasible assignment together with its objective value."""

    values: dict[str, int]
    objective: float
    optimal: bool = True
    nodes_explored: int = 0

    def __getitem__(self, var: str) -> int:
        return self.values[var]


class IlpProblem:
    """A 0-1 ILP under construction."""

    def __init__(self, *, minimize: bool = True) -> None:
        self.minimize = minimize
        self.variables: list[str] = []
        self._variable_set: set[str] = set()
        self.constraints: list[Constraint] = []
        self.objective: dict[str, float] = {}

    # -- construction ----------------------------------------------------------

    def add_variable(self, name: str, objective: float = 0.0) -> str:
        """Declare a binary variable; repeated declarations are idempotent."""
        if name not in self._variable_set:
            self.variables.append(name)
            self._variable_set.add(name)
        if objective:
            self.objective[name] = self.objective.get(name, 0.0) + objective
        return name

    def set_objective_coefficient(self, name: str, coefficient: float) -> None:
        self.add_variable(name)
        self.objective[name] = coefficient

    def add_constraint(
        self,
        coeffs: Mapping[str, float] | Iterable[tuple[str, float]],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        """Add ``sum(coeff * var) sense rhs``; unknown variables are declared."""
        if sense not in ("==", ">=", "<="):
            raise ValueError(f"invalid constraint sense: {sense!r}")
        items = tuple(coeffs.items()) if isinstance(coeffs, Mapping) else tuple(coeffs)
        for var, _ in items:
            self.add_variable(var)
        constraint = Constraint(items, sense, float(rhs), name)
        self.constraints.append(constraint)
        return constraint

    def add_exactly_one(self, variables: Iterable[str], name: str = "") -> Constraint:
        """Convenience for the ubiquitous ``sum(vars) == 1`` constraints."""
        return self.add_constraint([(v, 1.0) for v in variables], "==", 1.0, name)

    def add_implication(self, antecedent: str, consequent: str, name: str = "") -> Constraint:
        """Add ``antecedent -> consequent`` as ``-antecedent + consequent >= 0``."""
        return self.add_constraint(
            [(antecedent, -1.0), (consequent, 1.0)], ">=", 0.0, name
        )

    # -- introspection ----------------------------------------------------------

    def objective_value(self, values: Mapping[str, int]) -> float:
        return sum(coeff * values.get(var, 0) for var, coeff in self.objective.items())

    def is_feasible(self, values: Mapping[str, int]) -> bool:
        """Check a full assignment against every constraint (used by tests)."""
        for constraint in self.constraints:
            total = sum(coeff * values.get(var, 0) for var, coeff in constraint.coeffs)
            if constraint.sense == "==" and abs(total - constraint.rhs) > 1e-9:
                return False
            if constraint.sense == ">=" and total < constraint.rhs - 1e-9:
                return False
            if constraint.sense == "<=" and total > constraint.rhs + 1e-9:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<IlpProblem vars={len(self.variables)} "
            f"constraints={len(self.constraints)}>"
        )
