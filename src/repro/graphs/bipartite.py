"""Maximum bipartite matching (Hopcroft–Karp) and perfect-matching search.

The matching algorithm of the paper (Fig. 4, line 11) reduces finding a
matching witness to finding a *perfect bijective* mapping inside the
compatibility relation ``M ⊆ V_Q × V_P``.  We implement Hopcroft–Karp from
scratch (the paper cites Uno [40] for the enumeration variant; one maximum
matching is enough to decide existence and to return a witness).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping, Sequence

__all__ = ["hopcroft_karp", "perfect_matching", "maximum_matching_size"]

_INF = float("inf")


def hopcroft_karp(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    edges: Mapping[Hashable, Iterable[Hashable]],
) -> dict[Hashable, Hashable]:
    """Return a maximum matching as a dict ``left_vertex -> right_vertex``.

    Args:
        left: Vertices of the left partition.
        right: Vertices of the right partition.
        edges: Adjacency of left vertices (iterable of right vertices).
    """
    adjacency = {u: list(edges.get(u, ())) for u in left}
    match_left: dict[Hashable, Hashable | None] = {u: None for u in left}
    match_right: dict[Hashable, Hashable | None] = {v: None for v in right}
    distance: dict[Hashable, float] = {}

    def bfs() -> bool:
        queue: deque[Hashable] = deque()
        for u in left:
            if match_left[u] is None:
                distance[u] = 0
                queue.append(u)
            else:
                distance[u] = _INF
        reachable_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                partner = match_right.get(v)
                if partner is None:
                    reachable_free = True
                elif distance[partner] == _INF:
                    distance[partner] = distance[u] + 1
                    queue.append(partner)
        return reachable_free

    def dfs(u: Hashable) -> bool:
        for v in adjacency[u]:
            partner = match_right.get(v)
            if partner is None or (
                distance.get(partner) == distance[u] + 1 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INF
        return False

    while bfs():
        for u in left:
            if match_left[u] is None:
                dfs(u)

    return {u: v for u, v in match_left.items() if v is not None}


def maximum_matching_size(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    edges: Mapping[Hashable, Iterable[Hashable]],
) -> int:
    """Size of a maximum matching."""
    return len(hopcroft_karp(left, right, edges))


def perfect_matching(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    edges: Mapping[Hashable, Iterable[Hashable]],
) -> dict[Hashable, Hashable] | None:
    """Return a perfect bijective matching or ``None`` if none exists.

    A perfect matching here means every left vertex *and* every right vertex
    is matched, i.e. the relation contains a bijection; this is exactly the
    ``BijectiveMapping`` step of the paper's matching algorithm.
    """
    if len(left) != len(right):
        return None
    matching = hopcroft_karp(left, right, edges)
    if len(matching) != len(left):
        return None
    return matching
