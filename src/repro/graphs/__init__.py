"""Graph algorithms substrate: bipartite matching."""

from .bipartite import hopcroft_karp, maximum_matching_size, perfect_matching

__all__ = ["hopcroft_karp", "maximum_matching_size", "perfect_matching"]
