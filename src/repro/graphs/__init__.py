"""Graph algorithms substrate: bipartite matching and assignment."""

from .assignment import min_cost_perfect_matching
from .bipartite import hopcroft_karp, maximum_matching_size, perfect_matching

__all__ = [
    "hopcroft_karp",
    "maximum_matching_size",
    "perfect_matching",
    "min_cost_perfect_matching",
]
