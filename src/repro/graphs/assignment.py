"""Minimum-cost perfect matching on bipartite graphs (assignment problem).

The repair ILP (paper Def. 5.5) frequently degenerates to a pure assignment
problem: when no local-repair candidate constrains the variable relation (no
implications), the constraint system is exactly a family of disjoint
"exactly one" choice groups and the optimum is a minimum-cost perfect
matching between the two sides of the group-intersection graph.
:mod:`repro.ilp.structure` performs that reduction; this module supplies the
matching algorithm, a companion to the cardinality-only Hopcroft–Karp in
:mod:`repro.graphs.bipartite`.

The implementation is successive shortest augmenting paths on the residual
flow network, with Bellman–Ford/SPFA path search so negative edge costs are
supported (the residual graph of a min-cost flow always contains negative
arcs, and ILP objectives may carry negative coefficients).  The graphs the
repair pipeline produces are small — tens of vertices — so the simple
O(V·E·V) bound is irrelevant in practice; what matters is that iteration
order is fully deterministic (vertex order in, edge order sorted), keeping
downstream results byte-stable across hash seeds.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping, Sequence

__all__ = ["min_cost_perfect_matching"]

_INF = float("inf")

#: Slack below which a tentative distance does not count as an improvement;
#: guards the SPFA loop against float round-off ping-pong on equal-cost
#: alternative paths.
_EPS = 1e-12


class _Edge:
    __slots__ = ("to", "cap", "cost", "rev")

    def __init__(self, to: int, cap: int, cost: float, rev: int) -> None:
        self.to = to
        self.cap = cap
        self.cost = cost
        self.rev = rev  # index of the reverse edge in graph[to]


def min_cost_perfect_matching(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    edges: Mapping[tuple[Hashable, Hashable], float],
) -> tuple[dict[Hashable, Hashable], float] | None:
    """Return a minimum-cost perfect matching and its cost, or ``None``.

    Args:
        left: Vertices of the left partition.
        right: Vertices of the right partition (same cardinality required
            for a perfect matching to exist).
        edges: Cost per admissible ``(left_vertex, right_vertex)`` pair.
            Duplicate pairs keep the cheapest cost.  Costs may be negative;
            the bipartite flow network contains no negative cycles.

    Returns:
        ``(matching, cost)`` where ``matching`` maps every left vertex to
        its partner, or ``None`` when no perfect matching exists.
    """
    left = list(left)
    right = list(right)
    if len(left) != len(right):
        return None
    n = len(left)
    if n == 0:
        return {}, 0.0

    left_index = {u: i for i, u in enumerate(left)}
    right_index = {v: j for j, v in enumerate(right)}
    if len(left_index) != n or len(right_index) != n:
        raise ValueError("duplicate vertices in a partition")

    cheapest: dict[tuple[int, int], float] = {}
    for (u, v), cost in edges.items():
        i = left_index.get(u)
        j = right_index.get(v)
        if i is None or j is None:
            raise ValueError(f"edge ({u!r}, {v!r}) mentions an unknown vertex")
        key = (i, j)
        cost = float(cost)
        if key not in cheapest or cost < cheapest[key]:
            cheapest[key] = cost

    # Flow network: 0 = source, 1..n = left, n+1..2n = right, 2n+1 = sink.
    source, sink = 0, 2 * n + 1
    graph: list[list[_Edge]] = [[] for _ in range(2 * n + 2)]

    def add_edge(u: int, v: int, cost: float) -> None:
        graph[u].append(_Edge(v, 1, cost, len(graph[v])))
        graph[v].append(_Edge(u, 0, -cost, len(graph[u]) - 1))

    for i in range(n):
        add_edge(source, 1 + i, 0.0)
        add_edge(1 + n + i, sink, 0.0)
    for (i, j), cost in sorted(cheapest.items()):
        add_edge(1 + i, 1 + n + j, cost)

    for _ in range(n):
        # Shortest augmenting path by SPFA over the residual graph.
        size = len(graph)
        dist = [_INF] * size
        prev: list[tuple[int, int] | None] = [None] * size
        in_queue = [False] * size
        dist[source] = 0.0
        queue: deque[int] = deque([source])
        in_queue[source] = True
        while queue:
            u = queue.popleft()
            in_queue[u] = False
            base = dist[u]
            for index, edge in enumerate(graph[u]):
                if edge.cap <= 0:
                    continue
                candidate = base + edge.cost
                if candidate < dist[edge.to] - _EPS:
                    dist[edge.to] = candidate
                    prev[edge.to] = (u, index)
                    if not in_queue[edge.to]:
                        queue.append(edge.to)
                        in_queue[edge.to] = True
        if prev[sink] is None:
            return None  # no augmenting path: no perfect matching
        node = sink
        while node != source:
            u, index = prev[node]
            edge = graph[u][index]
            edge.cap -= 1
            graph[node][edge.rev].cap += 1
            node = u

    matching: dict[Hashable, Hashable] = {}
    total = 0.0
    for i in range(n):
        for edge in graph[1 + i]:
            if 1 + n <= edge.to <= 2 * n and edge.cap == 0:
                j = edge.to - 1 - n
                matching[left[i]] = right[j]
                total += cheapest[(i, j)]
                break
    return matching, total
