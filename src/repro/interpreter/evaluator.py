"""Expression evaluation (paper Def. 3.4).

:func:`evaluate` maps an expression and a memory to a value in the
computation domain.  ``And``/``Or`` follow Python's short-circuit semantics
(returning an operand, not necessarily a bool), ``ite`` evaluates lazily, and
any error or unknown operation yields the undefined value.
"""

from __future__ import annotations

from typing import Mapping

from ..model.expr import Const, Expr, Op, Var
from .libfuncs import lookup
from .values import UNDEF, freeze_value, is_undef

__all__ = ["evaluate", "truthy"]


def truthy(value: object) -> bool:
    """Truth value of a domain value; the undefined value is falsy."""
    if is_undef(value):
        return False
    return bool(value)


def evaluate(expr: Expr, memory: Mapping[str, object]) -> object:
    """Evaluate ``expr`` on ``memory``; errors become ``UNDEF``."""
    if isinstance(expr, Var):
        return memory.get(expr.name, UNDEF)
    if isinstance(expr, Const):
        return freeze_value(expr.value)
    if not isinstance(expr, Op):  # pragma: no cover - defensive
        return UNDEF

    name = expr.name
    args = expr.args

    # Lazy / short-circuit operations.
    if name == "And" and len(args) == 2:
        left = evaluate(args[0], memory)
        if is_undef(left):
            return UNDEF
        if not truthy(left):
            return left
        return evaluate(args[1], memory)
    if name == "Or" and len(args) == 2:
        left = evaluate(args[0], memory)
        if is_undef(left):
            return UNDEF
        if truthy(left):
            return left
        return evaluate(args[1], memory)
    if name == "ite" and len(args) == 3:
        cond = evaluate(args[0], memory)
        if is_undef(cond):
            return UNDEF
        return evaluate(args[1] if truthy(cond) else args[2], memory)

    values = []
    for arg in args:
        value = evaluate(arg, memory)
        if is_undef(value):
            return UNDEF
        values.append(value)

    fn = lookup(name)
    if fn is None:
        return UNDEF
    try:
        return fn(*values)
    except Exception:  # noqa: BLE001 - student code errors map to ⊥
        return UNDEF
