"""Library of operations understood by the interpreter.

Each entry maps an operation name (as produced by the front-ends) to a plain
Python function over already-evaluated argument values.  The registry is
deliberately open: student programs may call operations that do not exist
(``i.length()`` in the paper's Fig. 8) -- those evaluate to the undefined
value rather than raising.

All functions are pure: they never mutate their arguments.  List-producing
operations always return fresh lists.
"""

from __future__ import annotations

from typing import Callable

from .values import UNDEF, is_undef, values_equal

__all__ = ["LIBRARY", "lookup", "register"]


def _num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _seq(value: object) -> bool:
    return isinstance(value, (list, tuple, str))


def _add(a: object, b: object) -> object:
    if _num(a) and _num(b):
        return a + b
    if isinstance(a, bool) and isinstance(b, bool):
        return int(a) + int(b)
    if isinstance(a, str) and isinstance(b, str):
        return a + b
    if isinstance(a, list) and isinstance(b, list):
        return list(a) + list(b)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return tuple(a) + tuple(b)
    if _num(a) and isinstance(b, bool):
        return a + int(b)
    if isinstance(a, bool) and _num(b):
        return int(a) + b
    return UNDEF


def _sub(a: object, b: object) -> object:
    if _num(a) and _num(b):
        return a - b
    return UNDEF


def _mult(a: object, b: object) -> object:
    if _num(a) and _num(b):
        return a * b
    if isinstance(a, (str, list, tuple)) and isinstance(b, int):
        result = a * b
        return list(result) if isinstance(a, list) else result
    if isinstance(a, int) and isinstance(b, (str, list, tuple)):
        result = b * a
        return list(result) if isinstance(b, list) else result
    return UNDEF


def _div(a: object, b: object) -> object:
    if _num(a) and _num(b):
        if b == 0:
            return UNDEF
        return a / b
    return UNDEF


def _floordiv(a: object, b: object) -> object:
    if _num(a) and _num(b):
        if b == 0:
            return UNDEF
        return a // b
    return UNDEF


def _int_div(a: object, b: object) -> object:
    """C-style integer division (truncation toward zero)."""
    if _num(a) and _num(b):
        if b == 0:
            return UNDEF
        if isinstance(a, int) and isinstance(b, int):
            quotient = abs(a) // abs(b)
            return quotient if (a >= 0) == (b >= 0) else -quotient
        return a / b
    return UNDEF


def _mod(a: object, b: object) -> object:
    if _num(a) and _num(b):
        if b == 0:
            return UNDEF
        return a % b
    if isinstance(a, str):
        try:
            return a % b if not isinstance(b, list) else a % tuple(b)
        except (TypeError, ValueError):
            return UNDEF
    return UNDEF


def _c_mod(a: object, b: object) -> object:
    """C-style remainder (sign follows the dividend)."""
    if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool):
        if b == 0:
            return UNDEF
        remainder = abs(a) % abs(b)
        return remainder if a >= 0 else -remainder
    return _mod(a, b)


def _pow(a: object, b: object) -> object:
    if _num(a) and _num(b):
        try:
            result = a ** b
        except (OverflowError, ZeroDivisionError):
            return UNDEF
        if isinstance(result, complex):
            return UNDEF
        return result
    return UNDEF


def _usub(a: object) -> object:
    if _num(a):
        return -a
    return UNDEF


def _uadd(a: object) -> object:
    if _num(a):
        return +a
    return UNDEF


def _compare(op: Callable[[object, object], bool]) -> Callable[[object, object], object]:
    def compare(a: object, b: object) -> object:
        try:
            return bool(op(a, b))
        except TypeError:
            return UNDEF

    return compare


def _eq(a: object, b: object) -> object:
    return values_equal(a, b)


def _noteq(a: object, b: object) -> object:
    return not values_equal(a, b)


def _not(a: object) -> object:
    if is_undef(a):
        return UNDEF
    return not _truthy(a)


def _truthy(value: object) -> bool:
    if is_undef(value):
        return False
    return bool(value)


def _len(a: object) -> object:
    if _seq(a):
        return len(a)
    return UNDEF


def _range(*args: object) -> object:
    if not all(isinstance(a, int) and not isinstance(a, bool) for a in args):
        return UNDEF
    if len(args) == 1:
        return list(range(args[0]))
    if len(args) == 2:
        return list(range(args[0], args[1]))
    if len(args) == 3:
        if args[2] == 0:
            return UNDEF
        return list(range(args[0], args[1], args[2]))
    return UNDEF


def _list_head(a: object) -> object:
    if isinstance(a, (list, tuple, str)) and len(a) > 0:
        return a[0]
    return UNDEF


def _list_tail(a: object) -> object:
    if isinstance(a, (list, tuple, str)) and len(a) > 0:
        tail = a[1:]
        return list(tail) if isinstance(a, list) else tail
    if isinstance(a, (list, tuple, str)):
        return [] if isinstance(a, list) else a[:0]
    return UNDEF


def _append(a: object, b: object) -> object:
    if isinstance(a, list):
        return list(a) + [b]
    return UNDEF


def _get_element(a: object, b: object) -> object:
    if isinstance(a, (list, tuple, str)) and isinstance(b, int) and not isinstance(b, bool):
        try:
            return a[b]
        except IndexError:
            return UNDEF
    if isinstance(a, dict):
        try:
            return a[b]
        except (KeyError, TypeError):
            return UNDEF
    return UNDEF


def _assign_element(a: object, index: object, value: object) -> object:
    """Functional list update ``a[index] = value`` (returns a new list)."""
    if isinstance(a, list) and isinstance(index, int) and not isinstance(index, bool):
        if -len(a) <= index < len(a):
            out = list(a)
            out[index] = value
            return out
        return UNDEF
    return UNDEF


def _slice(a: object, lo: object, hi: object) -> object:
    if not isinstance(a, (list, tuple, str)):
        return UNDEF
    low = None if lo is None or is_undef(lo) else lo
    high = None if hi is None or is_undef(hi) else hi
    if low is not None and not isinstance(low, int):
        return UNDEF
    if high is not None and not isinstance(high, int):
        return UNDEF
    result = a[low:high]
    return list(result) if isinstance(a, list) else result


def _list_init(*args: object) -> object:
    return list(args)


def _tuple_init(*args: object) -> object:
    return tuple(args)


def _float(a: object) -> object:
    if _num(a) or isinstance(a, bool):
        return float(a)
    if isinstance(a, str):
        try:
            return float(a)
        except ValueError:
            return UNDEF
    return UNDEF


def _int(a: object) -> object:
    if _num(a) or isinstance(a, bool):
        return int(a)
    if isinstance(a, str):
        try:
            return int(a)
        except ValueError:
            return UNDEF
    return UNDEF


def _str(a: object) -> object:
    if is_undef(a):
        return UNDEF
    if isinstance(a, float) and a == int(a):
        return str(a)
    return str(a)


def _bool(a: object) -> object:
    if is_undef(a):
        return UNDEF
    return bool(a)


def _abs(a: object) -> object:
    if _num(a):
        return abs(a)
    return UNDEF


def _round(a: object, *rest: object) -> object:
    if not _num(a):
        return UNDEF
    if rest and isinstance(rest[0], int):
        return round(a, rest[0])
    return round(a)


def _max(*args: object) -> object:
    values = args[0] if len(args) == 1 and isinstance(args[0], (list, tuple)) else args
    try:
        return max(values)
    except (ValueError, TypeError):
        return UNDEF


def _min(*args: object) -> object:
    values = args[0] if len(args) == 1 and isinstance(args[0], (list, tuple)) else args
    try:
        return min(values)
    except (ValueError, TypeError):
        return UNDEF


def _sum(a: object) -> object:
    if isinstance(a, (list, tuple)) and all(_num(v) or isinstance(v, bool) for v in a):
        return sum(a)
    return UNDEF


def _sorted(a: object) -> object:
    if isinstance(a, (list, tuple)):
        try:
            return sorted(a)
        except TypeError:
            return UNDEF
    return UNDEF


def _reversed(a: object) -> object:
    if isinstance(a, (list, tuple, str)):
        result = a[::-1]
        return list(result) if isinstance(a, list) else result
    return UNDEF


def _str_concat(*args: object) -> object:
    parts = []
    for arg in args:
        if is_undef(arg):
            return UNDEF
        parts.append(arg if isinstance(arg, str) else _format_value(arg))
    return "".join(parts)


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _str_format(fmt: object, *args: object) -> object:
    """C ``printf``-style formatting restricted to %d, %f, %c, %s, %%."""
    if not isinstance(fmt, str):
        return UNDEF
    out: list[str] = []
    arg_index = 0
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(fmt):
            return UNDEF
        spec = fmt[i + 1]
        i += 2
        if spec == "%":
            out.append("%")
            continue
        # Skip width/precision modifiers, e.g. %2d, %.2f, %0.3lf.
        modifiers = ""
        while spec in "0123456789.l":
            modifiers += spec
            if i >= len(fmt):
                return UNDEF
            spec = fmt[i]
            i += 1
        if arg_index >= len(args):
            return UNDEF
        value = args[arg_index]
        arg_index += 1
        if is_undef(value):
            return UNDEF
        try:
            if spec == "d":
                out.append(("%" + modifiers + "d") % int(value))
            elif spec == "f":
                out.append(("%" + (modifiers or ".6") + "f") % float(value))
            elif spec == "c":
                if isinstance(value, int):
                    out.append(chr(value))
                else:
                    out.append(str(value)[:1])
            elif spec == "s":
                out.append(str(value))
            else:
                return UNDEF
        except (TypeError, ValueError):
            return UNDEF
    return "".join(out)


def _xrange(*args: object) -> object:
    return _range(*args)


def _enumerate(a: object, *start: object) -> object:
    if not isinstance(a, (list, tuple, str)):
        return UNDEF
    offset = start[0] if start and isinstance(start[0], int) else 0
    return [(offset + i, v) for i, v in enumerate(a)]


def _zip(a: object, b: object) -> object:
    if isinstance(a, (list, tuple, str)) and isinstance(b, (list, tuple, str)):
        return [(x, y) for x, y in zip(a, b)]
    return UNDEF


def _in(a: object, b: object) -> object:
    if isinstance(b, (list, tuple)):
        return any(values_equal(a, item) for item in b)
    if isinstance(b, str) and isinstance(a, str):
        return a in b
    return UNDEF


def _not_in(a: object, b: object) -> object:
    result = _in(a, b)
    if is_undef(result):
        return UNDEF
    return not result


def _pow2(a: object, b: object) -> object:
    return _pow(a, b)


#: Name -> implementation.  Front-ends emit these names; anything absent from
#: the registry evaluates to ``UNDEF``.
LIBRARY: dict[str, Callable[..., object]] = {
    "Add": _add,
    "Sub": _sub,
    "Mult": _mult,
    "Div": _div,
    "IntDiv": _int_div,
    "FloorDiv": _floordiv,
    "Mod": _mod,
    "CMod": _c_mod,
    "Pow": _pow,
    "USub": _usub,
    "UAdd": _uadd,
    "Eq": _eq,
    "NotEq": _noteq,
    "Lt": _compare(lambda a, b: a < b),
    "LtE": _compare(lambda a, b: a <= b),
    "Gt": _compare(lambda a, b: a > b),
    "GtE": _compare(lambda a, b: a >= b),
    "Not": _not,
    "In": _in,
    "NotIn": _not_in,
    "len": _len,
    "range": _range,
    "xrange": _xrange,
    "ListHead": _list_head,
    "ListTail": _list_tail,
    "append": _append,
    "GetElement": _get_element,
    "AssignElement": _assign_element,
    "Slice": _slice,
    "ListInit": _list_init,
    "TupleInit": _tuple_init,
    "float": _float,
    "int": _int,
    "str": _str,
    "bool": _bool,
    "abs": _abs,
    "round": _round,
    "max": _max,
    "min": _min,
    "sum": _sum,
    "sorted": _sorted,
    "reversed": _reversed,
    "StrConcat": _str_concat,
    "StrFormat": _str_format,
    "enumerate": _enumerate,
    "zip": _zip,
    "pow": _pow2,
}


def lookup(name: str) -> Callable[..., object] | None:
    """Return the implementation of ``name`` or ``None`` if unknown."""
    return LIBRARY.get(name)


def register(name: str, fn: Callable[..., object]) -> None:
    """Register (or override) an operation implementation.

    Exposed for tests and for problem specifications that need an extra
    helper available to student code.
    """
    LIBRARY[name] = fn
