"""The computation domain (paper Def. 3.3).

Values are ordinary Python objects (ints, floats, bools, strings, lists,
tuples, ``None``) plus the distinguished undefined value ``UNDEF`` (the
paper's ⊥).  All operations in :mod:`repro.interpreter.libfuncs` are
*functional*: they never mutate their arguments, they return fresh values, and
they return ``UNDEF`` whenever real Python would raise.

Value equality (:func:`values_equal`) is what "take the same values" means for
dynamic equivalence: exact for discrete types, tolerance-based for floats, and
structural for sequences.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["UNDEF", "Undefined", "is_undef", "values_equal", "freeze_value"]

#: Relative tolerance used when comparing floating point trace values.
FLOAT_REL_TOL = 1e-6
FLOAT_ABS_TOL = 1e-9


class Undefined:
    """Singleton undefined value (the paper's ⊥)."""

    _instance: "Undefined | None" = None

    def __new__(cls) -> "Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Undefined)

    def __hash__(self) -> int:
        return hash("⊥-undefined")


UNDEF = Undefined()


def is_undef(value: object) -> bool:
    """Return ``True`` when ``value`` is the undefined value."""
    return isinstance(value, Undefined)


def values_equal(left: object, right: object) -> bool:
    """Structural equality over the computation domain.

    * ``UNDEF`` equals only ``UNDEF``;
    * bools never equal non-bools (so ``True != 1`` even though Python says
      otherwise) -- students returning ``1`` instead of ``True`` must not be
      considered equivalent;
    * ints and floats compare numerically, with a small tolerance when either
      side is a float;
    * lists equal only lists, tuples only tuples, element-wise.
    """
    if is_undef(left) or is_undef(right):
        return is_undef(left) and is_undef(right)
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        if isinstance(left, float) or isinstance(right, float):
            return abs(left - right) <= max(
                FLOAT_ABS_TOL, FLOAT_REL_TOL * max(abs(left), abs(right))
            )
        return left == right
    if isinstance(left, list) or isinstance(right, list):
        if not (isinstance(left, list) and isinstance(right, list)):
            return False
        return _sequences_equal(left, right)
    if isinstance(left, tuple) or isinstance(right, tuple):
        if not (isinstance(left, tuple) and isinstance(right, tuple)):
            return False
        return _sequences_equal(left, right)
    return type(left) is type(right) and left == right


def _sequences_equal(left: Iterable[object], right: Iterable[object]) -> bool:
    left_items = list(left)
    right_items = list(right)
    if len(left_items) != len(right_items):
        return False
    return all(values_equal(a, b) for a, b in zip(left_items, right_items))


def freeze_value(value: object) -> object:
    """Return a snapshot of ``value`` safe to store in a trace.

    Lists are shallow-copied recursively; everything else in the domain is
    immutable already.  Library operations never mutate values in place, so a
    structural copy is sufficient to guarantee that later steps cannot change
    what an earlier trace step recorded.
    """
    if isinstance(value, list):
        return [freeze_value(item) for item in value]
    if isinstance(value, tuple):
        return tuple(freeze_value(item) for item in value)
    return value
