"""One-time compilation of expressions to Python closures (Def. 3.4 fast path).

:func:`repro.interpreter.evaluator.evaluate` re-walks an ``Expr`` tree on
every evaluation: per node it pays an ``isinstance`` dispatch, an operation
name comparison, an argument list build and a library lookup.  Clustering
evaluates every correct program on every case, candidate screening
re-evaluates candidate and reference expressions on every trace visit, and a
warm service request repeats all of it — the same trees, walked millions of
times.

:func:`compile_expr` walks a tree **once** and returns a closure
``fn(memory) -> value`` with all dispatch decided at compile time:

* variables close over their name (one ``memory.get``);
* constants close over their frozen value (list-bearing constants still
  return a fresh copy per call, preserving :func:`~repro.interpreter.values.\
freeze_value`'s snapshot guarantee);
* ``And``/``Or`` short-circuit and return the deciding *operand* (not a
  bool), exactly like Python and :func:`evaluate`;
* ``ite`` evaluates its condition first and only the taken branch;
* every other operation resolves its library function at compile time,
  evaluates arguments left to right with first-``UNDEF``-wins propagation,
  and maps any raised exception to ⊥.

Compiled closures are pure functions of the memory mapping passed in, safe
to share between threads and to cache forever.  :class:`CompileCache`
memoizes them per expression — keyed on structural equality, so with
:func:`repro.model.expr.intern_expr` in play (pools, candidates and cluster
representatives all intern) the cache is global across pools, candidates and
clusters, and a lookup is one dict probe on a cached hash.  The semantics
are *enforced* to match the interpreter: ``tests/test_exec_fastpath.py``
asserts compiled == interpreted on random programs and memories, and
``benchmarks/test_exec_throughput.py`` asserts field-identical traces and
repair outcomes.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

from ..model.expr import Const, Expr, Op, Var
from .libfuncs import lookup
from .values import UNDEF, freeze_value, is_undef

__all__ = ["CompiledExpr", "CompileCache", "compile_expr", "default_compile_cache"]

#: A compiled expression: memory mapping → value in the computation domain.
CompiledExpr = Callable[[Mapping[str, object]], object]


def _contains_list(value: object) -> bool:
    if isinstance(value, list):
        return True
    if isinstance(value, tuple):
        return any(_contains_list(item) for item in value)
    return False


def _undef(_memory: Mapping[str, object]) -> object:
    return UNDEF


def _compile_node(expr: Expr, recurse: Callable[[Expr], CompiledExpr]) -> CompiledExpr:
    """Compile one node, using ``recurse`` for sub-expressions."""
    if isinstance(expr, Var):
        name = expr.name

        def eval_var(memory: Mapping[str, object], _name=name) -> object:
            return memory.get(_name, UNDEF)

        return eval_var

    if isinstance(expr, Const):
        frozen = freeze_value(expr.value)
        if _contains_list(frozen):
            # Mutable payload: hand out a fresh snapshot per evaluation so
            # two trace steps can never alias one list object, exactly as
            # the interpreter does.
            def eval_const_list(_memory: Mapping[str, object], _v=frozen) -> object:
                return freeze_value(_v)

            return eval_const_list

        def eval_const(_memory: Mapping[str, object], _v=frozen) -> object:
            return _v

        return eval_const

    if not isinstance(expr, Op):  # pragma: no cover - defensive, mirrors evaluate
        return _undef

    name = expr.name
    args = expr.args

    if name == "And" and len(args) == 2:
        left, right = recurse(args[0]), recurse(args[1])

        def eval_and(memory: Mapping[str, object]) -> object:
            value = left(memory)
            if is_undef(value):
                return UNDEF
            if not value:
                return value
            return right(memory)

        return eval_and

    if name == "Or" and len(args) == 2:
        left, right = recurse(args[0]), recurse(args[1])

        def eval_or(memory: Mapping[str, object]) -> object:
            value = left(memory)
            if is_undef(value):
                return UNDEF
            if value:
                return value
            return right(memory)

        return eval_or

    if name == "ite" and len(args) == 3:
        cond, then, other = recurse(args[0]), recurse(args[1]), recurse(args[2])

        def eval_ite(memory: Mapping[str, object]) -> object:
            value = cond(memory)
            if is_undef(value):
                return UNDEF
            return then(memory) if value else other(memory)

        return eval_ite

    fn = lookup(name)
    compiled_args = tuple(recurse(arg) for arg in args)

    if fn is None:
        # Unknown at compile time.  The registry is an open API
        # (libfuncs.register may add operations later in a long-lived
        # process), so re-resolve per evaluation instead of baking in ⊥ —
        # a later registration then behaves exactly like the interpreter.
        # Known operations resolve once; *replacing* a registration
        # requires clearing compile caches.
        def eval_unknown_op(memory: Mapping[str, object]) -> object:
            values = []
            for arg in compiled_args:
                value = arg(memory)
                if is_undef(value):
                    return UNDEF
                values.append(value)
            late = lookup(name)
            if late is None:
                return UNDEF
            try:
                return late(*values)
            except Exception:  # noqa: BLE001 - student code errors map to ⊥
                return UNDEF

        return eval_unknown_op

    def eval_op(memory: Mapping[str, object]) -> object:
        values = []
        for arg in compiled_args:
            value = arg(memory)
            if is_undef(value):
                return UNDEF
            values.append(value)
        try:
            return fn(*values)
        except Exception:  # noqa: BLE001 - student code errors map to ⊥
            return UNDEF

    return eval_op


def compile_expr(expr: Expr) -> CompiledExpr:
    """Compile ``expr`` into a closure, without caching.

    Equivalent to ``lambda memory: evaluate(expr, memory)`` for every memory
    (the truthiness tests above are exact: ``UNDEF`` is handled explicitly
    and ``bool(value)`` is what :func:`~repro.interpreter.evaluator.truthy`
    computes for defined values).  Prefer :meth:`CompileCache.fn` — or the
    module default via :func:`default_compile_cache` — so identical
    expressions compile once.
    """
    return _compile_node(expr, compile_expr)


class CompileCache:
    """Memoized expression compiler with hit/miss counters.

    One instance is owned by :class:`repro.engine.cache.RepairCaches`
    (sharing its ``enabled`` flag, so uncached baselines also measure
    uncached compilation) and shared by every batch worker; a module-level
    default (:func:`default_compile_cache`) serves the executor and other
    direct callers.  Keys are expressions themselves — they hash by cached
    structural hash — so interned expressions resolve in O(1) and even
    non-interned structural duplicates share one closure.

    Counters (monotonic; increments are lock-guarded):

    * ``hits`` — closures answered from the memo;
    * ``misses`` — top-level requests that had to compile (one per
      distinct tree while the table holds; with ``enabled=False``, one per
      request);
    * ``nodes_compiled`` — AST nodes *actually* compiled: a subtree
      already in the memo is returned without being re-walked and is not
      re-counted, so this is exactly the tree-walk work performed (and the
      work the memo avoided re-paying).

    Thread safety follows the established cache idiom (see
    :class:`repro.ted.zhang_shasha.TedCache`): table reads and writes are
    single GIL-atomic dict operations with ``setdefault`` keeping one
    winner per key, so concurrent workers are always *correct* — but two
    workers racing on the same uncompiled expression may both count a miss
    and compile twice (one result is discarded).  As with the other cache
    counters, exact counter values are therefore only deterministic for
    single-worker runs, which is what the committed benchmark artifacts
    use.

    The table is size-bounded like the other fast-path memos: at
    ``max_entries`` it is flushed wholesale (closures already handed out
    stay valid), so a long-lived engine cannot grow it forever.
    """

    def __init__(self, enabled: bool = True, max_entries: int = 1 << 16) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self._fns: dict[Expr, CompiledExpr] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.nodes_compiled = 0

    def fn(self, expr: Expr) -> CompiledExpr:
        """Return the (memoized) compiled form of ``expr``."""
        if self.enabled:
            compiled = self._fns.get(expr)
            if compiled is not None:
                with self._lock:
                    self.hits += 1
                return compiled
        with self._lock:
            self.misses += 1
        return self._subfn(expr)

    def _subfn(self, expr: Expr) -> CompiledExpr:
        """Recursion hook: every node, root or subtree, goes through here.

        Interned trees share sub-expression objects, so the closure of a
        shared subtree is compiled once and referenced by every parent —
        without counting sub-lookups as top-level hits/misses.  Nodes are
        counted where they are actually compiled, so ``nodes_compiled``
        stays exact when parts of a tree come from the memo.
        """
        if self.enabled:
            compiled = self._fns.get(expr)
            if compiled is not None:
                return compiled
        with self._lock:
            self.nodes_compiled += 1
        compiled = _compile_node(expr, self._subfn)
        if self.enabled:
            if len(self._fns) >= self.max_entries:
                self._fns.clear()
            # setdefault keeps one winner under concurrent compilation.
            compiled = self._fns.setdefault(expr, compiled)
        return compiled

    # -- reports and maintenance ----------------------------------------------

    def counters(self) -> dict[str, int]:
        """Deterministic counters for reports (no timings)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "nodes_compiled": self.nodes_compiled,
            }

    def entry_counts(self) -> dict[str, int]:
        return {"compiled_exprs": len(self._fns)}

    def clear(self) -> None:
        """Drop all memoized closures (counters are preserved)."""
        with self._lock:
            self._fns.clear()


#: Process-wide default cache used when no engine-owned cache is threaded in
#: (the executor's default, direct ``expressions_match`` calls, tests).
_DEFAULT_CACHE = CompileCache()


def default_compile_cache() -> CompileCache:
    """The process-wide default :class:`CompileCache`."""
    return _DEFAULT_CACHE
