"""Program execution producing traces (paper Def. 3.5).

The executor walks locations from the initial one, performing the parallel
assignment of each location and following the successor chosen by the value
of the ``$cond`` variable.  Execution is bounded by a step limit so that
non-terminating student attempts (a common class of mistakes) still yield a
finite, comparable trace; an optional evaluation-ops budget additionally
bounds total expression work (see :class:`ExecutionLimits`).

Two fast-path mechanisms make :func:`execute` cheap enough for
corpus-scale workloads (docs/ARCHITECTURE.md, "Execution fast path"):

* every update expression is compiled to a closure exactly once per
  program via an :class:`ExecutionPlan` (backed by a
  :class:`~repro.interpreter.compile.CompileCache`, so structurally
  identical expressions across programs share one closure), instead of
  being re-walked interpretively on every visit;
* trace memories are copy-on-write: a step records only the variables its
  location wrote into a shared :class:`~repro.model.trace.TraceMemory`
  changelog, instead of copying the full memory dict twice per step.

Observable semantics are byte-identical to the interpreted path, which is
kept as :func:`execute_interpreted` — the executable specification that
tests and benchmarks compare against, field for field.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..model.expr import VAR_COND, VAR_OUT, VAR_RET, VAR_RETFLAG
from ..model.program import Program
from ..model.trace import StepMemory, Trace, TraceMemory, TraceStep
from .compile import CompileCache, CompiledExpr, default_compile_cache
from .evaluator import evaluate, truthy
from .values import UNDEF, freeze_value, is_undef, values_equal

__all__ = [
    "execute",
    "execute_interpreted",
    "run_on_inputs",
    "ExecutionLimits",
    "ExecutionPlan",
    "returned_value",
    "printed_output",
]

#: Default maximum number of location steps per execution.
DEFAULT_MAX_STEPS = 5000


class ExecutionLimits:
    """Resource limits applied to a single execution.

    Args:
        max_steps: Maximum number of location steps (bounds non-terminating
            control flow).
        max_eval_ops: Optional budget on total expression evaluation work,
            measured in statically counted AST nodes of the update
            expressions each step evaluates.  ``None`` (the default) means
            unbounded.  The step limit alone does not bound work per step —
            one pathological, enormously deep expression inside a loop can
            burn arbitrary time in few steps — so services that must meet a
            deadline can cap total ops instead.  A budgeted execution that
            would exceed the cap stops *before* the offending step and
            returns an aborted trace, exactly like hitting ``max_steps``.
    """

    def __init__(
        self,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_eval_ops: int | None = None,
    ) -> None:
        self.max_steps = max_steps
        self.max_eval_ops = max_eval_ops


class ExecutionPlan:
    """Precompiled per-program execution state.

    For each location: the ``(var, compiled expression)`` pairs of its
    parallel assignment in update order, the statically counted AST node
    total of those expressions (the per-step cost charged against
    :attr:`ExecutionLimits.max_eval_ops`), and its successor pair — plus
    the initial-memory template (every program variable bound to ⊥ and the
    special variables preset), which :func:`execute` copies instead of
    re-deriving the variable set per run.  Build once per program and reuse
    across cases — :func:`run_on_inputs` and
    :func:`repro.core.inputs.program_traces` do.

    A plan snapshots the program's *current* updates and successors;
    callers that mutate a program (the repair decoder edits copies) must
    build a fresh plan.
    """

    __slots__ = ("updates", "written_vars", "step_ops", "successors", "initial_memory")

    def __init__(
        self,
        updates: dict[int, tuple[tuple[str, CompiledExpr], ...]],
        written_vars: dict[int, tuple[str, ...]],
        step_ops: dict[int, int],
        successors: dict[int, "tuple[int | None, int | None, bool]"],
        initial_memory: dict[str, object],
    ) -> None:
        self.updates = updates
        #: Per location, the assigned variable names in update order —
        #: shared by every step taken at the location.
        self.written_vars = written_vars
        self.step_ops = step_ops
        #: ``loc_id -> (on_true, on_false, branching)``.
        self.successors = successors
        #: Template pre-state; copied (never mutated) per execution.
        self.initial_memory = initial_memory

    @classmethod
    def for_program(
        cls, program: Program, cache: CompileCache | None = None
    ) -> "ExecutionPlan":
        """Compile every update expression of ``program`` through ``cache``.

        ``cache`` defaults to the process-wide
        :func:`~repro.interpreter.compile.default_compile_cache`, so plans
        built for structurally overlapping programs (ubiquitous in MOOC
        corpora) share closures.
        """
        if cache is None:
            cache = default_compile_cache()
        updates: dict[int, tuple[tuple[str, CompiledExpr], ...]] = {}
        written_vars: dict[int, tuple[str, ...]] = {}
        step_ops: dict[int, int] = {}
        successors: dict[int, tuple[int | None, int | None, bool]] = {}
        for loc_id, location in program.locations.items():
            updates[loc_id] = tuple(
                (var, cache.fn(expr)) for var, expr in location.updates.items()
            )
            written_vars[loc_id] = tuple(location.updates)
            step_ops[loc_id] = sum(
                expr.size() for expr in location.updates.values()
            )
            on_true = program.successor(loc_id, True)
            on_false = program.successor(loc_id, False)
            successors[loc_id] = (on_true, on_false, on_true != on_false)
        # One construction path for the initial state: the interpreted
        # reference applies the same function per run, so the two executors
        # can never disagree on what a fresh memory contains.
        return cls(
            updates, written_vars, step_ops, successors, _initial_memory(program, {})
        )


def _initial_memory(program: Program, inputs: Mapping[str, object]) -> dict[str, object]:
    memory: dict[str, object] = {}
    for var in program.variables:
        memory[var] = UNDEF
    memory[VAR_OUT] = ""
    memory[VAR_RETFLAG] = False
    memory[VAR_RET] = UNDEF
    memory[VAR_COND] = UNDEF
    for name, value in inputs.items():
        memory[name] = freeze_value(value)
    return memory


def execute(
    program: Program,
    inputs: Mapping[str, object],
    limits: ExecutionLimits | None = None,
    *,
    plan: ExecutionPlan | None = None,
    compile_cache: CompileCache | None = None,
) -> Trace:
    """Execute ``program`` on the input memory ``inputs`` and return a trace.

    Args:
        program: The program model to run.
        inputs: Initial bindings (parameters, ``$stdin``).
        limits: Step / evaluation-ops bounds (defaults apply when omitted).
        plan: Precompiled :class:`ExecutionPlan` for ``program``; built on
            the fly when omitted.  Callers executing one program on many
            inputs should build the plan once.
        compile_cache: Compile cache used when building a plan here
            (ignored when ``plan`` is given); defaults to the process-wide
            cache.
    """
    limits = limits or ExecutionLimits()
    if plan is None:
        plan = ExecutionPlan.for_program(program, cache=compile_cache)
    initial = dict(plan.initial_memory)
    for name, value in inputs.items():
        initial[name] = freeze_value(value)
    memory = TraceMemory(initial)
    # Flat evolving state for O(1) reads during evaluation; the changelog
    # above serves the lazy per-step views.
    current_memory = dict(initial)
    steps: list[TraceStep] = []
    aborted = False
    max_steps = limits.max_steps
    ops_budget = limits.max_eval_ops
    ops_used = 0
    plan_updates = plan.updates
    plan_successors = plan.successors

    current = program.init_loc
    index = 0
    pre_view = StepMemory(memory, -1)
    while current is not None:
        if index >= max_steps:
            aborted = True
            break
        if ops_budget is not None:
            ops_used += plan.step_ops[current]
            if ops_used > ops_budget:
                aborted = True
                break
        updates = plan_updates[current]
        if updates:
            # Parallel assignment: evaluate everything on the pre-state
            # before writing anything.
            computed = [
                (var, freeze_value(fn(current_memory))) for var, fn in updates
            ]
            for var, value in computed:
                memory.write(index, var, value)
                current_memory[var] = value
        written = plan.written_vars[current]
        post_view = StepMemory(memory, index)
        steps.append(
            TraceStep(
                loc_id=current,
                pre=pre_view,
                post=post_view,
                written_vars=written,
            )
        )
        pre_view = post_view
        index += 1
        on_true, on_false, branching = plan_successors[current]
        if branching:
            current = (
                on_true if truthy(current_memory.get(VAR_COND, UNDEF)) else on_false
            )
        else:
            current = on_true

    return Trace(steps, aborted=aborted)


def execute_interpreted(
    program: Program,
    inputs: Mapping[str, object],
    limits: ExecutionLimits | None = None,
) -> Trace:
    """Reference executor: interpreted evaluation, full dict snapshots.

    This is the pre-fast-path implementation, kept as the executable
    specification of Def. 3.5: it re-walks every expression through
    :func:`~repro.interpreter.evaluator.evaluate` and snapshots the whole
    memory twice per step.  ``tests/test_exec_fastpath.py`` and
    ``benchmarks/test_exec_throughput.py`` assert that :func:`execute`
    produces field-identical traces.
    """
    limits = limits or ExecutionLimits()
    memory = _initial_memory(program, inputs)
    steps: list[TraceStep] = []
    aborted = False
    ops_budget = limits.max_eval_ops
    ops_used = 0

    current = program.init_loc
    while current is not None:
        if len(steps) >= limits.max_steps:
            aborted = True
            break
        location = program.locations[current]
        if ops_budget is not None:
            ops_used += sum(expr.size() for expr in location.updates.values())
            if ops_used > ops_budget:
                aborted = True
                break
        pre = dict(memory)
        post = dict(memory)
        for var, expr in location.updates.items():
            post[var] = freeze_value(evaluate(expr, pre))
        steps.append(
            TraceStep(
                loc_id=current,
                pre=pre,
                post=post,
                written_vars=tuple(location.updates),
            )
        )
        memory = post
        if program.is_branching(current):
            branch = truthy(post.get(VAR_COND, UNDEF))
        else:
            branch = True
        current = program.successor(current, branch)

    return Trace(steps, aborted=aborted)


def run_on_inputs(
    program: Program,
    inputs: Iterable[Mapping[str, object]],
    limits: ExecutionLimits | None = None,
    *,
    compile_cache: CompileCache | None = None,
) -> list[Trace]:
    """Execute ``program`` on every input memory and return all traces.

    The execution plan is built once and shared across inputs.
    """
    plan = ExecutionPlan.for_program(program, cache=compile_cache)
    return [execute(program, memory, limits, plan=plan) for memory in inputs]


def returned_value(trace: Trace) -> object:
    """Return the value of the ``$ret`` variable at the end of the trace."""
    return trace.final_value(VAR_RET, UNDEF)


def printed_output(trace: Trace) -> str:
    """Return the accumulated ``$out`` output string (empty if none)."""
    value = trace.final_value(VAR_OUT, "")
    return value if isinstance(value, str) else ""


def result_matches(actual: object, expected: object) -> bool:
    """Compare an observed result against an expected one."""
    return values_equal(actual, expected)


def is_error(value: object) -> bool:
    """Return ``True`` when a result is the undefined value."""
    return is_undef(value)
