"""Program execution producing traces (paper Def. 3.5).

The executor walks locations from the initial one, performing the parallel
assignment of each location and following the successor chosen by the value
of the ``$cond`` variable.  Execution is bounded by a step limit so that
non-terminating student attempts (a common class of mistakes) still yield a
finite, comparable trace.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..model.expr import VAR_COND, VAR_OUT, VAR_RET, VAR_RETFLAG
from ..model.program import Program
from ..model.trace import Trace, TraceStep
from .evaluator import evaluate, truthy
from .values import UNDEF, freeze_value, is_undef, values_equal

__all__ = ["execute", "run_on_inputs", "ExecutionLimits", "returned_value", "printed_output"]

#: Default maximum number of location steps per execution.
DEFAULT_MAX_STEPS = 5000


class ExecutionLimits:
    """Resource limits applied to a single execution."""

    def __init__(self, max_steps: int = DEFAULT_MAX_STEPS) -> None:
        self.max_steps = max_steps


def _initial_memory(program: Program, inputs: Mapping[str, object]) -> dict[str, object]:
    memory: dict[str, object] = {}
    for var in program.variables:
        memory[var] = UNDEF
    memory[VAR_OUT] = ""
    memory[VAR_RETFLAG] = False
    memory[VAR_RET] = UNDEF
    memory[VAR_COND] = UNDEF
    for name, value in inputs.items():
        memory[name] = freeze_value(value)
    return memory


def execute(
    program: Program,
    inputs: Mapping[str, object],
    limits: ExecutionLimits | None = None,
) -> Trace:
    """Execute ``program`` on the input memory ``inputs`` and return a trace."""
    limits = limits or ExecutionLimits()
    memory = _initial_memory(program, inputs)
    steps: list[TraceStep] = []
    aborted = False

    current = program.init_loc
    while current is not None:
        if len(steps) >= limits.max_steps:
            aborted = True
            break
        location = program.locations[current]
        pre = dict(memory)
        post = dict(memory)
        for var, expr in location.updates.items():
            post[var] = freeze_value(evaluate(expr, pre))
        steps.append(TraceStep(loc_id=current, pre=pre, post=post))
        memory = post
        if program.is_branching(current):
            branch = truthy(post.get(VAR_COND, UNDEF))
        else:
            branch = True
        current = program.successor(current, branch)

    return Trace(steps, aborted=aborted)


def run_on_inputs(
    program: Program,
    inputs: Iterable[Mapping[str, object]],
    limits: ExecutionLimits | None = None,
) -> list[Trace]:
    """Execute ``program`` on every input memory and return all traces."""
    return [execute(program, memory, limits) for memory in inputs]


def returned_value(trace: Trace) -> object:
    """Return the value of the ``$ret`` variable at the end of the trace."""
    return trace.final_value(VAR_RET, UNDEF)


def printed_output(trace: Trace) -> str:
    """Return the accumulated ``$out`` output string (empty if none)."""
    value = trace.final_value(VAR_OUT, "")
    return value if isinstance(value, str) else ""


def result_matches(actual: object, expected: object) -> bool:
    """Compare an observed result against an expected one."""
    return values_equal(actual, expected)


def is_error(value: object) -> bool:
    """Return ``True`` when a result is the undefined value."""
    return is_undef(value)
