"""Interpreter over the program model: values, operations, evaluation, execution."""

from .evaluator import evaluate, truthy
from .executor import (
    DEFAULT_MAX_STEPS,
    ExecutionLimits,
    execute,
    printed_output,
    result_matches,
    returned_value,
    run_on_inputs,
)
from .libfuncs import LIBRARY, lookup, register
from .values import UNDEF, Undefined, freeze_value, is_undef, values_equal

__all__ = [
    "evaluate",
    "truthy",
    "execute",
    "run_on_inputs",
    "returned_value",
    "printed_output",
    "result_matches",
    "ExecutionLimits",
    "DEFAULT_MAX_STEPS",
    "LIBRARY",
    "lookup",
    "register",
    "UNDEF",
    "Undefined",
    "is_undef",
    "values_equal",
    "freeze_value",
]
