"""Interpreter over the program model: values, operations, evaluation, execution.

Evaluation has two implementations with enforced-identical semantics: the
interpreted reference (:func:`evaluate`, :func:`execute_interpreted`) and
the compiled fast path (:mod:`repro.interpreter.compile`,
:class:`ExecutionPlan`), which :func:`execute` uses by default.
"""

from .compile import CompileCache, compile_expr, default_compile_cache
from .evaluator import evaluate, truthy
from .executor import (
    DEFAULT_MAX_STEPS,
    ExecutionLimits,
    ExecutionPlan,
    execute,
    execute_interpreted,
    printed_output,
    result_matches,
    returned_value,
    run_on_inputs,
)
from .libfuncs import LIBRARY, lookup, register
from .values import UNDEF, Undefined, freeze_value, is_undef, values_equal

__all__ = [
    "evaluate",
    "truthy",
    "compile_expr",
    "CompileCache",
    "default_compile_cache",
    "execute",
    "execute_interpreted",
    "ExecutionPlan",
    "run_on_inputs",
    "returned_value",
    "printed_output",
    "result_matches",
    "ExecutionLimits",
    "DEFAULT_MAX_STEPS",
    "LIBRARY",
    "lookup",
    "register",
    "UNDEF",
    "Undefined",
    "is_undef",
    "values_equal",
    "freeze_value",
]
