"""The fleet front door: route by problem to supervised worker shards.

A :class:`FleetService` is a drop-in for
:class:`~repro.service.service.RepairService` behind the existing TCP
transport (:class:`~repro.service.server.RepairServer` only needs
``handle_line``): it speaks the same NDJSON protocol on the wire, but
instead of repairing in-process it forwards each ``repair``/``reload``
line verbatim to the :class:`~repro.fleet.supervisor.WorkerSupervisor`
owning that problem's shard, and awaits the worker's response.  Problems
are assigned to ``fleet_size`` shards round-robin in the order their
stores were given; each worker subprocess holds a warm
:class:`~repro.engine.batch.BatchRepairEngine` per hosted problem, so N
shards repair on N cores — the GIL bounds a *shard*, not the fleet.

Failure containment is the point: a crashed, hung or flapping worker is
that shard's problem alone.  The supervisor retries in-flight requests
once on the respawn and otherwise answers with structured retriable
errors (``worker-crashed``, ``shard-unavailable``); the router keeps
routing other shards' traffic throughout, and the client connection never
drops.

``ping``/``stats``/``shutdown`` are answered at the router.  ``stats``
reports the fleet topology and per-shard recovery counters under
``fleet`` and, for every serving shard, the worker's own stats payload
under ``workers`` (gathered concurrently with a timeout, so one wedged
shard cannot stall the op).
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Sequence

from ..clusterstore.store import ClusterStoreError, read_store_header
from ..service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    error_payload,
    parse_request_line,
)
from .faults import FaultPlan  # noqa: F401  (re-exported convenience)
from .supervisor import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_KILL_AFTER,
    BackoffPolicy,
    WorkerSupervisor,
)

__all__ = ["FleetService"]

#: Default shard count for ``serve --fleet``.
DEFAULT_FLEET_SIZE = 2

#: Ceiling on one shard's contribution to a fan-out ``stats`` op.
STATS_TIMEOUT = 10.0


class FleetService:
    """Front router over ``fleet_size`` supervised worker subprocesses.

    Args:
        stores: Cluster-store paths, one per problem; assigned to shards
            round-robin in this order.  Headers are read (and problems
            resolved against the dataset registry) *before* any worker is
            spawned, so a missing/stale store or unknown problem fails
            fast with the same exceptions ``RepairService.add_problem``
            raises.
        fleet_size: Worker subprocesses; capped at ``len(stores)`` (a
            worker with no problems would serve nothing).
        threads: Repair threads inside each worker.
        default_deadline: Per-request deadline each worker applies when a
            request carries none.
        fault_plan_path: Fault-injection plan forwarded to every worker.
        backoff: Restart/breaker policy for every shard.
        kill_after: Hard per-request processing bound before a worker is
            killed as hung (``None`` disables the kill watchdog).
        heartbeat_interval: Idle heartbeat period (``None`` disables).
        spawn_timeout: Per-spawn readiness deadline.

    Thread safety: ``handle_line`` runs on one event loop; supervisors are
    internally locked, and :meth:`close`/:meth:`fleet_counters` may be
    called from any thread.
    """

    def __init__(
        self,
        stores: Sequence[str | Path],
        *,
        fleet_size: int = DEFAULT_FLEET_SIZE,
        threads: int = 1,
        default_deadline: float | None = None,
        fault_plan_path: str | Path | None = None,
        backoff: BackoffPolicy | None = None,
        kill_after: float | None = DEFAULT_KILL_AFTER,
        heartbeat_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL,
        spawn_timeout: float = 30.0,
    ) -> None:
        if not stores:
            raise ValueError("a fleet needs at least one cluster store")
        if fleet_size < 1:
            raise ValueError(f"fleet_size must be >= 1, got {fleet_size}")
        from ..datasets import get_problem

        names: list[str] = []
        for store in stores:
            header = read_store_header(store)
            if not header.is_current:
                raise ClusterStoreError(
                    f"cluster store {store} has format version "
                    f"{header.format_version}; rebuild or migrate it before serving"
                )
            name = header.problem
            if name is None:
                raise ValueError(f"cluster store {store} records no problem name")
            if name in names:
                raise ValueError(f"problem {name!r} appears in more than one store")
            get_problem(name)  # fail fast on unregistered problems, like add_problem
            names.append(name)

        self.fleet_size = min(fleet_size, len(stores))
        shard_stores: list[list[Path]] = [[] for _ in range(self.fleet_size)]
        shard_names: list[list[str]] = [[] for _ in range(self.fleet_size)]
        for index, (store, name) in enumerate(zip(stores, names)):
            shard_stores[index % self.fleet_size].append(Path(store))
            shard_names[index % self.fleet_size].append(name)
        self._shard_of = {
            name: shard
            for shard, shard_problem_names in enumerate(shard_names)
            for name in shard_problem_names
        }
        self._problem_names = names
        self.supervisors = [
            WorkerSupervisor(
                shard,
                shard_stores[shard],
                threads=threads,
                deadline=default_deadline,
                fault_plan_path=fault_plan_path,
                backoff=backoff,
                kill_after=kill_after,
                heartbeat_interval=heartbeat_interval,
                spawn_timeout=spawn_timeout,
            )
            for shard in range(self.fleet_size)
        ]
        self._shard_problems = shard_names
        for supervisor in self.supervisors:
            supervisor.start()

    # -- lifecycle ----------------------------------------------------------------

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until every shard is serving (or terminally down)."""
        return all(supervisor.wait_ready(timeout) for supervisor in self.supervisors)

    def close(self, drain_timeout: float = 5.0) -> None:
        """Stop every shard gracefully (concurrently, bounded by the timeout)."""
        import threading

        threads = [
            threading.Thread(target=supervisor.stop, args=(drain_timeout,))
            for supervisor in self.supervisors
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # -- introspection ------------------------------------------------------------

    def problems(self) -> list[str]:
        """Hosted problem names, in store order (parity with RepairService)."""
        return list(self._problem_names)

    def shard_for(self, problem: str) -> WorkerSupervisor:
        return self.supervisors[self._shard_of[problem]]

    def fleet_counters(self) -> dict:
        """Aggregated recovery counters across shards (deterministic order)."""
        totals: dict[str, int] = {}
        for supervisor in self.supervisors:
            for key, value in supervisor.counters.items():
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def _fleet_stats(self) -> dict:
        return {
            "size": self.fleet_size,
            "shards": {
                str(shard): {
                    "problems": self._shard_problems[shard],
                    **supervisor.describe(),
                }
                for shard, supervisor in enumerate(self.supervisors)
            },
            "totals": self.fleet_counters(),
        }

    # -- request handling ---------------------------------------------------------

    async def handle_line(self, line: str) -> dict:
        """Parse one wire line, route it, and await the answer; never raises."""
        try:
            request = parse_request_line(line)
        except ProtocolError as exc:
            return error_payload(exc.code, exc.message, exc.request_id)
        try:
            if request.op == "ping":
                return self._base_response(request, protocol=PROTOCOL_VERSION)
            if request.op == "shutdown":
                return self._base_response(request)
            if request.op == "stats":
                return await self._handle_stats(request)
            # repair / reload: forward the original line verbatim — the
            # worker's RepairService re-validates and answers with ids,
            # revisions and statuses exactly as the single-process daemon
            # would.
            supervisor = self._resolve(request)
            future = supervisor.submit(line, request_id=request.request_id)
            return await asyncio.wrap_future(future)
        except ProtocolError as exc:
            return error_payload(exc.code, exc.message, request.request_id)
        except Exception as exc:  # noqa: BLE001 - a request must never kill the loop
            return error_payload(
                "internal", f"{type(exc).__name__}: {exc}", request.request_id
            )

    def _resolve(self, request: Request) -> WorkerSupervisor:
        problem = request.problem
        if problem is None:
            if len(self._problem_names) == 1:
                problem = self._problem_names[0]
            else:
                raise ProtocolError(
                    "bad-request",
                    "request names no problem and the fleet hosts "
                    f"{len(self._problem_names)} — pass 'problem'",
                    request.request_id,
                )
        if problem not in self._shard_of:
            raise ProtocolError(
                "unknown-problem",
                f"problem {problem!r} is not served here "
                f"(hosting: {', '.join(sorted(self._shard_of))})",
                request.request_id,
            )
        return self.shard_for(problem)

    async def _handle_stats(self, request: Request) -> dict:
        """Router topology plus each serving shard's own stats payload."""

        async def shard_stats(supervisor: WorkerSupervisor) -> tuple[str, dict]:
            key = str(supervisor.worker_id)
            if supervisor.state != "serving":
                return key, {"error": f"shard is {supervisor.state}"}
            future = supervisor.submit('{"op": "stats"}', internal=True)
            try:
                payload = await asyncio.wait_for(
                    asyncio.wrap_future(future), STATS_TIMEOUT
                )
            except asyncio.TimeoutError:
                return key, {"error": "shard did not answer within the stats timeout"}
            return key, payload

        gathered = await asyncio.gather(
            *(shard_stats(supervisor) for supervisor in self.supervisors)
        )
        return self._base_response(
            request,
            protocol=PROTOCOL_VERSION,
            fleet=self._fleet_stats(),
            workers=dict(gathered),
        )

    @staticmethod
    def _base_response(request: Request, **fields) -> dict:
        response: dict = {"ok": True, "op": request.op}
        if request.request_id is not None:
            response["id"] = request.request_id
        response.update(fields)
        return response
