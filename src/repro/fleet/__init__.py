"""Fault-tolerant multi-process serving: router, supervisors, workers.

The single-process daemon (:mod:`repro.service`) runs untrusted student
programs on the serving path with the GIL capping throughput at one core;
one pathological submission can stall the process for everyone.  This
package is the robustness-first router/worker split:

* :mod:`repro.fleet.router` — :class:`FleetService`, the front process:
  speaks the unchanged NDJSON protocol and routes by problem to shards;
* :mod:`repro.fleet.supervisor` — :class:`WorkerSupervisor` /
  :class:`BackoffPolicy`: worker lifecycle, heartbeats, kill deadlines,
  retry-once crash recovery, exponential-backoff restarts and the
  circuit breaker;
* :mod:`repro.fleet.worker` — the dumb subprocess entrypoint
  (``python -m repro.fleet.worker``), a warm
  :class:`~repro.service.service.RepairService` behind an NDJSON
  stdin/stdout loop;
* :mod:`repro.fleet.faults` — :class:`FaultPlan`, the deterministic
  fault-injection layer every failure mode above is tested through.

Invariant the whole package is built around: **no lost requests** — every
request admitted by the router resolves to a repair, a ``timeout``, or a
structured (usually retriable) error, regardless of which worker died
when.  ``repro-clara serve --fleet N`` is the CLI entry point;
``docs/SERVICE.md`` ("Fleet operations") is the operator guide.

Dependency direction: ``fleet → service → engine → core``; nothing below
imports this package.
"""

from .faults import Fault, FaultPlan, FaultPlanError
from .router import FleetService
from .supervisor import BackoffPolicy, WorkerSupervisor

__all__ = [
    "BackoffPolicy",
    "Fault",
    "FaultPlan",
    "FaultPlanError",
    "FleetService",
    "WorkerSupervisor",
]
