"""Deterministic fault injection for the worker fleet.

Every failure mode the supervisor must survive — a worker crashing
mid-request, hanging past its kill deadline, or responding slowly — is
driven by a :class:`FaultPlan`: a list of rules a worker consults *before*
handling each request.  Faults key on deterministic coordinates only —
which worker, which process incarnation (0 = first spawn, 1 = first
respawn, ...), which op, and the 0-based ordinal of that op within the
incarnation — never on wall-clock time or randomness, so a test or soak
run that replays the same request stream observes the same crashes, kills
and retries every time (the recovery counters in ``results/fleet_soak.json``
are byte-stable because of this).

Plans serialise to a small JSON document (``repro-clara serve
--fault-plan plan.json`` hands the path to every worker it spawns)::

    {"faults": [
        {"worker": 0, "incarnation": 0, "op": "repair", "request": 3,
         "action": "crash", "exit_code": 9},
        {"worker": 0, "incarnation": 1, "request": 4,
         "action": "hang", "seconds": 3600},
        {"worker": 1, "request": 2, "action": "delay", "seconds": 0.05}
    ]}

``worker`` and ``incarnation`` may be omitted (match any); ``op``
defaults to ``repair``.  An omitted ``incarnation`` makes a fault fire in
*every* incarnation — the recipe for a flapping worker that trips the
circuit breaker.

Actions:

``crash``
    ``os._exit(exit_code)`` before answering — the hard-crash shape
    (no cleanup, pending requests stranded), indistinguishable from a
    SIGKILL to the supervisor.
``hang``
    Sleep ``seconds`` (default one hour) before proceeding — far past any
    kill deadline, so the watchdog's SIGKILL always wins.
``delay``
    Sleep ``seconds`` then answer normally — exercises slow-worker paths
    without a death.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Fault", "FaultPlan", "FaultPlanError", "ACTIONS"]

#: The supported fault actions.
ACTIONS = ("crash", "hang", "delay")

#: Default sleep for ``hang`` — far beyond any sane kill deadline.
DEFAULT_HANG_SECONDS = 3600.0

#: Default worker exit status for ``crash`` (an arbitrary nonzero value
#: distinct from the usage-error exits the worker CLI uses).
DEFAULT_EXIT_CODE = 23


class FaultPlanError(ValueError):
    """A fault-plan document that cannot be interpreted."""


@dataclass(frozen=True)
class Fault:
    """One injection rule.

    Attributes:
        action: One of :data:`ACTIONS`.
        request: 0-based ordinal among this incarnation's requests of
            ``op``.
        worker: Worker id the rule applies to; ``None`` matches any.
        incarnation: Process incarnation (0 = first spawn); ``None``
            matches every incarnation — the flapping-worker shape.
        op: The request op counted and matched (default ``repair``).
        seconds: Sleep duration for ``hang``/``delay``.
        exit_code: Process exit status for ``crash``.
    """

    action: str
    request: int
    worker: int | None = None
    incarnation: int | None = None
    op: str = "repair"
    seconds: float = DEFAULT_HANG_SECONDS
    exit_code: int = DEFAULT_EXIT_CODE

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FaultPlanError(
                f"unknown fault action {self.action!r} (expected one of {', '.join(ACTIONS)})"
            )
        if self.request < 0:
            raise FaultPlanError(f"fault request ordinal must be >= 0, got {self.request}")

    def matches(self, *, worker: int, incarnation: int, op: str, ordinal: int) -> bool:
        return (
            (self.worker is None or self.worker == worker)
            and (self.incarnation is None or self.incarnation == incarnation)
            and self.op == op
            and self.request == ordinal
        )

    def to_json(self) -> dict:
        payload: dict = {"action": self.action, "request": self.request, "op": self.op}
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.incarnation is not None:
            payload["incarnation"] = self.incarnation
        if self.action in ("hang", "delay"):
            payload["seconds"] = self.seconds
        if self.action == "crash":
            payload["exit_code"] = self.exit_code
        return payload

    @classmethod
    def from_json(cls, payload: object) -> "Fault":
        if not isinstance(payload, dict):
            raise FaultPlanError("each fault must be a JSON object")
        unknown = set(payload) - {
            "action", "request", "worker", "incarnation", "op", "seconds", "exit_code",
        }
        if unknown:
            raise FaultPlanError(f"unknown fault fields: {', '.join(sorted(unknown))}")
        try:
            return cls(
                action=payload["action"],
                request=int(payload["request"]),
                worker=None if payload.get("worker") is None else int(payload["worker"]),
                incarnation=(
                    None
                    if payload.get("incarnation") is None
                    else int(payload["incarnation"])
                ),
                op=payload.get("op", "repair"),
                seconds=float(payload.get("seconds", DEFAULT_HANG_SECONDS)),
                exit_code=int(payload.get("exit_code", DEFAULT_EXIT_CODE)),
            )
        except KeyError as exc:
            raise FaultPlanError(f"fault is missing the {exc.args[0]!r} field") from exc
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault: {exc}") from exc


class FaultPlan:
    """An ordered set of :class:`Fault` rules; the empty plan injects nothing."""

    def __init__(self, faults: "tuple[Fault, ...] | list[Fault]" = ()) -> None:
        self.faults = tuple(faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def lookup(
        self, *, worker: int, incarnation: int, op: str, ordinal: int
    ) -> Fault | None:
        """The first rule matching this request, or ``None``."""
        for fault in self.faults:
            if fault.matches(worker=worker, incarnation=incarnation, op=op, ordinal=ordinal):
                return fault
        return None

    # -- serialisation -------------------------------------------------------------

    def to_json(self) -> dict:
        return {"faults": [fault.to_json() for fault in self.faults]}

    @classmethod
    def from_json(cls, payload: object) -> "FaultPlan":
        if not isinstance(payload, dict) or not isinstance(payload.get("faults"), list):
            raise FaultPlanError(
                "a fault plan is a JSON object with a 'faults' list"
            )
        return cls(tuple(Fault.from_json(entry) for entry in payload["faults"]))

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_json(payload)
