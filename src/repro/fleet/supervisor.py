"""Worker lifecycle supervision: spawn, watch, kill, restart, give up.

A :class:`WorkerSupervisor` owns one shard's worker subprocess
(:mod:`repro.fleet.worker`) end to end:

* **Handshake** — queued requests are held until the worker's ready frame
  arrives; a worker that never becomes ready within ``spawn_timeout`` is
  killed and counted as a crash.
* **FIFO correlation** — requests are written to the worker's stdin in
  submission order and responses matched to them by order, so the wire
  needs no envelope format and the worker stays a dumb loop.
* **Kill deadline** — a watchdog SIGKILLs the worker when the request at
  the head of the FIFO has been *processing* (head-of-queue, not merely
  queued) longer than ``kill_after`` — the hard wall-clock bound on a hung
  worker.
* **Heartbeats** — when idle for ``heartbeat_interval``, the watchdog
  sends an internal ``ping`` through the normal FIFO; a worker hung while
  idle therefore also trips the kill deadline instead of being discovered
  by the next unlucky client.
* **Crash recovery** — EOF on the worker's stdout (crash, SIGKILL, lost
  pipe) fails nothing immediately: requests in flight are re-queued for
  exactly one retry on the respawned worker, and only a request whose
  retry *also* dies is answered with a structured, retriable
  ``worker-crashed`` error.  The zero-lost-request invariant: every
  submitted future resolves with a response dict, always.
* **Backoff and circuit breaker** — respawns are delayed exponentially
  (:class:`BackoffPolicy`), and after ``max_strikes`` consecutive deaths
  without a single served response in between, the breaker opens: the
  shard is marked unavailable and every request is shed instantly with a
  retriable ``shard-unavailable`` error while other shards keep serving.
  Strikes reset on any successful response, so a worker that crashes
  rarely under real traffic never trips the breaker.

Thread safety: all public methods may be called from any thread; internal
state is guarded by one condition variable shared by the writer, reader
and watchdog threads.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..service.protocol import error_payload

__all__ = ["BackoffPolicy", "READY_OP", "WorkerSupervisor"]

#: The op of the handshake frame a worker emits once it is serving.  Lives
#: here (not in :mod:`repro.fleet.worker`) so that importing the package
#: never imports the worker module — ``python -m repro.fleet.worker`` must
#: be its first import, or runpy warns about double execution.
READY_OP = "_worker-ready"

#: Fallback kill deadline (seconds a request may process before the worker
#: is presumed hung).  Generous: repairs are sub-second, store opens are
#: O(header).
DEFAULT_KILL_AFTER = 60.0

#: Default idle interval between watchdog heartbeat pings.
DEFAULT_HEARTBEAT_INTERVAL = 5.0


@dataclass(frozen=True)
class BackoffPolicy:
    """Restart backoff and circuit-breaker thresholds for one shard.

    Attributes:
        base: Delay before the first respawn, in seconds.
        factor: Multiplier per consecutive crash.
        max_delay: Ceiling on a single respawn delay.
        max_strikes: Consecutive worker deaths (with no served response in
            between) after which the breaker opens and the shard is marked
            unavailable instead of respawning again.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    max_strikes: int = 3

    def delay(self, strike: int) -> float:
        """Respawn delay after the ``strike``-th consecutive crash (0-based)."""
        return min(self.max_delay, self.base * self.factor ** max(0, strike))

    def budget(self) -> float:
        """Worst-case total backoff sleep before the breaker can open."""
        return sum(self.delay(strike) for strike in range(self.max_strikes))


class _Pending:
    """One submitted request riding the supervisor's queues."""

    __slots__ = ("line", "request_id", "future", "internal", "retried", "started")

    def __init__(self, line: str, request_id: object, future: Future, internal: bool) -> None:
        self.line = line
        self.request_id = request_id
        self.future = future
        self.internal = internal
        self.retried = False
        #: When this request reached the head of the FIFO (i.e. started
        #: processing); the kill deadline is measured from here.
        self.started: float | None = None


class WorkerSupervisor:
    """Supervise one worker subprocess serving a shard of problems.

    Args:
        worker_id: Shard index (stable; appears in errors, stats, faults).
        stores: Cluster-store paths the worker hosts.
        threads: Repair threads inside the worker process.
        deadline: Default per-request deadline forwarded to the worker.
        fault_plan_path: Optional fault-injection plan file (tests/soak).
        backoff: Restart/breaker policy.
        kill_after: Hard wall-clock bound on one request's processing time
            before the worker is SIGKILLed; ``None`` disables the watchdog
            kill (a hung worker then stalls its shard forever — only for
            tests).
        heartbeat_interval: Idle seconds between watchdog pings; ``None``
            disables heartbeats.
        spawn_timeout: Seconds a spawned process gets to emit its ready
            frame before being killed (counts as a crash).
        python: Interpreter for the worker processes.
    """

    def __init__(
        self,
        worker_id: int,
        stores: Sequence[str | Path],
        *,
        threads: int = 1,
        deadline: float | None = None,
        fault_plan_path: str | Path | None = None,
        backoff: BackoffPolicy | None = None,
        kill_after: float | None = DEFAULT_KILL_AFTER,
        heartbeat_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL,
        spawn_timeout: float = 30.0,
        python: str = sys.executable,
    ) -> None:
        self.worker_id = worker_id
        self.stores = [Path(store) for store in stores]
        self.threads = threads
        self.deadline = deadline
        self.fault_plan_path = Path(fault_plan_path) if fault_plan_path else None
        self.backoff = backoff or BackoffPolicy()
        self.kill_after = kill_after
        self.heartbeat_interval = heartbeat_interval
        self.spawn_timeout = spawn_timeout
        self.python = python

        self._cond = threading.Condition()
        self._state = "stopped"  # starting | serving | restarting | unavailable | stopped
        self._stopping = False
        self._proc: subprocess.Popen | None = None
        self._incarnation = -1
        self._pid: int | None = None
        self._strikes = 0
        self._outbox: deque[_Pending] = deque()
        self._pending: deque[_Pending] = deque()
        self._last_activity = time.monotonic()
        self._reader: threading.Thread | None = None
        self._writer: threading.Thread | None = None
        self._watchdog: threading.Thread | None = None
        self.counters = {
            "crashes": 0,
            "kills": 0,
            "restarts": 0,
            "retries": 0,
            "shed": 0,
            "served": 0,
        }

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Spawn incarnation 0 and the writer/watchdog threads (non-blocking)."""
        with self._cond:
            if self._state != "stopped" or self._stopping:
                raise RuntimeError(f"worker {self.worker_id} already started")
        self._writer = threading.Thread(
            target=self._write_loop, name=f"fleet-writer-{self.worker_id}", daemon=True
        )
        self._writer.start()
        if self.kill_after is not None or self.heartbeat_interval is not None:
            self._watchdog = threading.Thread(
                target=self._watch_loop, name=f"fleet-watchdog-{self.worker_id}", daemon=True
            )
            self._watchdog.start()
        self._spawn(0)
        ready_watch = threading.Thread(
            target=self._await_ready, args=(0,), daemon=True
        )
        ready_watch.start()

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the shard is serving (or terminally unavailable)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._state in ("serving", "unavailable", "stopped"), timeout
            )

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful stop: close stdin, let the worker drain, then kill.

        Queued-but-unsent requests are answered with a retriable
        ``draining`` error; requests already on the worker's stdin get
        their responses (the worker finishes buffered lines on EOF) unless
        the drain timeout expires first.
        """
        with self._cond:
            if self._stopping:
                return
            self._stopping = True
            while self._outbox:
                self._resolve(self._outbox.popleft(), self._draining_error)
            proc = self._proc
            self._cond.notify_all()
        if proc is not None:
            try:
                if proc.stdin is not None:
                    proc.stdin.close()
            except OSError:
                pass
            try:
                proc.wait(timeout=drain_timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        reader = self._reader
        if reader is not None:
            reader.join(timeout=drain_timeout)
        with self._cond:
            # A stop before any spawn (or after the breaker opened) has no
            # reader to run the EOF path; fail whatever is left here.
            while self._pending:
                self._resolve(self._pending.popleft(), self._draining_error)
            self._state = "stopped"
            self._cond.notify_all()

    # -- submission ---------------------------------------------------------------

    def submit(
        self, line: str, *, request_id: object = None, internal: bool = False
    ) -> "Future[dict]":
        """Queue one raw request line; the future resolves to a response dict.

        Never raises and never leaves the future unresolved — shed and
        draining states resolve it immediately with a structured error.
        """
        future: Future = Future()
        pend = _Pending(line, request_id, future, internal)
        with self._cond:
            if self._state == "unavailable":
                if not internal:
                    self.counters["shed"] += 1
                self._resolve(pend, self._unavailable_error)
                return future
            if self._stopping or self._state == "stopped":
                self._resolve(pend, self._draining_error)
                return future
            self._outbox.append(pend)
            self._last_activity = time.monotonic()
            self._cond.notify_all()
        return future

    # -- introspection ------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def pid(self) -> int | None:
        """PID of the current worker incarnation (None until first ready)."""
        return self._pid

    @property
    def incarnation(self) -> int:
        return self._incarnation

    def describe(self) -> dict:
        """Deterministic-by-construction shard status for the stats op."""
        with self._cond:
            return {
                "state": self._state,
                "pid": self._pid,
                "incarnation": self._incarnation,
                "strikes": self._strikes,
                "queued": len(self._outbox) + len(self._pending),
                "counters": dict(sorted(self.counters.items())),
            }

    # -- spawn / respawn ----------------------------------------------------------

    def _command(self, incarnation: int) -> list[str]:
        command = [self.python, "-m", "repro.fleet.worker"]
        for store in self.stores:
            command += ["--store", str(store)]
        command += [
            "--worker-id", str(self.worker_id),
            "--incarnation", str(incarnation),
            "--threads", str(self.threads),
        ]
        if self.deadline is not None:
            command += ["--deadline", str(self.deadline)]
        if self.fault_plan_path is not None:
            command += ["--fault-plan", str(self.fault_plan_path)]
        return command

    def _environment(self) -> dict:
        env = dict(os.environ)
        # The worker must import the same repro package this process runs,
        # whether or not it was pip-installed.
        src = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        return env

    def _spawn(self, incarnation: int) -> None:
        proc = subprocess.Popen(
            self._command(incarnation),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # worker tracebacks go to the operator's console
            env=self._environment(),
        )
        with self._cond:
            if self._stopping:
                # A stop raced the respawn; do not adopt the new process.
                proc.kill()
                proc.wait()
                return
            self._proc = proc
            self._incarnation = incarnation
            self._state = "starting"
            self._cond.notify_all()
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(proc, incarnation),
            name=f"fleet-reader-{self.worker_id}-{incarnation}",
            daemon=True,
        )
        self._reader.start()

    def _await_ready(self, incarnation: int) -> None:
        """Kill a spawn that never handshakes; the EOF path counts the crash."""
        with self._cond:
            ready = self._cond.wait_for(
                lambda: self._stopping
                or self._incarnation != incarnation
                or self._state != "starting",
                self.spawn_timeout,
            )
            proc = self._proc if self._incarnation == incarnation else None
        if not ready and proc is not None:
            proc.kill()

    def _restart(self, strike: int) -> None:
        time.sleep(self.backoff.delay(strike))
        with self._cond:
            if self._stopping or self._state != "restarting":
                return
            self.counters["restarts"] += 1
            incarnation = self._incarnation + 1
        self._spawn(incarnation)
        self._await_ready(incarnation)

    # -- worker I/O threads -------------------------------------------------------

    def _write_loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._stopping
                    or (self._outbox and self._state == "serving")
                )
                if self._stopping:
                    return
                pend = self._outbox.popleft()
                self._pending.append(pend)
                if len(self._pending) == 1:
                    pend.started = time.monotonic()
                self._last_activity = time.monotonic()
                proc = self._proc
            try:
                assert proc is not None and proc.stdin is not None
                proc.stdin.write(pend.line.encode("utf-8") + b"\n")
                proc.stdin.flush()
            except (OSError, ValueError, AssertionError):
                # The worker died under the write; pend already sits in
                # the pending FIFO, so the EOF path retries or fails it.
                pass

    def _read_loop(self, proc: subprocess.Popen, incarnation: int) -> None:
        assert proc.stdout is not None
        for raw in iter(proc.stdout.readline, b""):
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                continue  # stray non-JSON output must not desync the FIFO
            if not isinstance(payload, dict):
                continue
            if payload.get("op") == READY_OP:
                with self._cond:
                    if self._incarnation == incarnation and not self._stopping:
                        self._pid = payload.get("pid")
                        self._state = "serving"
                        self._cond.notify_all()
                continue
            with self._cond:
                if not self._pending:
                    continue
                pend = self._pending.popleft()
                if self._pending:
                    self._pending[0].started = time.monotonic()
                self._last_activity = time.monotonic()
                self._strikes = 0
                if not pend.internal:
                    self.counters["served"] += 1
                self._resolve(pend, lambda _p: payload)
        proc.wait()
        self._handle_exit(incarnation)

    def _handle_exit(self, incarnation: int) -> None:
        with self._cond:
            if self._incarnation != incarnation:
                return
            if self._stopping:
                while self._pending:
                    self._resolve(self._pending.popleft(), self._draining_error)
                self._state = "stopped"
                self._cond.notify_all()
                return
            self.counters["crashes"] += 1
            self._strikes += 1
            requeue: list[_Pending] = []
            while self._pending:
                pend = self._pending.popleft()
                if pend.internal:
                    # Heartbeats have no client; drop them silently (the
                    # future is resolved for hygiene, nobody awaits it).
                    self._resolve(pend, self._crashed_error)
                elif pend.retried:
                    self._resolve(pend, self._crashed_error)
                else:
                    pend.retried = True
                    pend.started = None
                    requeue.append(pend)
            if self._strikes >= self.backoff.max_strikes:
                self._state = "unavailable"
                for pend in requeue:
                    self._resolve(pend, self._crashed_error)
                while self._outbox:
                    pend = self._outbox.popleft()
                    if not pend.internal:
                        self.counters["shed"] += 1
                    self._resolve(pend, self._unavailable_error)
            else:
                self.counters["retries"] += len(requeue)
                for pend in reversed(requeue):
                    self._outbox.appendleft(pend)
                self._state = "restarting"
                strike = self._strikes - 1
                threading.Thread(
                    target=self._restart, args=(strike,), daemon=True
                ).start()
            self._cond.notify_all()

    def _watch_loop(self) -> None:
        bounds = [b for b in (self.kill_after, self.heartbeat_interval) if b is not None]
        poll = max(0.01, min(0.05, *[b / 5 for b in bounds]))
        while True:
            kill_proc = None
            heartbeat = False
            with self._cond:
                if self._stopping or self._state == "unavailable":
                    return
                now = time.monotonic()
                if (
                    self.kill_after is not None
                    and self._state == "serving"
                    and self._pending
                    and self._pending[0].started is not None
                    and now - self._pending[0].started > self.kill_after
                ):
                    kill_proc = self._proc
                    self.counters["kills"] += 1
                elif (
                    self.heartbeat_interval is not None
                    and self._state == "serving"
                    and not self._pending
                    and not self._outbox
                    and now - self._last_activity >= self.heartbeat_interval
                ):
                    heartbeat = True
            if kill_proc is not None:
                try:
                    kill_proc.kill()
                except OSError:
                    pass
            elif heartbeat:
                self.submit(
                    json.dumps({"op": "ping", "id": f"_heartbeat-{self.worker_id}"}),
                    internal=True,
                )
            time.sleep(poll)

    # -- error payloads -----------------------------------------------------------

    @staticmethod
    def _resolve(pend: _Pending, payload_for) -> None:
        if not pend.future.done():
            pend.future.set_result(payload_for(pend))

    def _crashed_error(self, pend: _Pending) -> dict:
        return error_payload(
            "worker-crashed",
            f"worker shard {self.worker_id} died while handling this request "
            "(already retried once on the respawn); retry after a backoff",
            pend.request_id,
        )

    def _unavailable_error(self, pend: _Pending) -> dict:
        return error_payload(
            "shard-unavailable",
            f"worker shard {self.worker_id} is unavailable (circuit breaker "
            f"open after {self._strikes} consecutive crashes); other shards "
            "keep serving — retry later",
            pend.request_id,
        )

    def _draining_error(self, pend: _Pending) -> dict:
        return error_payload(
            "draining",
            f"worker shard {self.worker_id} is shutting down",
            pend.request_id,
        )
