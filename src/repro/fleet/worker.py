"""The fleet worker: one supervised subprocess, one warm engine per problem.

Run as ``python -m repro.fleet.worker --store <store> [--store ...]``.  A
worker is deliberately dumb: it wraps a plain
:class:`~repro.service.service.RepairService` (the same object the
single-process daemon uses) in a synchronous NDJSON loop over
stdin/stdout — one request line in, one response line out, in order.  All
supervision intelligence (health checks, kill deadlines, restarts, the
circuit breaker) lives in the parent's
:class:`~repro.fleet.supervisor.WorkerSupervisor`; the pipe pair is the
whole protocol, so a worker that dies mid-request simply goes quiet and
the supervisor observes EOF.

Handshake: the first line a healthy worker writes is a ready frame ::

    {"ok": true, "op": "_worker-ready", "worker": 0, "incarnation": 0,
     "pid": 12345, "problems": ["derivatives"]}

(an op outside the public protocol's namespace, so it can never collide
with a response).  The supervisor holds queued requests until it arrives.

Requests are processed strictly in order on one thread — per-shard
serialisation is the concurrency model (cross-problem parallelism comes
from running many workers), and it is what lets the supervisor correlate
responses to requests by FIFO order with no envelope format on the wire.

A configured :class:`~repro.fleet.faults.FaultPlan` is consulted *before*
each request is handled; ``crash`` calls ``os._exit`` (no cleanup — the
hard-crash shape), ``hang``/``delay`` sleep first.  EOF on stdin is the
graceful-stop signal: finish buffered requests, flush, exit 0.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

from ..clusterstore.store import ClusterStoreError
from ..service.service import RepairService
from .faults import FaultPlan, FaultPlanError
from .supervisor import READY_OP

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-clara-worker",
        description="Fleet worker subprocess (NDJSON over stdin/stdout); "
        "spawned by the fleet supervisor, not meant to be run by hand.",
    )
    parser.add_argument(
        "--store", action="append", required=True, dest="stores",
        help="cluster store for one hosted problem; repeatable",
    )
    parser.add_argument("--worker-id", type=int, default=0)
    parser.add_argument(
        "--incarnation", type=int, default=0,
        help="0 for the first spawn, incremented by the supervisor per restart "
        "(fault-plan rules key on it)",
    )
    parser.add_argument(
        "--threads", type=int, default=1, help="repair worker threads inside this process"
    )
    parser.add_argument(
        "--deadline", type=float, default=None, help="default per-request deadline (seconds)"
    )
    parser.add_argument(
        "--fault-plan", default=None, help="JSON fault-injection plan (tests/soak only)"
    )
    return parser


def _apply_fault(plan: FaultPlan, worker: int, incarnation: int, op: str, ordinal: int) -> None:
    fault = plan.lookup(worker=worker, incarnation=incarnation, op=op, ordinal=ordinal)
    if fault is None:
        return
    if fault.action == "crash":
        # Flush nothing, clean up nothing: to the supervisor this must be
        # indistinguishable from a segfault or an external SIGKILL.
        os._exit(fault.exit_code)
    time.sleep(fault.seconds)


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        plan = FaultPlan.load(args.fault_plan) if args.fault_plan else FaultPlan()
    except FaultPlanError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    service = RepairService(workers=args.threads, default_deadline=args.deadline)
    try:
        for store in args.stores:
            service.add_problem(store)
    except (ClusterStoreError, KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(message, file=sys.stderr)
        return 2

    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    loop = asyncio.new_event_loop()

    def emit(payload: dict) -> None:
        stdout.write(json.dumps(payload).encode("utf-8") + b"\n")
        stdout.flush()

    emit(
        {
            "ok": True,
            "op": READY_OP,
            "worker": args.worker_id,
            "incarnation": args.incarnation,
            "pid": os.getpid(),
            "problems": sorted(runtime.name for runtime in service.problems()),
        }
    )

    ordinals: dict[str, int] = {}
    try:
        while True:
            line = stdin.readline()
            if not line:
                break  # supervisor closed our stdin: graceful stop
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            if plan:
                # Fault coordinates are (op, per-incarnation ordinal of that
                # op); a line too malformed to name an op is never faulted —
                # it flows through to the service's structured error.
                try:
                    op = json.loads(text).get("op")
                except (json.JSONDecodeError, AttributeError):
                    op = None
                if isinstance(op, str):
                    ordinal = ordinals.get(op, 0)
                    ordinals[op] = ordinal + 1
                    _apply_fault(plan, args.worker_id, args.incarnation, op, ordinal)
            emit(loop.run_until_complete(service.handle_line(text)))
    finally:
        service.close()
        loop.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
