"""Lexer for the mini-C subset used by the user-study assignments.

The user study in the paper (§6.3) uses introductory C programs: integer
arithmetic, ``scanf``/``printf``, ``if``/``while``/``for`` and simple
functions.  The lexer produces a flat token stream consumed by the
recursive-descent parser in :mod:`repro.frontend.c.cparser`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "int",
    "float",
    "double",
    "char",
    "long",
    "void",
    "if",
    "else",
    "while",
    "for",
    "do",
    "return",
    "break",
    "continue",
}

_TWO_CHAR_OPERATORS = {
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
}

_ONE_CHAR_OPERATORS = set("+-*/%<>=!&|?:,;(){}[]")

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"', "'": "'"}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # "ident", "keyword", "number", "string", "char", "op", "eof"
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.kind}({self.value!r})@{self.line}"


def tokenize(source: str) -> list[Token]:
    """Tokenise C source text; raises :class:`ParseError` on invalid input."""
    tokens: list[Token] = []
    line = 1
    i = 0
    length = len(source)

    while i < length:
        ch = source[i]

        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue

        # Preprocessor directives: skip the whole line.
        if ch == "#":
            while i < length and source[i] != "\n":
                i += 1
            continue

        # Comments.
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise ParseError(f"unterminated comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue

        # String literal.
        if ch == '"':
            text, consumed = _read_quoted(source, i, '"', line)
            tokens.append(Token("string", text, line))
            i += consumed
            continue

        # Character literal.
        if ch == "'":
            text, consumed = _read_quoted(source, i, "'", line)
            if len(text) != 1:
                raise ParseError(f"invalid character literal at line {line}")
            tokens.append(Token("char", text, line))
            i += consumed
            continue

        # Number.
        if ch.isdigit() or (ch == "." and i + 1 < length and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < length and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    seen_dot = True
                i += 1
            tokens.append(Token("number", source[start:i], line))
            continue

        # Identifier or keyword.
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            continue

        # Operators and punctuation.
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token("op", two, line))
            i += 2
            continue
        if ch in _ONE_CHAR_OPERATORS:
            tokens.append(Token("op", ch, line))
            i += 1
            continue

        raise ParseError(f"unexpected character {ch!r} at line {line}")

    tokens.append(Token("eof", "", line))
    return tokens


def _read_quoted(source: str, start: int, quote: str, line: int) -> tuple[str, int]:
    """Read a quoted literal starting at ``start``; return (text, chars consumed)."""
    i = start + 1
    out: list[str] = []
    while i < len(source):
        ch = source[i]
        if ch == "\\":
            if i + 1 >= len(source):
                break
            escape = source[i + 1]
            out.append(_ESCAPES.get(escape, escape))
            i += 2
            continue
        if ch == quote:
            return "".join(out), i - start + 1
        if ch == "\n":
            break
        out.append(ch)
        i += 1
    raise ParseError(f"unterminated {quote} literal at line {line}")
