"""Recursive-descent parser for the mini-C subset.

Grammar (informally)::

    unit        := { function }
    function    := type ident '(' params ')' block
    block       := '{' { statement } '}'
    statement   := declaration | if | while | do-while | for | return
                 | break ';' | continue ';' | block | expr-statement | ';'
    declaration := type declarator { ',' declarator } ';'
    expr        := assignment | ternary
    ternary     := logic-or [ '?' expr ':' expr ]
    logic-or    := logic-and { '||' logic-and }
    logic-and   := equality { '&&' equality }
    equality    := relational { ('=='|'!=') relational }
    relational  := additive { ('<'|'<='|'>'|'>=') additive }
    additive    := multiplicative { ('+'|'-') multiplicative }
    multiplicative := unary { ('*'|'/'|'%') unary }
    unary       := ('-'|'+'|'!') unary | postfix
    postfix     := primary [ '++' | '--' ]
    primary     := number | string | char | ident | ident '(' args ')' | '(' expr ')'

The supported subset deliberately mirrors what students in the first weeks of
an introductory C course write (the problems in the paper's Table 2);
anything else raises :class:`UnsupportedFeatureError`.
"""

from __future__ import annotations

from ..errors import ParseError, UnsupportedFeatureError
from .cast import (
    CAssignExpr,
    CBinary,
    CBlock,
    CBreak,
    CCall,
    CCharLit,
    CContinue,
    CDeclaration,
    CDeclarator,
    CDoWhile,
    CExpr,
    CExprStatement,
    CFor,
    CFunction,
    CIdent,
    CIf,
    CNumber,
    CReturn,
    CStmt,
    CString,
    CTernary,
    CTranslationUnit,
    CUnary,
    CWhile,
)
from .lexer import Token, tokenize

__all__ = ["parse_c"]

_TYPE_KEYWORDS = {"int", "float", "double", "char", "long", "void"}
_COMPOUND_ASSIGN = {"+=", "-=", "*=", "/=", "%="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def match(self, kind: str, value: str | None = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if not self.check(kind, value):
            expectation = value or kind
            raise ParseError(
                f"expected {expectation!r} but found {token.value!r} at line {token.line}"
            )
        return self.advance()

    # -- top level ----------------------------------------------------------------

    def parse_unit(self) -> CTranslationUnit:
        unit = CTranslationUnit(line=1)
        while not self.check("eof"):
            unit.functions.append(self.parse_function())
        if not unit.functions:
            raise ParseError("no function definition found")
        return unit

    def parse_function(self) -> CFunction:
        type_token = self.expect("keyword")
        if type_token.value not in _TYPE_KEYWORDS:
            raise ParseError(f"expected a type at line {type_token.line}")
        # Ignore pointers in the return type.
        while self.match("op", "*"):
            pass
        name = self.expect("ident").value
        self.expect("op", "(")
        params: list[tuple[str, str]] = []
        if not self.check("op", ")"):
            while True:
                param_type = self.expect("keyword").value
                if param_type == "void" and self.check("op", ")"):
                    break
                while self.match("op", "*"):
                    pass
                param_name = self.expect("ident").value
                params.append((param_type, param_name))
                if not self.match("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return CFunction(
            line=type_token.line,
            name=name,
            return_type=type_token.value,
            params=params,
            body=body,
        )

    # -- statements ----------------------------------------------------------------

    def parse_block(self) -> list[CStmt]:
        self.expect("op", "{")
        statements: list[CStmt] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise ParseError("unexpected end of input inside a block")
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return statements

    def parse_statement(self) -> CStmt:
        token = self.peek()
        if token.kind == "op" and token.value == "{":
            return CBlock(line=token.line, body=self.parse_block())
        if token.kind == "op" and token.value == ";":
            self.advance()
            return CExprStatement(line=token.line, expr=None)
        if token.kind == "keyword":
            if token.value in _TYPE_KEYWORDS:
                return self.parse_declaration()
            if token.value == "if":
                return self.parse_if()
            if token.value == "while":
                return self.parse_while()
            if token.value == "do":
                return self.parse_do_while()
            if token.value == "for":
                return self.parse_for()
            if token.value == "return":
                self.advance()
                value = None if self.check("op", ";") else self.parse_expression()
                self.expect("op", ";")
                return CReturn(line=token.line, value=value)
            if token.value == "break":
                self.advance()
                self.expect("op", ";")
                return CBreak(line=token.line)
            if token.value == "continue":
                self.advance()
                self.expect("op", ";")
                return CContinue(line=token.line)
            raise UnsupportedFeatureError(f"keyword {token.value!r}", token.line)
        expr = self.parse_expression(allow_assign=True)
        self.expect("op", ";")
        return CExprStatement(line=token.line, expr=expr)

    def parse_declaration(self) -> CDeclaration:
        type_token = self.advance()
        declaration = CDeclaration(line=type_token.line, type_name=type_token.value)
        while True:
            while self.match("op", "*"):
                pass
            name_token = self.expect("ident")
            if self.check("op", "["):
                raise UnsupportedFeatureError("array declaration", name_token.line)
            init = None
            if self.match("op", "="):
                init = self.parse_expression()
            declaration.declarators.append(
                CDeclarator(line=name_token.line, name=name_token.value, init=init)
            )
            if not self.match("op", ","):
                break
        self.expect("op", ";")
        return declaration

    def parse_if(self) -> CIf:
        token = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self._statement_as_block()
        otherwise: list[CStmt] = []
        if self.check("keyword", "else"):
            self.advance()
            otherwise = self._statement_as_block()
        return CIf(line=token.line, cond=cond, then=then, otherwise=otherwise)

    def parse_while(self) -> CWhile:
        token = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self._statement_as_block()
        return CWhile(line=token.line, cond=cond, body=body)

    def parse_do_while(self) -> CDoWhile:
        token = self.expect("keyword", "do")
        body = self._statement_as_block()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return CDoWhile(line=token.line, cond=cond, body=body)

    def parse_for(self) -> CFor:
        token = self.expect("keyword", "for")
        self.expect("op", "(")
        init: CStmt | None = None
        if not self.check("op", ";"):
            if self.check("keyword") and self.peek().value in _TYPE_KEYWORDS:
                init = self.parse_declaration()
            else:
                expr = self.parse_expression(allow_assign=True)
                self.expect("op", ";")
                init = CExprStatement(line=token.line, expr=expr)
        else:
            self.expect("op", ";")
        cond = None if self.check("op", ";") else self.parse_expression()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self.parse_expression(allow_assign=True)
        self.expect("op", ")")
        body = self._statement_as_block()
        return CFor(line=token.line, init=init, cond=cond, step=step, body=body)

    def _statement_as_block(self) -> list[CStmt]:
        statement = self.parse_statement()
        if isinstance(statement, CBlock):
            return statement.body
        return [statement]

    # -- expressions -----------------------------------------------------------------

    def parse_expression(self, allow_assign: bool = False) -> CExpr:
        if allow_assign:
            assignment = self._try_parse_assignment()
            if assignment is not None:
                return assignment
        return self.parse_ternary()

    def _try_parse_assignment(self) -> CAssignExpr | None:
        token = self.peek()
        if token.kind != "ident":
            return None
        nxt = self.peek(1)
        if nxt.kind != "op":
            return None
        if nxt.value == "=" or nxt.value in _COMPOUND_ASSIGN:
            name = self.advance().value
            op = self.advance().value
            value = self.parse_expression(allow_assign=True)
            return CAssignExpr(line=token.line, target=name, op=op, value=value)
        if nxt.value in ("++", "--"):
            name = self.advance().value
            op = self.advance().value
            return CAssignExpr(line=token.line, target=name, op=op, value=None)
        return None

    def parse_ternary(self) -> CExpr:
        cond = self.parse_logic_or()
        if self.match("op", "?"):
            then = self.parse_expression()
            self.expect("op", ":")
            otherwise = self.parse_expression()
            return CTernary(line=cond.line, cond=cond, then=then, otherwise=otherwise)
        return cond

    def parse_logic_or(self) -> CExpr:
        left = self.parse_logic_and()
        while self.check("op", "||"):
            line = self.advance().line
            right = self.parse_logic_and()
            left = CBinary(line=line, op="||", left=left, right=right)
        return left

    def parse_logic_and(self) -> CExpr:
        left = self.parse_equality()
        while self.check("op", "&&"):
            line = self.advance().line
            right = self.parse_equality()
            left = CBinary(line=line, op="&&", left=left, right=right)
        return left

    def parse_equality(self) -> CExpr:
        left = self.parse_relational()
        while self.peek().kind == "op" and self.peek().value in ("==", "!="):
            op = self.advance()
            right = self.parse_relational()
            left = CBinary(line=op.line, op=op.value, left=left, right=right)
        return left

    def parse_relational(self) -> CExpr:
        left = self.parse_additive()
        while self.peek().kind == "op" and self.peek().value in ("<", "<=", ">", ">="):
            op = self.advance()
            right = self.parse_additive()
            left = CBinary(line=op.line, op=op.value, left=left, right=right)
        return left

    def parse_additive(self) -> CExpr:
        left = self.parse_multiplicative()
        while self.peek().kind == "op" and self.peek().value in ("+", "-"):
            op = self.advance()
            right = self.parse_multiplicative()
            left = CBinary(line=op.line, op=op.value, left=left, right=right)
        return left

    def parse_multiplicative(self) -> CExpr:
        left = self.parse_unary()
        while self.peek().kind == "op" and self.peek().value in ("*", "/", "%"):
            op = self.advance()
            right = self.parse_unary()
            left = CBinary(line=op.line, op=op.value, left=left, right=right)
        return left

    def parse_unary(self) -> CExpr:
        token = self.peek()
        if token.kind == "op" and token.value in ("-", "+", "!"):
            self.advance()
            operand = self.parse_unary()
            return CUnary(line=token.line, op=token.value, operand=operand)
        if token.kind == "op" and token.value in ("++", "--"):
            # Prefix increment as an expression (common in for headers).
            self.advance()
            name = self.expect("ident").value
            return CAssignExpr(line=token.line, target=name, op=token.value, value=None)
        return self.parse_postfix()

    def parse_postfix(self) -> CExpr:
        expr = self.parse_primary()
        token = self.peek()
        if token.kind == "op" and token.value in ("++", "--"):
            if not isinstance(expr, CIdent):
                raise UnsupportedFeatureError("increment of a non-variable", token.line)
            self.advance()
            return CAssignExpr(line=token.line, target=expr.name, op=token.value, value=None)
        return expr

    def parse_primary(self) -> CExpr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return CNumber(line=token.line, text=token.value)
        if token.kind == "string":
            self.advance()
            return CString(line=token.line, value=token.value)
        if token.kind == "char":
            self.advance()
            return CCharLit(line=token.line, value=token.value)
        if token.kind == "ident":
            self.advance()
            if self.check("op", "("):
                return self._parse_call(token)
            return CIdent(line=token.line, name=token.value)
        if token.kind == "op" and token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.value!r} at line {token.line}")

    def _parse_call(self, name_token: Token) -> CCall:
        self.expect("op", "(")
        call = CCall(line=name_token.line, name=name_token.value)
        if not self.check("op", ")"):
            while True:
                address_of = bool(self.match("op", "&"))
                call.args.append(self.parse_expression())
                call.address_of.append(address_of)
                if not self.match("op", ","):
                    break
        self.expect("op", ")")
        return call


def parse_c(source: str) -> CTranslationUnit:
    """Parse mini-C source text into a :class:`CTranslationUnit`."""
    tokens = tokenize(source)
    return _Parser(tokens).parse_unit()
