"""Mini-C front-end: lexer, parser and lowering into the program model."""

from .cast import CFunction, CTranslationUnit
from .cparser import parse_c
from .lexer import Token, tokenize
from .lowering import lower_function

__all__ = ["tokenize", "Token", "parse_c", "parse_c_source", "CFunction", "CTranslationUnit", "lower_function"]


def parse_c_source(source: str, entry: str | None = None):
    """Parse C source text and translate ``entry`` (default ``main``) into a program."""
    unit = parse_c(source)
    target = entry or "main"
    for function in unit.functions:
        if function.name == target:
            return lower_function(function, source)
    # Fall back to the first function if there is no main (single-function
    # exercises sometimes omit it).
    return lower_function(unit.functions[0], source)
