"""AST node types for the mini-C subset."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CNode",
    "CExpr",
    "CNumber",
    "CString",
    "CCharLit",
    "CIdent",
    "CUnary",
    "CBinary",
    "CTernary",
    "CCall",
    "CAssignExpr",
    "CStmt",
    "CDeclaration",
    "CDeclarator",
    "CExprStatement",
    "CIf",
    "CWhile",
    "CDoWhile",
    "CFor",
    "CReturn",
    "CBreak",
    "CContinue",
    "CBlock",
    "CFunction",
    "CTranslationUnit",
]


@dataclass
class CNode:
    """Base class carrying a source line number."""

    line: int = 0


# -- expressions --------------------------------------------------------------


@dataclass
class CExpr(CNode):
    pass


@dataclass
class CNumber(CExpr):
    text: str = "0"

    @property
    def value(self) -> int | float:
        return float(self.text) if "." in self.text else int(self.text)


@dataclass
class CString(CExpr):
    value: str = ""


@dataclass
class CCharLit(CExpr):
    value: str = ""


@dataclass
class CIdent(CExpr):
    name: str = ""


@dataclass
class CUnary(CExpr):
    op: str = ""
    operand: CExpr | None = None


@dataclass
class CBinary(CExpr):
    op: str = ""
    left: CExpr | None = None
    right: CExpr | None = None


@dataclass
class CTernary(CExpr):
    cond: CExpr | None = None
    then: CExpr | None = None
    otherwise: CExpr | None = None


@dataclass
class CCall(CExpr):
    name: str = ""
    args: list[CExpr] = field(default_factory=list)
    #: ``&x`` arguments record the bare variable name here (for ``scanf``).
    address_of: list[bool] = field(default_factory=list)


@dataclass
class CAssignExpr(CExpr):
    """Assignment or compound assignment used in expression position
    (``for`` headers and expression statements)."""

    target: str = ""
    op: str = "="  # "=", "+=", "-=", "*=", "/=", "%=", "++", "--"
    value: CExpr | None = None


# -- statements ---------------------------------------------------------------


@dataclass
class CStmt(CNode):
    pass


@dataclass
class CDeclarator(CNode):
    name: str = ""
    init: CExpr | None = None


@dataclass
class CDeclaration(CStmt):
    type_name: str = "int"
    declarators: list[CDeclarator] = field(default_factory=list)


@dataclass
class CExprStatement(CStmt):
    expr: CExpr | None = None


@dataclass
class CIf(CStmt):
    cond: CExpr | None = None
    then: list[CStmt] = field(default_factory=list)
    otherwise: list[CStmt] = field(default_factory=list)


@dataclass
class CWhile(CStmt):
    cond: CExpr | None = None
    body: list[CStmt] = field(default_factory=list)


@dataclass
class CDoWhile(CStmt):
    cond: CExpr | None = None
    body: list[CStmt] = field(default_factory=list)


@dataclass
class CFor(CStmt):
    init: CStmt | None = None
    cond: CExpr | None = None
    step: CExpr | None = None
    body: list[CStmt] = field(default_factory=list)


@dataclass
class CReturn(CStmt):
    value: CExpr | None = None


@dataclass
class CBreak(CStmt):
    pass


@dataclass
class CContinue(CStmt):
    pass


@dataclass
class CBlock(CStmt):
    body: list[CStmt] = field(default_factory=list)


# -- top level ------------------------------------------------------------------


@dataclass
class CFunction(CNode):
    name: str = "main"
    return_type: str = "int"
    params: list[tuple[str, str]] = field(default_factory=list)  # (type, name)
    body: list[CStmt] = field(default_factory=list)


@dataclass
class CTranslationUnit(CNode):
    functions: list[CFunction] = field(default_factory=list)
