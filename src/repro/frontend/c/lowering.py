"""Lowering of mini-C ASTs into the program model.

Rather than duplicating the block/guard machinery of the Python front-end,
the C front-end lowers its AST to the equivalent Python ``ast`` nodes and
reuses :class:`repro.frontend.python_frontend._Translator`:

* ``for (init; cond; step)`` becomes ``init; while cond: body; step``;
* ``printf(fmt, ...)`` appends ``StrFormat(fmt, ...)`` to the ``$out``
  variable;
* ``scanf("%d", &x)`` reads the head of the ``$stdin`` list;
* ``/`` between integer-typed operands becomes floor division, otherwise true
  division (declared ``float``/``double`` variables and float literals
  propagate float-ness).

The resulting :class:`~repro.model.program.Program` is indistinguishable from
one produced from Python source, which is exactly what lets the clustering
and repair algorithms work unchanged on the C user-study problems (§6.3).
"""

from __future__ import annotations

import ast as pyast

from ...model.program import Program
from ..errors import UnsupportedFeatureError
from ..python_frontend import parse_python_function
from .cast import (
    CAssignExpr,
    CBinary,
    CBlock,
    CBreak,
    CCall,
    CCharLit,
    CContinue,
    CDeclaration,
    CDoWhile,
    CExpr,
    CExprStatement,
    CFor,
    CFunction,
    CIdent,
    CIf,
    CNumber,
    CReturn,
    CStmt,
    CString,
    CTernary,
    CUnary,
    CWhile,
)

__all__ = ["lower_function"]

_STDOUT = "$out"
_STDIN = "$stdin"

_BINARY_OPS = {
    "+": pyast.Add,
    "-": pyast.Sub,
    "*": pyast.Mult,
    "%": pyast.Mod,
}

_COMPARE_OPS = {
    "==": pyast.Eq,
    "!=": pyast.NotEq,
    "<": pyast.Lt,
    "<=": pyast.LtE,
    ">": pyast.Gt,
    ">=": pyast.GtE,
}

_COMPOUND_OPS = {
    "+=": pyast.Add,
    "-=": pyast.Sub,
    "*=": pyast.Mult,
    "/=": pyast.Div,
    "%=": pyast.Mod,
}


def _at(node: pyast.AST, line: int) -> pyast.AST:
    """Attach location info required by the Python translator."""
    node.lineno = max(line, 1)
    node.col_offset = 0
    node.end_lineno = max(line, 1)
    node.end_col_offset = 0
    return node


class _Lowering:
    """Lowers one C function to a Python ``ast.FunctionDef``."""

    def __init__(self, function: CFunction) -> None:
        self.function = function
        self.float_vars: set[str] = {
            name for type_name, name in function.params if type_name in ("float", "double")
        }
        self._collect_float_declarations(function.body)

    def _collect_float_declarations(self, statements: list[CStmt]) -> None:
        for statement in statements:
            if isinstance(statement, CDeclaration):
                if statement.type_name in ("float", "double"):
                    for declarator in statement.declarators:
                        self.float_vars.add(declarator.name)
            elif isinstance(statement, (CIf,)):
                self._collect_float_declarations(statement.then)
                self._collect_float_declarations(statement.otherwise)
            elif isinstance(statement, (CWhile, CDoWhile, CFor)):
                self._collect_float_declarations(statement.body)
            elif isinstance(statement, CBlock):
                self._collect_float_declarations(statement.body)

    # -- expression lowering ------------------------------------------------------

    def _is_float(self, expr: CExpr | None) -> bool:
        if expr is None:
            return False
        if isinstance(expr, CNumber):
            return "." in expr.text
        if isinstance(expr, CIdent):
            return expr.name in self.float_vars
        if isinstance(expr, CUnary):
            return self._is_float(expr.operand)
        if isinstance(expr, CBinary):
            if expr.op == "/":
                return self._is_float(expr.left) or self._is_float(expr.right)
            return self._is_float(expr.left) or self._is_float(expr.right)
        if isinstance(expr, CTernary):
            return self._is_float(expr.then) or self._is_float(expr.otherwise)
        if isinstance(expr, CCall):
            return expr.name in ("sqrt", "pow", "fabs")
        return False

    def lower_expr(self, expr: CExpr) -> pyast.expr:
        line = expr.line
        if isinstance(expr, CNumber):
            return _at(pyast.Constant(value=expr.value), line)
        if isinstance(expr, CString):
            return _at(pyast.Constant(value=expr.value), line)
        if isinstance(expr, CCharLit):
            return _at(pyast.Constant(value=expr.value), line)
        if isinstance(expr, CIdent):
            return _at(pyast.Name(id=expr.name, ctx=pyast.Load()), line)
        if isinstance(expr, CUnary):
            operand = self.lower_expr(expr.operand)
            if expr.op == "-":
                return _at(pyast.UnaryOp(op=pyast.USub(), operand=operand), line)
            if expr.op == "+":
                return _at(pyast.UnaryOp(op=pyast.UAdd(), operand=operand), line)
            if expr.op == "!":
                return _at(pyast.UnaryOp(op=pyast.Not(), operand=operand), line)
            raise UnsupportedFeatureError(f"unary operator {expr.op!r}", line)
        if isinstance(expr, CBinary):
            return self._lower_binary(expr)
        if isinstance(expr, CTernary):
            return _at(
                pyast.IfExp(
                    test=self.lower_expr(expr.cond),
                    body=self.lower_expr(expr.then),
                    orelse=self.lower_expr(expr.otherwise),
                ),
                line,
            )
        if isinstance(expr, CCall):
            return self._lower_call_expr(expr)
        if isinstance(expr, CAssignExpr):
            raise UnsupportedFeatureError("assignment used as a value", line)
        raise UnsupportedFeatureError(type(expr).__name__, line)

    def _lower_binary(self, expr: CBinary) -> pyast.expr:
        line = expr.line
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        if expr.op in _BINARY_OPS:
            return _at(pyast.BinOp(left=left, op=_BINARY_OPS[expr.op](), right=right), line)
        if expr.op == "/":
            op = pyast.Div() if self._is_float(expr.left) or self._is_float(expr.right) else pyast.FloorDiv()
            return _at(pyast.BinOp(left=left, op=op, right=right), line)
        if expr.op in _COMPARE_OPS:
            return _at(
                pyast.Compare(left=left, ops=[_COMPARE_OPS[expr.op]()], comparators=[right]),
                line,
            )
        if expr.op == "&&":
            return _at(pyast.BoolOp(op=pyast.And(), values=[left, right]), line)
        if expr.op == "||":
            return _at(pyast.BoolOp(op=pyast.Or(), values=[left, right]), line)
        raise UnsupportedFeatureError(f"operator {expr.op!r}", line)

    def _lower_call_expr(self, call: CCall) -> pyast.expr:
        line = call.line
        if call.name in ("printf", "scanf"):
            raise UnsupportedFeatureError(f"{call.name} used as a value", line)
        args = [self.lower_expr(arg) for arg in call.args]
        mapping = {"fabs": "abs", "sqrt": "sqrt", "pow": "pow", "abs": "abs"}
        name = mapping.get(call.name, call.name)
        return _at(
            pyast.Call(func=_at(pyast.Name(id=name, ctx=pyast.Load()), line), args=args, keywords=[]),
            line,
        )

    # -- statement lowering -----------------------------------------------------

    def lower_statements(self, statements: list[CStmt]) -> list[pyast.stmt]:
        out: list[pyast.stmt] = []
        for statement in statements:
            out.extend(self.lower_statement(statement))
        return out

    def lower_statement(self, statement: CStmt) -> list[pyast.stmt]:
        line = statement.line
        if isinstance(statement, CDeclaration):
            out: list[pyast.stmt] = []
            for declarator in statement.declarators:
                if declarator.init is None:
                    continue
                out.append(self._assign(declarator.name, self.lower_expr(declarator.init), line))
            return out
        if isinstance(statement, CExprStatement):
            if statement.expr is None:
                return []
            return self._lower_expression_statement(statement.expr)
        if isinstance(statement, CIf):
            return [
                _at(
                    pyast.If(
                        test=self.lower_expr(statement.cond),
                        body=self.lower_statements(statement.then) or [_at(pyast.Pass(), line)],
                        orelse=self.lower_statements(statement.otherwise),
                    ),
                    line,
                )
            ]
        if isinstance(statement, CWhile):
            return [
                _at(
                    pyast.While(
                        test=self.lower_expr(statement.cond),
                        body=self.lower_statements(statement.body) or [_at(pyast.Pass(), line)],
                        orelse=[],
                    ),
                    line,
                )
            ]
        if isinstance(statement, CDoWhile):
            body = self.lower_statements(statement.body)
            loop = _at(
                pyast.While(
                    test=self.lower_expr(statement.cond),
                    body=self.lower_statements(statement.body) or [_at(pyast.Pass(), line)],
                    orelse=[],
                ),
                line,
            )
            return body + [loop]
        if isinstance(statement, CFor):
            return self._lower_for(statement)
        if isinstance(statement, CReturn):
            value = self.lower_expr(statement.value) if statement.value is not None else None
            return [_at(pyast.Return(value=value), line)]
        if isinstance(statement, CBreak):
            return [_at(pyast.Break(), line)]
        if isinstance(statement, CContinue):
            return [_at(pyast.Continue(), line)]
        if isinstance(statement, CBlock):
            return self.lower_statements(statement.body)
        raise UnsupportedFeatureError(type(statement).__name__, line)

    def _lower_for(self, statement: CFor) -> list[pyast.stmt]:
        line = statement.line
        if any(isinstance(s, CContinue) for s in _walk_statements(statement.body)):
            raise UnsupportedFeatureError("continue inside a for loop", line)
        out: list[pyast.stmt] = []
        if statement.init is not None:
            out.extend(self.lower_statement(statement.init))
        condition = (
            self.lower_expr(statement.cond)
            if statement.cond is not None
            else _at(pyast.Constant(value=True), line)
        )
        body = self.lower_statements(statement.body)
        if statement.step is not None:
            body.extend(self._lower_expression_statement(statement.step))
        out.append(_at(pyast.While(test=condition, body=body or [_at(pyast.Pass(), line)], orelse=[]), line))
        return out

    def _lower_expression_statement(self, expr: CExpr) -> list[pyast.stmt]:
        line = expr.line
        if isinstance(expr, CAssignExpr):
            return [self._lower_assignment(expr)]
        if isinstance(expr, CCall):
            if expr.name == "printf":
                return self._lower_printf(expr)
            if expr.name == "scanf":
                return self._lower_scanf(expr)
            if expr.name == "puts":
                return self._lower_puts(expr)
            if expr.name in ("srand", "fflush", "getchar"):
                return []
            # Any other call evaluated for effect only: no observable effect
            # in our model, so drop it.
            return []
        # Expression statement without effect (e.g. a stray `x;`).
        return []

    def _lower_assignment(self, expr: CAssignExpr) -> pyast.stmt:
        line = expr.line
        if expr.op == "=":
            return self._assign(expr.target, self.lower_expr(expr.value), line)
        if expr.op in _COMPOUND_OPS:
            op = _COMPOUND_OPS[expr.op]
            if expr.op == "/=" and not (
                self._is_float(expr.value) or expr.target in self.float_vars
            ):
                op = pyast.FloorDiv
            return _at(
                pyast.AugAssign(
                    target=_at(pyast.Name(id=expr.target, ctx=pyast.Store()), line),
                    op=op(),
                    value=self.lower_expr(expr.value),
                ),
                line,
            )
        if expr.op in ("++", "--"):
            op = pyast.Add if expr.op == "++" else pyast.Sub
            return _at(
                pyast.AugAssign(
                    target=_at(pyast.Name(id=expr.target, ctx=pyast.Store()), line),
                    op=op(),
                    value=_at(pyast.Constant(value=1), line),
                ),
                line,
            )
        raise UnsupportedFeatureError(f"assignment operator {expr.op!r}", line)

    def _assign(self, name: str, value: pyast.expr, line: int) -> pyast.stmt:
        return _at(
            pyast.Assign(
                targets=[_at(pyast.Name(id=name, ctx=pyast.Store()), line)], value=value
            ),
            line,
        )

    def _lower_printf(self, call: CCall) -> list[pyast.stmt]:
        line = call.line
        if not call.args:
            return []
        formatted = _at(
            pyast.Call(
                func=_at(pyast.Name(id="StrFormat", ctx=pyast.Load()), line),
                args=[self.lower_expr(arg) for arg in call.args],
                keywords=[],
            ),
            line,
        )
        return [
            _at(
                pyast.AugAssign(
                    target=_at(pyast.Name(id=_STDOUT, ctx=pyast.Store()), line),
                    op=pyast.Add(),
                    value=formatted,
                ),
                line,
            )
        ]

    def _lower_puts(self, call: CCall) -> list[pyast.stmt]:
        line = call.line
        if len(call.args) != 1:
            return []
        text = _at(
            pyast.BinOp(
                left=self.lower_expr(call.args[0]),
                op=pyast.Add(),
                right=_at(pyast.Constant(value="\n"), line),
            ),
            line,
        )
        return [
            _at(
                pyast.AugAssign(
                    target=_at(pyast.Name(id=_STDOUT, ctx=pyast.Store()), line),
                    op=pyast.Add(),
                    value=text,
                ),
                line,
            )
        ]

    def _lower_scanf(self, call: CCall) -> list[pyast.stmt]:
        line = call.line
        out: list[pyast.stmt] = []
        for arg, is_address in zip(call.args, call.address_of):
            if not is_address:
                continue  # the format string
            if not isinstance(arg, CIdent):
                raise UnsupportedFeatureError("scanf into a non-variable", line)
            head = _at(
                pyast.Call(
                    func=_at(pyast.Name(id="ListHead", ctx=pyast.Load()), line),
                    args=[_at(pyast.Name(id=_STDIN, ctx=pyast.Load()), line)],
                    keywords=[],
                ),
                line,
            )
            tail = _at(
                pyast.Call(
                    func=_at(pyast.Name(id="ListTail", ctx=pyast.Load()), line),
                    args=[_at(pyast.Name(id=_STDIN, ctx=pyast.Load()), line)],
                    keywords=[],
                ),
                line,
            )
            out.append(self._assign(arg.name, head, line))
            out.append(self._assign(_STDIN, tail, line))
        return out

    # -- function lowering --------------------------------------------------------

    def lower(self) -> pyast.FunctionDef:
        line = self.function.line
        args = pyast.arguments(
            posonlyargs=[],
            args=[
                _at(pyast.arg(arg=name, annotation=None), line)
                for _, name in self.function.params
            ],
            vararg=None,
            kwonlyargs=[],
            kw_defaults=[],
            kwarg=None,
            defaults=[],
        )
        body = self.lower_statements(self.function.body) or [_at(pyast.Pass(), line)]
        node = pyast.FunctionDef(
            name=self.function.name,
            args=args,
            body=body,
            decorator_list=[],
            returns=None,
            type_comment=None,
        )
        return _at(node, line)


def _walk_statements(statements: list[CStmt]):
    for statement in statements:
        yield statement
        if isinstance(statement, CIf):
            yield from _walk_statements(statement.then)
            yield from _walk_statements(statement.otherwise)
        elif isinstance(statement, (CWhile, CDoWhile, CFor)):
            # Nested loops have their own continue scope; do not descend.
            continue
        elif isinstance(statement, CBlock):
            yield from _walk_statements(statement.body)


def lower_function(function: CFunction, source: str) -> Program:
    """Lower one C function into a :class:`Program` via the Python translator."""
    lowering = _Lowering(function)
    funcdef = lowering.lower()
    program = parse_python_function(funcdef, source)
    program.language = "c"
    return program
