"""Errors raised by the front-ends.

The evaluation in the paper distinguishes attempts that could not even be
parsed or that use unsupported language features (69 of the 110 failures in
Table 1's discussion).  We reproduce that by raising structured exceptions the
pipeline can count.
"""

from __future__ import annotations

__all__ = ["FrontendError", "ParseError", "UnsupportedFeatureError"]


class FrontendError(Exception):
    """Base class for all front-end failures."""


class ParseError(FrontendError):
    """The source text could not be parsed at all."""


class UnsupportedFeatureError(FrontendError):
    """The program uses a language feature outside the supported subset."""

    def __init__(self, feature: str, line: int | None = None) -> None:
        self.feature = feature
        self.line = line
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"unsupported feature: {feature}{location}")
