"""Front-ends translating source languages into the program model."""

from .errors import FrontendError, ParseError, UnsupportedFeatureError
from .python_frontend import parse_python_function, parse_python_source

__all__ = [
    "FrontendError",
    "ParseError",
    "UnsupportedFeatureError",
    "parse_python_source",
    "parse_python_function",
    "parse_source",
]


def parse_source(source: str, language: str = "python", entry: str | None = None):
    """Parse ``source`` in the given language ("python" or "c")."""
    if language == "python":
        return parse_python_source(source, entry=entry)
    if language == "c":
        from .c import parse_c_source

        return parse_c_source(source, entry=entry)
    raise ValueError(f"unknown language: {language!r}")
