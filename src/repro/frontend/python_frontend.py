"""Python front-end: translate introductory-level Python into the model.

The translation follows §3 of the paper:

* loop-free statement sequences are collapsed into a single location whose
  updates form one parallel assignment (sequential statements are composed by
  substituting previously assigned expressions);
* loop-free ``if`` statements are converted to ``ite`` expressions;
* loops produce the ``before → cond → body → after`` location structure, with
  ``for`` loops desugared through a synthetic iterator variable exactly as in
  the paper's running example;
* early ``return``, ``break`` and ``continue`` are modelled with synthetic
  flag variables and guard expressions, which the simplifier folds away
  whenever they are statically constant.

Constructs outside the supported subset raise
:class:`~repro.frontend.errors.UnsupportedFeatureError`; syntactically invalid
source raises :class:`~repro.frontend.errors.ParseError`.  Both categories are
counted by the evaluation harness, mirroring the failure analysis in §6.2.
"""

from __future__ import annotations

import ast
from typing import Sequence

from ..interpreter.libfuncs import register
from ..model.expr import (
    Const,
    Expr,
    Op,
    VAR_COND,
    VAR_OUT,
    VAR_RET,
    VAR_RETFLAG,
    Var,
    conjunction,
    negation,
)
from ..model.program import END, Program
from ..model.simplify import simplify
from .errors import ParseError, UnsupportedFeatureError

__all__ = ["parse_python_source", "parse_python_function"]


# ``a[::2]``-style slices need a 4-argument operation that the core library
# does not define; register it here so the front-end stays self-contained.
def _slice_step(seq: object, lo: object, hi: object, step: object) -> object:
    from ..interpreter.values import UNDEF, is_undef

    if not isinstance(seq, (list, tuple, str)):
        return UNDEF
    low = None if lo is None or is_undef(lo) else lo
    high = None if hi is None or is_undef(hi) else hi
    stride = None if step is None or is_undef(step) else step
    try:
        result = seq[low:high:stride]
    except (TypeError, ValueError):
        return UNDEF
    return list(result) if isinstance(seq, list) else result


def _list_cast(value: object) -> object:
    from ..interpreter.values import UNDEF

    if isinstance(value, (list, tuple, str)):
        return list(value)
    return UNDEF


def _tuple_cast(value: object) -> object:
    from ..interpreter.values import UNDEF

    if isinstance(value, (list, tuple, str)):
        return tuple(value)
    return UNDEF


register("SliceStep", _slice_step)
register("list", _list_cast)
register("tuple", _tuple_cast)


_BINOP_NAMES = {
    ast.Add: "Add",
    ast.Sub: "Sub",
    ast.Mult: "Mult",
    ast.Div: "Div",
    ast.FloorDiv: "FloorDiv",
    ast.Mod: "Mod",
    ast.Pow: "Pow",
}

_CMPOP_NAMES = {
    ast.Eq: "Eq",
    ast.NotEq: "NotEq",
    ast.Lt: "Lt",
    ast.LtE: "LtE",
    ast.Gt: "Gt",
    ast.GtE: "GtE",
    ast.In: "In",
    ast.NotIn: "NotIn",
}

_UNARYOP_NAMES = {
    ast.USub: "USub",
    ast.UAdd: "UAdd",
    ast.Not: "Not",
}

#: Calls to these names translate directly to library operations.
_KNOWN_CALLS = {
    "len",
    "range",
    "xrange",
    "float",
    "int",
    "str",
    "bool",
    "abs",
    "round",
    "max",
    "min",
    "sum",
    "sorted",
    "reversed",
    "enumerate",
    "zip",
    "pow",
    "list",
    "tuple",
    "append",
}


def _contains_loop(statements: Sequence[ast.stmt]) -> bool:
    for statement in statements:
        for node in ast.walk(statement):
            if isinstance(node, (ast.For, ast.While)):
                return True
    return False


def _contains(statements: Sequence[ast.stmt], kinds: tuple[type, ...]) -> bool:
    for statement in statements:
        for node in ast.walk(statement):
            if isinstance(node, kinds):
                # Nested function bodies are their own scope; a return there
                # does not affect this function's control flow (they are
                # rejected elsewhere anyway).
                return True
    return False


class _LoopContext:
    """Book-keeping for an enclosing loop during translation."""

    def __init__(self, index: int, has_break: bool, has_continue: bool) -> None:
        self.break_var = f"$brk{index}"
        self.cont_var = f"$cont{index}"
        self.has_break = has_break
        self.has_continue = has_continue
        #: Whether a break/continue may already be set when a *new* location
        #: inside this loop's body starts.
        self.break_may_be_set = False
        self.cont_may_be_set = False


class _BlockBuilder:
    """Accumulates the parallel assignment of a single location.

    ``seeds`` holds values that are statically known when the location is
    entered (e.g. "the return flag is still False"); they participate in
    substitution but are not emitted as updates.
    """

    def __init__(
        self,
        translator: "_Translator",
        loc_id: int,
        seeds: dict[str, Expr] | None = None,
        loops: list[_LoopContext] | None = None,
    ) -> None:
        self.translator = translator
        self.loc_id = loc_id
        self.updates: dict[str, Expr] = {}
        self.seeds: dict[str, Expr] = dict(seeds or {})
        self.loops: list[_LoopContext] = list(loops or [])

    # -- substitution --------------------------------------------------------

    def current(self, var: str) -> Expr:
        if var in self.updates:
            return self.updates[var]
        if var in self.seeds:
            return self.seeds[var]
        return Var(var)

    def substitution(self) -> dict[str, Expr]:
        mapping = dict(self.seeds)
        mapping.update(self.updates)
        return mapping

    # -- guards ----------------------------------------------------------------

    def guard(self) -> Expr:
        """Condition under which the next statement actually executes."""
        terms: list[Expr] = [negation(self.current(VAR_RETFLAG))]
        if self.loops:
            innermost = self.loops[-1]
            if innermost.has_break:
                terms.append(negation(self.current(innermost.break_var)))
            if innermost.has_continue:
                terms.append(negation(self.current(innermost.cont_var)))
        return simplify(conjunction(terms))

    # -- assignment --------------------------------------------------------------

    def assign_expr(self, var: str, expr: Expr, *, guarded: bool = True) -> None:
        value = expr
        if guarded:
            guard = self.guard()
            if guard != Const(True):
                value = Op("ite", guard, value, self.current(var))
        self.updates[var] = simplify(value)

    def branch_copy(self) -> "_BlockBuilder":
        copy = _BlockBuilder(self.translator, self.loc_id, self.seeds, self.loops)
        copy.updates = dict(self.updates)
        return copy

    # -- expression conversion -----------------------------------------------

    def convert(self, node: ast.expr) -> Expr:
        """Convert a Python expression AST node, substituting current values."""
        raw = self.translator.convert_expression(node)
        return simplify(raw.substitute_vars(self.substitution()))


class _Translator:
    """Translates one Python function definition into a :class:`Program`."""

    def __init__(self, func: ast.FunctionDef, source: str) -> None:
        self.func = func
        self.source = source
        self.program = Program(
            func.name,
            params=[arg.arg for arg in func.args.args],
            source=source,
            language="python",
        )
        self.may_have_returned = False
        self._loop_counter = 0
        self._iter_counter = 0

    # -- public entry -----------------------------------------------------------

    def translate(self) -> Program:
        if self.func.args.vararg or self.func.args.kwarg or self.func.args.kwonlyargs:
            raise UnsupportedFeatureError("varargs/keyword-only parameters", self.func.lineno)
        entry = self.program.add_location("entry", line=self.func.lineno)
        builder = self._new_builder(entry.loc_id, loops=[])
        exit_builder = self._translate_statements(self.func.body, builder)
        self._flush(exit_builder)
        self.program.set_successor(exit_builder.loc_id, END, END)
        self.program.prune_unread_flags()
        return self.program

    # -- builders and helpers ---------------------------------------------------

    def _new_builder(
        self,
        loc_id: int,
        loops: list[_LoopContext],
        *,
        may_have_returned: bool | None = None,
        extra_seeds: dict[str, Expr] | None = None,
    ) -> _BlockBuilder:
        seeds: dict[str, Expr] = {}
        returned = self.may_have_returned if may_have_returned is None else may_have_returned
        if not returned:
            seeds[VAR_RETFLAG] = Const(False)
        for ctx in loops:
            if ctx.has_break and not ctx.break_may_be_set:
                seeds[ctx.break_var] = Const(False)
            if ctx.has_continue and not ctx.cont_may_be_set:
                seeds[ctx.cont_var] = Const(False)
        if extra_seeds:
            seeds.update(extra_seeds)
        return _BlockBuilder(self, loc_id, seeds=seeds, loops=loops)

    def _flush(self, builder: _BlockBuilder) -> None:
        location = self.program.locations[builder.loc_id]
        for var, expr in builder.updates.items():
            if expr == Var(var):
                continue
            location.updates[var] = expr

    # -- statement translation -----------------------------------------------

    def _translate_statements(
        self, statements: Sequence[ast.stmt], builder: _BlockBuilder
    ) -> _BlockBuilder:
        """Translate statements, returning the builder of the final location."""
        current = builder
        for statement in statements:
            if isinstance(statement, (ast.For, ast.While)):
                current = self._translate_loop(statement, current)
            elif isinstance(statement, ast.If) and _contains_loop(
                list(statement.body) + list(statement.orelse)
            ):
                current = self._translate_branching_if(statement, current)
            else:
                self._translate_simple(statement, current)
        return current

    def _translate_simple(self, statement: ast.stmt, builder: _BlockBuilder) -> None:
        if isinstance(statement, ast.Assign):
            value = builder.convert(statement.value)
            for target in statement.targets:
                self._assign_target(builder, target, value)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is None:
                return
            value = builder.convert(statement.value)
            self._assign_target(builder, statement.target, value)
        elif isinstance(statement, ast.AugAssign):
            self._translate_augassign(statement, builder)
        elif isinstance(statement, ast.Return):
            value = (
                builder.convert(statement.value)
                if statement.value is not None
                else Const(None)
            )
            builder.assign_expr(VAR_RET, value)
            builder.assign_expr(VAR_RETFLAG, Const(True))
            self.may_have_returned = True
        elif isinstance(statement, ast.If):
            self._translate_loopfree_if(statement, builder)
        elif isinstance(statement, ast.Expr):
            self._translate_expression_statement(statement, builder)
        elif isinstance(statement, ast.Pass):
            return
        elif isinstance(statement, ast.Break):
            if not builder.loops:
                raise UnsupportedFeatureError("break outside loop", statement.lineno)
            ctx = builder.loops[-1]
            builder.assign_expr(ctx.break_var, Const(True))
            ctx.break_may_be_set = True
        elif isinstance(statement, ast.Continue):
            if not builder.loops:
                raise UnsupportedFeatureError("continue outside loop", statement.lineno)
            ctx = builder.loops[-1]
            builder.assign_expr(ctx.cont_var, Const(True))
            ctx.cont_may_be_set = True
        elif isinstance(statement, (ast.Global, ast.Nonlocal)):
            raise UnsupportedFeatureError("global/nonlocal", statement.lineno)
        elif isinstance(statement, ast.FunctionDef):
            raise UnsupportedFeatureError("nested function definition", statement.lineno)
        elif isinstance(statement, (ast.Import, ast.ImportFrom)):
            # Imports inside the function body are ignored (students import
            # ``math`` etc.); module-level imports never reach the translator.
            return
        elif isinstance(statement, ast.Assert):
            return
        else:
            raise UnsupportedFeatureError(
                type(statement).__name__, getattr(statement, "lineno", None)
            )

    def _translate_augassign(self, statement: ast.AugAssign, builder: _BlockBuilder) -> None:
        op_name = _BINOP_NAMES.get(type(statement.op))
        if op_name is None:
            raise UnsupportedFeatureError(
                f"augmented assignment {type(statement.op).__name__}", statement.lineno
            )
        value = builder.convert(statement.value)
        target = statement.target
        if isinstance(target, ast.Name):
            current = builder.current(target.id)
            builder.assign_expr(target.id, Op(op_name, current, value))
        elif isinstance(target, ast.Subscript):
            base, index = self._subscript_parts(builder, target)
            if not isinstance(target.value, ast.Name):
                raise UnsupportedFeatureError("augmented subscript target", statement.lineno)
            old = Op("GetElement", base, index)
            builder.assign_expr(
                target.value.id,
                Op("AssignElement", base, index, Op(op_name, old, value)),
            )
        else:
            raise UnsupportedFeatureError("augmented assignment target", statement.lineno)

    def _translate_expression_statement(
        self, statement: ast.Expr, builder: _BlockBuilder
    ) -> None:
        value = statement.value
        if isinstance(value, ast.Call):
            call = value
            if isinstance(call.func, ast.Attribute) and isinstance(call.func.value, ast.Name):
                obj = call.func.value.id
                method = call.func.attr
                args = [builder.convert(a) for a in call.args]
                current = builder.current(obj)
                if method == "append" and len(args) == 1:
                    builder.assign_expr(obj, Op("append", current, args[0]))
                    return
                if method == "extend" and len(args) == 1:
                    builder.assign_expr(obj, Op("Add", current, args[0]))
                    return
                if method == "insert" and len(args) == 2:
                    builder.assign_expr(
                        obj,
                        Op(
                            "Add",
                            Op("Add", Op("Slice", current, Const(None), args[0]),
                               Op("ListInit", args[1])),
                            Op("Slice", current, args[0], Const(None)),
                        ),
                    )
                    return
                if method == "sort" and not args:
                    builder.assign_expr(obj, Op("sorted", current))
                    return
                if method == "reverse" and not args:
                    builder.assign_expr(obj, Op("reversed", current))
                    return
                # Unknown method used for its side effect: evaluates to ⊥ and
                # overwrites the object, mirroring "the student called
                # something that does not work".
                builder.assign_expr(obj, Op(f"Method_{method}", current, *args))
                return
            if isinstance(call.func, ast.Name) and call.func.id == "print":
                args = [builder.convert(a) for a in call.args]
                self._emit_print(builder, args)
                return
        # Any other expression statement has no observable effect; drop it.
        return

    def _emit_print(self, builder: _BlockBuilder, args: list[Expr]) -> None:
        pieces: list[Expr] = [builder.current(VAR_OUT)]
        for index, arg in enumerate(args):
            if index:
                pieces.append(Const(" "))
            pieces.append(Op("str", arg))
        pieces.append(Const("\n"))
        builder.assign_expr(VAR_OUT, Op("StrConcat", *pieces))

    def _assign_target(self, builder: _BlockBuilder, target: ast.expr, value: Expr) -> None:
        if isinstance(target, ast.Name):
            builder.assign_expr(target.id, value)
            return
        if isinstance(target, ast.Subscript):
            base, index = self._subscript_parts(builder, target)
            if not isinstance(target.value, ast.Name):
                raise UnsupportedFeatureError("subscript assignment target", target.lineno)
            builder.assign_expr(
                target.value.id, Op("AssignElement", base, index, value)
            )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for position, element in enumerate(target.elts):
                self._assign_target(
                    builder, element, Op("GetElement", value, Const(position))
                )
            return
        raise UnsupportedFeatureError(
            f"assignment target {type(target).__name__}", getattr(target, "lineno", None)
        )

    def _subscript_parts(
        self, builder: _BlockBuilder, node: ast.Subscript
    ) -> tuple[Expr, Expr]:
        base = builder.convert(node.value)
        if isinstance(node.slice, ast.Slice):
            raise UnsupportedFeatureError("slice assignment", node.lineno)
        index = builder.convert(node.slice)
        return base, index

    # -- loop-free if ------------------------------------------------------------

    def _translate_loopfree_if(self, statement: ast.If, builder: _BlockBuilder) -> None:
        condition = builder.convert(statement.test)
        guard = builder.guard()

        then_builder = builder.branch_copy()
        self._translate_loopfree_block(statement.body, then_builder)
        else_builder = builder.branch_copy()
        if statement.orelse:
            self._translate_loopfree_block(statement.orelse, else_builder)

        assigned = set(then_builder.updates) | set(else_builder.updates)
        for var in assigned:
            then_value = then_builder.current(var)
            else_value = else_builder.current(var)
            if then_value == else_value:
                merged = then_value
            else:
                merged = Op("ite", condition, then_value, else_value)
            if guard != Const(True):
                merged = Op("ite", guard, merged, builder.current(var))
            builder.updates[var] = simplify(merged)

    def _translate_loopfree_block(
        self, statements: Sequence[ast.stmt], builder: _BlockBuilder
    ) -> None:
        for statement in statements:
            if isinstance(statement, (ast.For, ast.While)):  # pragma: no cover
                raise UnsupportedFeatureError("loop in loop-free region", statement.lineno)
            self._translate_simple(statement, builder)

    # -- branching if (contains loops) ------------------------------------------

    def _translate_branching_if(
        self, statement: ast.If, builder: _BlockBuilder
    ) -> _BlockBuilder:
        self._flush(builder)
        cond_loc = self.program.add_location("if-cond", line=statement.lineno)
        self.program.set_successor(builder.loc_id, cond_loc.loc_id, cond_loc.loc_id)

        cond_builder = self._new_builder(cond_loc.loc_id, builder.loops)
        condition = cond_builder.convert(statement.test)
        guard = cond_builder.guard()
        cond_builder.updates[VAR_COND] = simplify(
            conjunction([guard, condition]) if guard != Const(True) else condition
        )
        self._flush(cond_builder)

        then_loc = self.program.add_location("if-then", line=statement.lineno)
        else_loc = self.program.add_location("if-else", line=statement.lineno)
        self.program.set_successor(cond_loc.loc_id, then_loc.loc_id, else_loc.loc_id)

        then_builder = self._new_builder(then_loc.loc_id, builder.loops)
        then_exit = self._translate_statements(statement.body, then_builder)
        self._flush(then_exit)

        else_builder = self._new_builder(else_loc.loc_id, builder.loops)
        else_exit = self._translate_statements(statement.orelse, else_builder)
        self._flush(else_exit)

        join_loc = self.program.add_location("if-join", line=statement.lineno)
        self.program.set_successor(then_exit.loc_id, join_loc.loc_id, join_loc.loc_id)
        self.program.set_successor(else_exit.loc_id, join_loc.loc_id, join_loc.loc_id)
        return self._new_builder(join_loc.loc_id, builder.loops)

    # -- loops -----------------------------------------------------------------

    def _translate_loop(
        self, statement: ast.For | ast.While, builder: _BlockBuilder
    ) -> _BlockBuilder:
        if getattr(statement, "orelse", None):
            raise UnsupportedFeatureError("loop else clause", statement.lineno)

        body = statement.body
        has_break = _contains(body, (ast.Break,))
        has_continue = _contains(body, (ast.Continue,))
        body_returns = _contains(body, (ast.Return,))

        self._loop_counter += 1
        ctx = _LoopContext(self._loop_counter, has_break, has_continue)

        iterator_var: str | None = None
        if isinstance(statement, ast.For):
            self._iter_counter += 1
            iterator_var = f"$iter{self._iter_counter}"
            builder.assign_expr(iterator_var, builder.convert(statement.iter))
        if has_break:
            builder.assign_expr(ctx.break_var, Const(False), guarded=False)

        self._flush(builder)
        cond_loc = self.program.add_location("loop-cond", line=statement.lineno)
        self.program.set_successor(builder.loc_id, cond_loc.loc_id, cond_loc.loc_id)

        outer_loops = builder.loops
        loops_with_ctx = outer_loops + [ctx]

        # The condition location may be revisited after the body has set the
        # return flag, so the flag must be treated as unknown there whenever
        # the body can return.
        cond_builder = self._new_builder(
            cond_loc.loc_id,
            outer_loops,
            may_have_returned=self.may_have_returned or body_returns,
        )
        guard_terms: list[Expr] = [negation(cond_builder.current(VAR_RETFLAG))]
        if has_break:
            guard_terms.append(negation(Var(ctx.break_var)))
        if isinstance(statement, ast.For):
            raw_condition: Expr = Op("Gt", Op("len", Var(iterator_var)), Const(0))
        else:
            raw_condition = cond_builder.convert(statement.test)
        cond_builder.updates[VAR_COND] = simplify(
            conjunction(guard_terms + [raw_condition])
        )
        if has_continue:
            cond_builder.updates[ctx.cont_var] = Const(False)
        self._flush(cond_builder)

        body_loc = self.program.add_location("loop-body", line=statement.lineno)
        after_loc = self.program.add_location("after-loop", line=statement.lineno)
        self.program.set_successor(cond_loc.loc_id, body_loc.loc_id, after_loc.loc_id)

        body_builder = self._new_builder(
            body_loc.loc_id,
            loops_with_ctx,
            may_have_returned=False,
        )
        if isinstance(statement, ast.For):
            self._assign_loop_target(body_builder, statement.target, iterator_var)
        body_exit = self._translate_statements(body, body_builder)
        self._flush(body_exit)
        self.program.set_successor(body_exit.loc_id, cond_loc.loc_id, cond_loc.loc_id)

        if body_returns:
            self.may_have_returned = True
        return self._new_builder(after_loc.loc_id, outer_loops)

    def _assign_loop_target(
        self, builder: _BlockBuilder, target: ast.expr, iterator_var: str
    ) -> None:
        head = Op("ListHead", Var(iterator_var))
        if isinstance(target, ast.Name):
            builder.assign_expr(target.id, head, guarded=False)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for position, element in enumerate(target.elts):
                if not isinstance(element, ast.Name):
                    raise UnsupportedFeatureError("nested loop target", target.lineno)
                builder.assign_expr(
                    element.id, Op("GetElement", head, Const(position)), guarded=False
                )
        else:
            raise UnsupportedFeatureError(
                f"loop target {type(target).__name__}", getattr(target, "lineno", None)
            )
        builder.assign_expr(
            iterator_var, Op("ListTail", Var(iterator_var)), guarded=False
        )

    # -- expression conversion ----------------------------------------------

    def convert_expression(self, node: ast.expr) -> Expr:
        """Convert a Python expression AST into a model expression (no substitution)."""
        if isinstance(node, ast.Name):
            return Var(node.id)
        if isinstance(node, ast.Constant):
            value = node.value
            if value is Ellipsis:
                raise UnsupportedFeatureError("ellipsis literal", node.lineno)
            return Const(value)
        if isinstance(node, ast.BinOp):
            name = _BINOP_NAMES.get(type(node.op))
            if name is None:
                raise UnsupportedFeatureError(
                    f"operator {type(node.op).__name__}", node.lineno
                )
            return Op(name, self.convert_expression(node.left), self.convert_expression(node.right))
        if isinstance(node, ast.UnaryOp):
            name = _UNARYOP_NAMES.get(type(node.op))
            if name is None:
                raise UnsupportedFeatureError(
                    f"operator {type(node.op).__name__}", node.lineno
                )
            return Op(name, self.convert_expression(node.operand))
        if isinstance(node, ast.BoolOp):
            name = "And" if isinstance(node.op, ast.And) else "Or"
            result = self.convert_expression(node.values[0])
            for value in node.values[1:]:
                result = Op(name, result, self.convert_expression(value))
            return result
        if isinstance(node, ast.Compare):
            terms: list[Expr] = []
            left = self.convert_expression(node.left)
            for op, comparator in zip(node.ops, node.comparators):
                name = _CMPOP_NAMES.get(type(op))
                if name is None:
                    raise UnsupportedFeatureError(
                        f"comparison {type(op).__name__}", node.lineno
                    )
                right = self.convert_expression(comparator)
                terms.append(Op(name, left, right))
                left = right
            return conjunction(terms) if len(terms) > 1 else terms[0]
        if isinstance(node, ast.Call):
            return self._convert_call(node)
        if isinstance(node, ast.Subscript):
            return self._convert_subscript(node)
        if isinstance(node, ast.List):
            if not node.elts:
                return Const([])
            return Op("ListInit", *[self.convert_expression(e) for e in node.elts])
        if isinstance(node, ast.Tuple):
            return Op("TupleInit", *[self.convert_expression(e) for e in node.elts])
        if isinstance(node, ast.IfExp):
            return Op(
                "ite",
                self.convert_expression(node.test),
                self.convert_expression(node.body),
                self.convert_expression(node.orelse),
            )
        if isinstance(node, ast.Attribute):
            return Op(f"Attr_{node.attr}", self.convert_expression(node.value))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            raise UnsupportedFeatureError("comprehension", node.lineno)
        if isinstance(node, ast.Lambda):
            raise UnsupportedFeatureError("lambda", node.lineno)
        if isinstance(node, (ast.Dict, ast.Set)):
            raise UnsupportedFeatureError("dict/set literal", node.lineno)
        if isinstance(node, ast.Starred):
            raise UnsupportedFeatureError("starred expression", node.lineno)
        raise UnsupportedFeatureError(type(node).__name__, getattr(node, "lineno", None))

    def _convert_call(self, node: ast.Call) -> Expr:
        if node.keywords:
            raise UnsupportedFeatureError("keyword arguments", node.lineno)
        args = [self.convert_expression(a) for a in node.args]
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _KNOWN_CALLS:
                return Op(name, *args)
            # A call to an unknown / student-defined function: keep the name
            # so the repair can still reason about it; it evaluates to ⊥.
            return Op(name, *args)
        if isinstance(node.func, ast.Attribute):
            obj = self.convert_expression(node.func.value)
            method = node.func.attr
            if method == "append" and len(args) == 1:
                return Op("append", obj, args[0])
            return Op(f"Method_{method}", obj, *args)
        raise UnsupportedFeatureError("computed call target", node.lineno)

    def _convert_subscript(self, node: ast.Subscript) -> Expr:
        base = self.convert_expression(node.value)
        if isinstance(node.slice, ast.Slice):
            lower = (
                self.convert_expression(node.slice.lower)
                if node.slice.lower is not None
                else Const(None)
            )
            upper = (
                self.convert_expression(node.slice.upper)
                if node.slice.upper is not None
                else Const(None)
            )
            if node.slice.step is not None:
                step = self.convert_expression(node.slice.step)
                return Op("SliceStep", base, lower, upper, step)
            return Op("Slice", base, lower, upper)
        index = self.convert_expression(node.slice)
        return Op("GetElement", base, index)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_python_source(source: str, entry: str | None = None) -> Program:
    """Parse Python source text and translate ``entry`` (or the only/first
    function definition) into a :class:`Program`."""
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise ParseError(f"syntax error: {exc}") from exc
    functions = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if not functions:
        raise ParseError("no function definition found")
    if entry is not None:
        for func in functions:
            if func.name == entry:
                return parse_python_function(func, source)
        raise ParseError(f"function {entry!r} not found")
    return parse_python_function(functions[0], source)


def parse_python_function(func: ast.FunctionDef, source: str) -> Program:
    """Translate a single ``ast.FunctionDef`` into a :class:`Program`."""
    return _Translator(func, source).translate()
