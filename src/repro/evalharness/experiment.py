"""Experiment runner: clustering + repair over a synthetic corpus.

This reproduces the measurement loop behind Table 1 / Figs. 6-7: for every
problem, cluster the correct pool, then run Clara (and optionally the
AutoGrader baseline) on every incorrect attempt, recording status, repair
cost, relative size, number of modified expressions and timing.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..baseline import AutoGrader
from ..core.feedback import GENERIC_FEEDBACK_THRESHOLD
from ..core.pipeline import Clara, RepairStatus
from ..datasets import Corpus, ProblemSpec, generate_corpus, get_problem
from ..frontend import FrontendError, parse_source

__all__ = ["AttemptResult", "ProblemResult", "run_problem", "run_experiment"]


@dataclass
class AttemptResult:
    """Per-incorrect-attempt measurements."""

    problem: str
    fault_label: str
    status: str
    elapsed: float = 0.0
    cost: float | None = None
    relative_size: float | None = None
    num_modified: int | None = None
    provenance_members: int = 0
    feedback_generic: bool | None = None
    repaired_passes: bool | None = None
    # AutoGrader baseline measurements.
    autograder_repaired: bool | None = None
    autograder_modified: int | None = None
    autograder_elapsed: float | None = None

    @property
    def repaired(self) -> bool:
        return self.status == RepairStatus.REPAIRED


@dataclass
class ProblemResult:
    """Aggregated per-problem results (one row of Table 1)."""

    problem: str
    n_correct: int
    n_clusters: int
    n_incorrect: int
    clustering_time: float
    attempts: list[AttemptResult] = field(default_factory=list)
    loc_median: float = 0.0
    ast_size_median: float = 0.0

    # -- Clara aggregates -------------------------------------------------------

    @property
    def n_repaired(self) -> int:
        return sum(1 for a in self.attempts if a.repaired)

    @property
    def repair_rate(self) -> float:
        return self.n_repaired / self.n_incorrect if self.n_incorrect else 0.0

    @property
    def avg_time(self) -> float:
        times = [a.elapsed for a in self.attempts if a.repaired]
        return statistics.fmean(times) if times else 0.0

    @property
    def median_time(self) -> float:
        times = [a.elapsed for a in self.attempts if a.repaired]
        return statistics.median(times) if times else 0.0

    # -- AutoGrader aggregates ---------------------------------------------------

    @property
    def n_autograder_repaired(self) -> int:
        return sum(1 for a in self.attempts if a.autograder_repaired)

    @property
    def autograder_repair_rate(self) -> float:
        return self.n_autograder_repaired / self.n_incorrect if self.n_incorrect else 0.0

    @property
    def avg_autograder_time(self) -> float:
        times = [
            a.autograder_elapsed
            for a in self.attempts
            if a.autograder_elapsed is not None and a.autograder_repaired
        ]
        return statistics.fmean(times) if times else 0.0

    def relative_sizes(self) -> list[float]:
        return [a.relative_size for a in self.attempts if a.relative_size is not None]

    def failure_breakdown(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for attempt in self.attempts:
            if not attempt.repaired:
                out[attempt.status] = out.get(attempt.status, 0) + 1
        return out


def _source_metrics(corpus: Corpus) -> tuple[float, float]:
    """Median LOC and median model AST size over the correct pool."""
    locs: list[int] = []
    sizes: list[int] = []
    for attempt in corpus.correct:
        locs.append(len([line for line in attempt.source.splitlines() if line.strip()]))
        try:
            program = parse_source(
                attempt.source, language=corpus.problem.language, entry=corpus.problem.entry
            )
            sizes.append(program.ast_size())
        except FrontendError:
            continue
    return (
        statistics.median(locs) if locs else 0.0,
        statistics.median(sizes) if sizes else 0.0,
    )


def run_problem(
    problem: ProblemSpec | str,
    *,
    n_correct: int | None = None,
    n_incorrect: int | None = None,
    seed: int = 0,
    run_autograder: bool = False,
    solver: str = "ilp",
    use_cluster_expressions: bool = True,
    timeout: float | None = 60.0,
    generic_threshold: float = GENERIC_FEEDBACK_THRESHOLD,
    corpus: Corpus | None = None,
) -> ProblemResult:
    """Run the clustering-and-repair experiment for one problem."""
    if isinstance(problem, str):
        problem = get_problem(problem)
    if corpus is None:
        corpus = generate_corpus(problem, n_correct, n_incorrect, seed=seed)

    # Caching is disabled so the reproduced Table 1/2 timings keep measuring
    # the paper's per-attempt repair cost; duplicate attempts in the corpus
    # would otherwise hit the repair memo and report near-zero elapsed (the
    # cached path is measured separately by benchmarks/test_batch_throughput).
    from ..engine import RepairCaches

    clara = Clara(
        cases=problem.cases,
        language=problem.language,
        entry=problem.entry,
        solver=solver,
        timeout=timeout,
        use_cluster_expressions=use_cluster_expressions,
        generic_threshold=generic_threshold,
        caches=RepairCaches(enabled=False),
    )
    started = time.perf_counter()
    clara.add_correct_sources(corpus.correct_sources)
    clustering_time = time.perf_counter() - started

    autograder = AutoGrader(cases=problem.cases) if run_autograder else None

    loc_median, ast_median = _source_metrics(corpus)
    result = ProblemResult(
        problem=problem.name,
        n_correct=len(corpus.correct),
        n_clusters=clara.cluster_count,
        n_incorrect=len(corpus.incorrect),
        clustering_time=clustering_time,
        loc_median=loc_median,
        ast_size_median=ast_median,
    )

    for attempt in corpus.incorrect:
        outcome = clara.repair_source(attempt.source)
        record = AttemptResult(
            problem=problem.name,
            fault_label=attempt.label,
            status=outcome.status,
            elapsed=outcome.elapsed,
        )
        if outcome.repair is not None:
            repair = outcome.repair
            record.cost = repair.cost
            record.relative_size = repair.relative_size()
            record.num_modified = repair.num_modified_expressions
            record.provenance_members = len(repair.provenance_members)
            record.feedback_generic = outcome.feedback.generic if outcome.feedback else None
            if repair.repaired_program is not None:
                from ..core.inputs import is_correct

                record.repaired_passes = is_correct(repair.repaired_program, problem.cases)
        if autograder is not None:
            try:
                program = parse_source(
                    attempt.source, language=problem.language, entry=problem.entry
                )
            except FrontendError:
                record.autograder_repaired = False
                record.autograder_elapsed = 0.0
            else:
                ag_repair = autograder.repair(program)
                record.autograder_repaired = ag_repair is not None
                record.autograder_elapsed = (
                    ag_repair.elapsed if ag_repair is not None else autograder.timeout
                )
                record.autograder_modified = (
                    ag_repair.num_modified_expressions if ag_repair is not None else None
                )
        result.attempts.append(record)

    return result


def run_experiment(
    problems: Sequence[ProblemSpec | str],
    *,
    n_correct: int | None = None,
    n_incorrect: int | None = None,
    seed: int = 0,
    run_autograder: bool = False,
    solver: str = "ilp",
    use_cluster_expressions: bool = True,
) -> list[ProblemResult]:
    """Run :func:`run_problem` over a list of problems."""
    return [
        run_problem(
            problem,
            n_correct=n_correct,
            n_incorrect=n_incorrect,
            seed=seed,
            run_autograder=run_autograder,
            solver=solver,
            use_cluster_expressions=use_cluster_expressions,
        )
        for problem in problems
    ]
