"""Metrics and aggregations over experiment results."""

from __future__ import annotations

import math
import statistics
from typing import Iterable, Sequence

from .experiment import AttemptResult, ProblemResult

__all__ = [
    "relative_size_histogram",
    "RELATIVE_SIZE_BUCKETS",
    "modified_expression_distribution",
    "autograder_comparison_counts",
    "provenance_statistics",
    "quality_proxy",
]

#: Bucket upper bounds for the Fig. 6 histogram (the last bucket is ∞).
RELATIVE_SIZE_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def relative_size_histogram(
    results: Iterable[ProblemResult],
) -> dict[str, int]:
    """Histogram of relative repair sizes (Fig. 6).

    Buckets are labelled by their upper bound; repairs larger than 1.0 land in
    ``">1.0"`` and repairs of empty programs land in ``"inf"``.
    """
    labels = [f"<{b:.1f}" for b in RELATIVE_SIZE_BUCKETS] + [">1.0", "inf"]
    histogram = {label: 0 for label in labels}
    for result in results:
        for size in result.relative_sizes():
            if math.isinf(size):
                histogram["inf"] += 1
                continue
            for bound in RELATIVE_SIZE_BUCKETS:
                if size < bound:
                    histogram[f"<{bound:.1f}"] += 1
                    break
            else:
                histogram[">1.0"] += 1
    return histogram


def cumulative_fraction_below(results: Iterable[ProblemResult], bound: float) -> float:
    """Fraction of repairs with relative size below ``bound`` (paper: 68% < 0.3)."""
    sizes = [s for result in results for s in result.relative_sizes()]
    if not sizes:
        return 0.0
    return sum(1 for s in sizes if not math.isinf(s) and s < bound) / len(sizes)


def modified_expression_distribution(
    results: Iterable[ProblemResult], *, tool: str = "clara", max_bucket: int = 6
) -> dict[str, int]:
    """Distribution of the number of modified expressions per repair (Fig. 7b)."""
    histogram = {str(i): 0 for i in range(1, max_bucket)}
    histogram[f"{max_bucket}+"] = 0
    for result in results:
        for attempt in result.attempts:
            count = (
                attempt.num_modified
                if tool == "clara"
                else attempt.autograder_modified
            )
            if count is None:
                continue
            if tool == "clara" and not attempt.repaired:
                continue
            key = str(count) if 0 < count < max_bucket else (f"{max_bucket}+" if count >= max_bucket else None)
            if key is not None:
                histogram[key] += 1
    return histogram


def autograder_comparison_counts(results: Iterable[ProblemResult]) -> dict[str, int]:
    """Fig. 7(a): on attempts both tools repair, who modifies fewer expressions."""
    counts = {"equal": 0, "autograder_fewer": 0, "clara_fewer": 0}
    for result in results:
        for attempt in result.attempts:
            if not attempt.repaired or not attempt.autograder_repaired:
                continue
            if attempt.num_modified is None or attempt.autograder_modified is None:
                continue
            if attempt.num_modified == attempt.autograder_modified:
                counts["equal"] += 1
            elif attempt.autograder_modified < attempt.num_modified:
                counts["autograder_fewer"] += 1
            else:
                counts["clara_fewer"] += 1
    return counts


def provenance_statistics(results: Iterable[ProblemResult]) -> dict[str, float]:
    """Fraction of repairs drawing expressions from ≥2 / ≥3 cluster members.

    Reproduces the "Clusters" paragraph of §6.2 (paper: ~50% use at least two
    different correct solutions, ~3% at least three).
    """
    repaired = [
        attempt
        for result in results
        for attempt in result.attempts
        if attempt.repaired
    ]
    if not repaired:
        return {"total": 0, "at_least_two": 0.0, "at_least_three": 0.0}
    at_least_two = sum(1 for a in repaired if a.provenance_members >= 2)
    at_least_three = sum(1 for a in repaired if a.provenance_members >= 3)
    return {
        "total": len(repaired),
        "at_least_two": at_least_two / len(repaired),
        "at_least_three": at_least_three / len(repaired),
    }


def quality_proxy(results: Iterable[ProblemResult]) -> dict[str, float]:
    """Automated stand-in for the manual repair-quality inspection (§6.2 (3)).

    The paper's manual inspection found 81% of repairs to be small, natural
    repairs.  Without humans we classify a repair as *good quality* when it
    (a) makes the repaired program pass the full test suite and (b) has a
    relative size below 0.35 (small, targeted change), and as *trivial-ish*
    when it rewrites most of the program (relative size >= 0.75).
    """
    repaired = [
        attempt
        for result in results
        for attempt in result.attempts
        if attempt.repaired and attempt.relative_size is not None
    ]
    if not repaired:
        return {"total": 0, "good_quality": 0.0, "large_rewrite": 0.0, "passes": 0.0}
    good = sum(
        1
        for a in repaired
        if a.relative_size < 0.35 and (a.repaired_passes is not False)
    )
    large = sum(1 for a in repaired if math.isinf(a.relative_size) or a.relative_size >= 0.75)
    passes = sum(1 for a in repaired if a.repaired_passes)
    return {
        "total": len(repaired),
        "good_quality": good / len(repaired),
        "large_rewrite": large / len(repaired),
        "passes": passes / len(repaired),
    }


def summarize_times(attempts: Sequence[AttemptResult]) -> tuple[float, float]:
    """(average, median) repair time over repaired attempts."""
    times = [a.elapsed for a in attempts if a.repaired]
    if not times:
        return 0.0, 0.0
    return statistics.fmean(times), statistics.median(times)
