"""Table renderers reproducing Table 1 and Table 2 of the paper."""

from __future__ import annotations

from typing import Sequence

from .experiment import ProblemResult
from .userstudy import UserStudyProblemResult

__all__ = ["format_table1", "format_table2", "format_failure_breakdown"]


def _fmt_pct(value: float) -> str:
    return f"{100 * value:.2f}%"


def format_table1(
    results: Sequence[ProblemResult],
    *,
    with_autograder: bool = True,
    with_times: bool = True,
) -> str:
    """Render Table 1: per-problem repair counts, rates and times.

    Args:
        results: One :class:`ProblemResult` per MOOC problem.
        with_autograder: Include the AutoGrader-baseline columns.
        with_times: Include wall-clock columns (``avg(med) s``, ``AG avg s``).
            Committed ``results/`` artifacts are rendered with
            ``with_times=False`` so they stay byte-stable across machines;
            the timed variant goes to the local-only report.
    """
    header = f"{'problem':<20} {'LOC':>4} {'AST':>4} {'#corr':>6} {'#clust':>7} " f"{'#incorr':>8} {'Clara rep':>12} {'Clara %':>9}"
    if with_times:
        header += f" {'avg(med) s':>12}"
    if with_autograder:
        header += f" {'AG rep':>7} {'AG %':>8}"
        if with_times:
            header += f" {'AG avg s':>9}"
    lines = [header, "-" * len(header)]

    totals = {
        "correct": 0,
        "clusters": 0,
        "incorrect": 0,
        "repaired": 0,
        "ag_repaired": 0,
        "times": [],
        "ag_times": [],
    }
    for result in results:
        row = (
            f"{result.problem:<20} {result.loc_median:>4.0f} {result.ast_size_median:>4.0f} "
            f"{result.n_correct:>6} {result.n_clusters:>7} {result.n_incorrect:>8} "
            f"{result.n_repaired:>12} {_fmt_pct(result.repair_rate):>9}"
        )
        if with_times:
            row += f" {result.avg_time:>6.2f}({result.median_time:.2f})"
        if with_autograder:
            row += (
                f" {result.n_autograder_repaired:>7} "
                f"{_fmt_pct(result.autograder_repair_rate):>8}"
            )
            if with_times:
                row += f" {result.avg_autograder_time:>9.2f}"
        lines.append(row)
        totals["correct"] += result.n_correct
        totals["clusters"] += result.n_clusters
        totals["incorrect"] += result.n_incorrect
        totals["repaired"] += result.n_repaired
        totals["ag_repaired"] += result.n_autograder_repaired
        totals["times"].extend(a.elapsed for a in result.attempts if a.repaired)
        totals["ag_times"].extend(
            a.autograder_elapsed
            for a in result.attempts
            if a.autograder_repaired and a.autograder_elapsed is not None
        )

    total_rate = totals["repaired"] / totals["incorrect"] if totals["incorrect"] else 0.0
    ag_rate = totals["ag_repaired"] / totals["incorrect"] if totals["incorrect"] else 0.0
    avg_time = sum(totals["times"]) / len(totals["times"]) if totals["times"] else 0.0
    avg_ag = sum(totals["ag_times"]) / len(totals["ag_times"]) if totals["ag_times"] else 0.0
    total_row = (
        f"{'Total':<20} {'':>4} {'':>4} {totals['correct']:>6} {totals['clusters']:>7} "
        f"{totals['incorrect']:>8} {totals['repaired']:>12} {_fmt_pct(total_rate):>9}"
    )
    if with_times:
        total_row += f" {avg_time:>6.2f}(-)  "
    if with_autograder:
        total_row += f" {totals['ag_repaired']:>7} {_fmt_pct(ag_rate):>8}"
        if with_times:
            total_row += f" {avg_ag:>9.2f}"
    lines.append("-" * len(header))
    lines.append(total_row)
    return "\n".join(lines)


def format_failure_breakdown(results: Sequence[ProblemResult]) -> str:
    """Render the "(1) Clara fails" analysis of §6.2."""
    combined: dict[str, int] = {}
    for result in results:
        for status, count in result.failure_breakdown().items():
            combined[status] = combined.get(status, 0) + count
    if not combined:
        return "no failures"
    lines = ["failure breakdown (unrepaired attempts):"]
    for status, count in sorted(combined.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {status:<22} {count}")
    return "\n".join(lines)


def format_table2(
    results: Sequence[UserStudyProblemResult], *, with_times: bool = True
) -> str:
    """Render Table 2: the user-study summary.

    Args:
        results: One :class:`UserStudyProblemResult` per C problem.
        with_times: Include the wall-clock ``avg s`` / ``med s`` columns.
            Committed ``results/`` artifacts use ``with_times=False``; see
            :func:`format_table1`.
    """
    header = (
        f"{'problem':<20} {'#corr':>6} {'#clust':>7} {'#incorr':>8} "
        f"{'#feedback':>10} {'fb %':>8} {'#repair-fb':>11} {'rep-fb %':>9}"
    )
    if with_times:
        header += f" {'avg s':>7} {'med s':>7}"
    header += f"  {'grades 1/2/3/4/5':>18}"
    lines = [header, "-" * len(header)]
    for result in results:
        grades = "/".join(str(result.grade_histogram.get(g, 0)) for g in range(1, 6))
        row = (
            f"{result.problem:<20} {result.n_correct:>6} {result.n_clusters:>7} "
            f"{result.n_incorrect:>8} {result.n_feedback:>10} "
            f"{_fmt_pct(result.feedback_rate):>8} {result.n_repair_feedback:>11} "
            f"{_fmt_pct(result.repair_feedback_rate):>9}"
        )
        if with_times:
            row += f" {result.avg_time:>7.2f} {result.median_time:>7.2f}"
        lines.append(row + f"  {grades:>18}")
    avg_grade = _average_grade(results)
    lines.append("-" * len(header))
    lines.append(f"average usefulness grade over all problems: {avg_grade:.2f} (paper: 3.4)")
    return "\n".join(lines)


def _average_grade(results: Sequence[UserStudyProblemResult]) -> float:
    total = 0
    weight = 0
    for result in results:
        for grade, count in result.grade_histogram.items():
            total += grade * count
            weight += count
    return total / weight if weight else 0.0
