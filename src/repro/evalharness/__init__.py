"""Evaluation harness: experiment runners, metrics, tables and figures."""

from .experiment import AttemptResult, ProblemResult, run_experiment, run_problem
from .figures import ascii_bar_chart, render_fig6, render_fig7a, render_fig7b
from .metrics import (
    RELATIVE_SIZE_BUCKETS,
    autograder_comparison_counts,
    cumulative_fraction_below,
    modified_expression_distribution,
    provenance_statistics,
    quality_proxy,
    relative_size_histogram,
)
from .tables import format_failure_breakdown, format_table1, format_table2
from .userstudy import (
    USER_STUDY_GENERIC_THRESHOLD,
    USER_STUDY_TIMEOUT,
    UserStudyProblemResult,
    run_user_study,
    simulate_grade,
)

__all__ = [
    "AttemptResult",
    "ProblemResult",
    "run_experiment",
    "run_problem",
    "render_fig6",
    "render_fig7a",
    "render_fig7b",
    "ascii_bar_chart",
    "RELATIVE_SIZE_BUCKETS",
    "relative_size_histogram",
    "cumulative_fraction_below",
    "modified_expression_distribution",
    "autograder_comparison_counts",
    "provenance_statistics",
    "quality_proxy",
    "format_table1",
    "format_table2",
    "format_failure_breakdown",
    "UserStudyProblemResult",
    "run_user_study",
    "simulate_grade",
    "USER_STUDY_TIMEOUT",
    "USER_STUDY_GENERIC_THRESHOLD",
]
