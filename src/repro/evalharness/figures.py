"""ASCII figure renderers for Fig. 6 and Fig. 7 of the paper."""

from __future__ import annotations

from typing import Mapping, Sequence

from .experiment import ProblemResult
from .metrics import (
    autograder_comparison_counts,
    modified_expression_distribution,
    relative_size_histogram,
)

__all__ = ["render_fig6", "render_fig7a", "render_fig7b", "ascii_bar_chart"]


def ascii_bar_chart(data: Mapping[str, int], *, width: int = 50, title: str = "") -> str:
    """Render a mapping as a horizontal ASCII bar chart."""
    lines = [title] if title else []
    peak = max(data.values(), default=0)
    for label, value in data.items():
        bar = "#" * (round(width * value / peak) if peak else 0)
        lines.append(f"{label:>8} | {bar} {value}")
    return "\n".join(lines)


def render_fig6(results: Sequence[ProblemResult]) -> str:
    """Figure 6: histogram of relative repair sizes."""
    histogram = relative_size_histogram(results)
    return ascii_bar_chart(
        histogram, title="Figure 6 — histogram of relative repair sizes"
    )


def render_fig7a(results: Sequence[ProblemResult]) -> str:
    """Figure 7(a): number of attempts where each tool modifies fewer expressions."""
    counts = autograder_comparison_counts(results)
    data = {
        "equal": counts["equal"],
        "less AG": counts["autograder_fewer"],
        "less Clara": counts["clara_fewer"],
    }
    return ascii_bar_chart(
        data,
        title="Figure 7a — modified expressions per repair, attempts repaired by both tools",
    )


def render_fig7b(results: Sequence[ProblemResult]) -> str:
    """Figure 7(b): distribution of the number of modified expressions per repair."""
    clara = modified_expression_distribution(results, tool="clara")
    autograder = modified_expression_distribution(results, tool="autograder")
    lines = ["Figure 7b — distribution of modified expressions per repair"]
    lines.append(f"{'#expr':>6} {'Clara':>8} {'AutoGrader':>12}")
    for key in clara:
        lines.append(f"{key:>6} {clara[key]:>8} {autograder.get(key, 0):>12}")
    return "\n".join(lines)
