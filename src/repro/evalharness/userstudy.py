"""Simulated user study (paper §6.3, Table 2).

The measurable columns of Table 2 (attempt counts, cluster counts, feedback
rate, repair-based vs generic feedback, timing) are reproduced directly by
running the pipeline on a synthetic corpus of the six C problems with the
paper's 60-second timeout and cost-100 generic-feedback threshold.

The usefulness grades require human participants; we substitute a simple
participant model, documented here and in DESIGN.md: a participant's grade is
driven by how targeted the feedback is (small repairs get high grades, generic
strategy messages get low grades), plus per-participant noise.  The *shape*
the paper reports — an average around 3.4 with wide per-problem spread, and
pattern-printing problems (trapezoid, rhombus) scoring lower because their
repairs are bigger — is what this model is meant to preserve.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Sequence

from ..datasets import all_problems, generate_corpus
from .experiment import ProblemResult, run_problem

__all__ = ["UserStudyProblemResult", "run_user_study", "simulate_grade"]

#: The paper's interactive timeout.
USER_STUDY_TIMEOUT = 60.0
#: The paper's generic-feedback threshold (cost > 100 -> generic strategy).
USER_STUDY_GENERIC_THRESHOLD = 100.0


@dataclass
class UserStudyProblemResult:
    """One row of Table 2."""

    problem: str
    n_correct: int
    n_clusters: int
    n_incorrect: int
    n_feedback: int
    n_repair_feedback: int
    avg_time: float
    median_time: float
    grade_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def feedback_rate(self) -> float:
        return self.n_feedback / self.n_incorrect if self.n_incorrect else 0.0

    @property
    def repair_feedback_rate(self) -> float:
        return self.n_repair_feedback / self.n_feedback if self.n_feedback else 0.0

    @property
    def average_grade(self) -> float:
        total = sum(grade * count for grade, count in self.grade_histogram.items())
        count = sum(self.grade_histogram.values())
        return total / count if count else 0.0


def simulate_grade(
    relative_size: float | None, generic: bool, rng: random.Random
) -> int:
    """Participant model: grade 1-5 as a function of feedback quality."""
    if generic or relative_size is None:
        base = 2.0
    elif relative_size < 0.10:
        base = 4.6
    elif relative_size < 0.25:
        base = 4.0
    elif relative_size < 0.45:
        base = 3.3
    elif relative_size < 0.75:
        base = 2.6
    else:
        base = 2.0
    noisy = base + rng.gauss(0.0, 0.8)
    return max(1, min(5, round(noisy)))


def _to_user_study_row(
    result: ProblemResult, rng: random.Random
) -> UserStudyProblemResult:
    feedback_attempts = [a for a in result.attempts if a.repaired]
    repair_feedback = [a for a in feedback_attempts if a.feedback_generic is False]
    times = [a.elapsed for a in feedback_attempts]
    histogram: dict[int, int] = {g: 0 for g in range(1, 6)}
    for attempt in feedback_attempts:
        grade = simulate_grade(attempt.relative_size, bool(attempt.feedback_generic), rng)
        histogram[grade] += 1
    return UserStudyProblemResult(
        problem=result.problem,
        n_correct=result.n_correct,
        n_clusters=result.n_clusters,
        n_incorrect=result.n_incorrect,
        n_feedback=len(feedback_attempts),
        n_repair_feedback=len(repair_feedback),
        avg_time=statistics.fmean(times) if times else 0.0,
        median_time=statistics.median(times) if times else 0.0,
        grade_histogram=histogram,
    )


def run_user_study(
    *,
    n_correct: int | None = None,
    n_incorrect: int | None = None,
    seed: int = 0,
    problems: Sequence[str] | None = None,
) -> list[UserStudyProblemResult]:
    """Run the Table 2 experiment over the six C user-study problems."""
    specs = all_problems(experiment="user-study")
    if problems is not None:
        specs = [spec for spec in specs if spec.name in set(problems)]
    rng = random.Random(seed + 20180618)
    rows: list[UserStudyProblemResult] = []
    for spec in specs:
        corpus = generate_corpus(spec, n_correct, n_incorrect, seed=seed)
        result = run_problem(
            spec,
            corpus=corpus,
            timeout=USER_STUDY_TIMEOUT,
            generic_threshold=USER_STUDY_GENERIC_THRESHOLD,
            run_autograder=False,
        )
        rows.append(_to_user_study_row(result, rng))
    return rows
