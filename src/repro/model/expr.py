"""Expression trees for the Clara program model.

The paper (Def. 3.1) builds expressions from variables, constants and
operations.  We mirror that with three immutable node types:

* :class:`Var` -- a reference to a program variable.
* :class:`Const` -- a literal value (int, float, bool, str, ``None`` or an
  empty list/tuple).
* :class:`Op` -- an operation applied to argument expressions.  Operation
  names are plain strings; the interpreter (:mod:`repro.interpreter`) gives
  them meaning.  Unknown operations evaluate to the undefined value, which
  lets us model student code that calls functions that do not exist.

Expressions are hashable and comparable structurally, which the clustering
and repair algorithms rely on (expression pools are de-duplicated by
structural equality).
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Op",
    "VAR_COND",
    "VAR_RET",
    "VAR_RETFLAG",
    "VAR_OUT",
    "VAR_STDIN",
    "SPECIAL_VARS",
    "is_special_var",
    "is_iterator_var",
]

#: Special variable modelling the branch/loop condition (the paper's ``?``).
VAR_COND = "$cond"
#: Special variable modelling the return value (the paper's ``return``).
VAR_RET = "$ret"
#: Synthetic flag recording whether the function has returned (early returns).
VAR_RETFLAG = "$retflag"
#: Special variable accumulating printed output (used by the C problems).
VAR_OUT = "$out"
#: Special variable modelling the standard-input stream (list of values).
VAR_STDIN = "$stdin"

#: Variables that carry observable behaviour and must never be pruned.
SPECIAL_VARS = frozenset({VAR_COND, VAR_RET, VAR_OUT, VAR_STDIN})


def is_special_var(name: str) -> bool:
    """Return ``True`` for the model's reserved variables (``$``-prefixed)."""
    return name.startswith("$")


def is_iterator_var(name: str) -> bool:
    """Return ``True`` for synthetic for-loop iterator variables."""
    return name.startswith("$iter")


class Expr:
    """Base class of all expression nodes.

    Subclasses are immutable; all traversals below are allocation-free where
    possible because matching and repair evaluate and rewrite expressions in
    tight loops.
    """

    __slots__ = ()

    # -- structural helpers ------------------------------------------------

    def variables(self) -> set[str]:
        """Return the set of variable names occurring in the expression."""
        out: set[str] = set()
        self._collect_variables(out)
        return out

    def _collect_variables(self, out: set[str]) -> None:
        raise NotImplementedError

    def size(self) -> int:
        """Return the number of AST nodes (used by costs and metrics)."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        """Return the direct sub-expressions (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield the node and all descendants in pre-order."""
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    # -- rewriting ----------------------------------------------------------

    def substitute_vars(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Return a copy where each variable ``v`` is replaced by ``mapping[v]``.

        Variables not present in ``mapping`` are left untouched.
        """
        raise NotImplementedError

    def rename_vars(self, mapping: Mapping[str, str]) -> "Expr":
        """Return a copy where variable names are renamed via ``mapping``."""
        return self.substitute_vars(
            {old: Var(new) for old, new in mapping.items()}
        )

    def replace_at(self, path: tuple[int, ...], replacement: "Expr") -> "Expr":
        """Return a copy with the node at ``path`` replaced.

        A path is a tuple of child indices from the root; the empty path is
        the node itself.  Used by the AutoGrader baseline's rewrite rules.
        """
        if not path:
            return replacement
        raise IndexError(f"path {path!r} does not exist in {self!r}")

    def node_at(self, path: tuple[int, ...]) -> "Expr":
        """Return the node at ``path`` (see :meth:`replace_at`)."""
        if not path:
            return self
        raise IndexError(f"path {path!r} does not exist in {self!r}")

    def paths(self) -> Iterator[tuple[tuple[int, ...], "Expr"]]:
        """Yield ``(path, node)`` pairs for every node in the tree."""
        yield (), self
        for index, child in enumerate(self.children()):
            for sub_path, node in child.paths():
                yield (index, *sub_path), node

    # -- misc ---------------------------------------------------------------

    def map(self, fn: Callable[["Expr"], "Expr"]) -> "Expr":
        """Rebuild the tree bottom-up, applying ``fn`` to every node."""
        return fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self})"


class Var(Expr):
    """A reference to a program variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _collect_variables(self, out: set[str]) -> None:
        out.add(self.name)

    def size(self) -> int:
        return 1

    def substitute_vars(self, mapping: Mapping[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def map(self, fn: Callable[[Expr], Expr]) -> Expr:
        return fn(self)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __str__(self) -> str:
        return self.name


class Const(Expr):
    """A literal constant.

    ``value`` may be an ``int``, ``float``, ``bool``, ``str``, ``None`` or a
    (possibly empty) ``tuple``/``list`` of such values.  Lists are stored as
    given; the interpreter never mutates values in place.
    """

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def _collect_variables(self, out: set[str]) -> None:  # no variables
        return None

    def size(self) -> int:
        return 1

    def substitute_vars(self, mapping: Mapping[str, Expr]) -> Expr:
        return self

    def map(self, fn: Callable[[Expr], Expr]) -> Expr:
        return fn(self)

    def _key(self) -> tuple[str, object]:
        value = self.value
        if isinstance(value, list):
            value = ("__list__", tuple(value))
        return (type(value).__name__, value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other._key() == self._key()

    def __hash__(self) -> int:
        return hash(("Const", self._key()))

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        if isinstance(self.value, list):
            return "[" + ", ".join(repr(v) for v in self.value) + "]"
        return repr(self.value)


class Op(Expr):
    """An operation applied to argument expressions."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, *args: Expr) -> None:
        self.name = name
        self.args = tuple(args)

    def _collect_variables(self, out: set[str]) -> None:
        for arg in self.args:
            arg._collect_variables(out)

    def size(self) -> int:
        return 1 + sum(arg.size() for arg in self.args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def substitute_vars(self, mapping: Mapping[str, Expr]) -> Expr:
        new_args = tuple(arg.substitute_vars(mapping) for arg in self.args)
        if new_args == self.args:
            return self
        return Op(self.name, *new_args)

    def replace_at(self, path: tuple[int, ...], replacement: Expr) -> Expr:
        if not path:
            return replacement
        index, *rest = path
        if index >= len(self.args):
            raise IndexError(f"path {path!r} does not exist in {self!r}")
        new_args = list(self.args)
        new_args[index] = self.args[index].replace_at(tuple(rest), replacement)
        return Op(self.name, *new_args)

    def node_at(self, path: tuple[int, ...]) -> Expr:
        if not path:
            return self
        index, *rest = path
        if index >= len(self.args):
            raise IndexError(f"path {path!r} does not exist in {self!r}")
        return self.args[index].node_at(tuple(rest))

    def map(self, fn: Callable[[Expr], Expr]) -> Expr:
        new_args = tuple(arg.map(fn) for arg in self.args)
        node = self if new_args == self.args else Op(self.name, *new_args)
        return fn(node)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Op)
            and other.name == self.name
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("Op", self.name, self.args))

    def __str__(self) -> str:
        return render_expression(self)


# ---------------------------------------------------------------------------
# Pretty printing
# ---------------------------------------------------------------------------

_BINARY_SYMBOLS = {
    "Add": "+",
    "Sub": "-",
    "Mult": "*",
    "Div": "/",
    "FloorDiv": "//",
    "Mod": "%",
    "Pow": "**",
    "Eq": "==",
    "NotEq": "!=",
    "Lt": "<",
    "LtE": "<=",
    "Gt": ">",
    "GtE": ">=",
    "And": "and",
    "Or": "or",
    "In": "in",
    "NotIn": "not in",
}

_UNARY_SYMBOLS = {
    "USub": "-",
    "UAdd": "+",
    "Not": "not ",
}


def render_expression(expr: Expr) -> str:
    """Render an expression as readable, Python-like source text.

    The output is used in feedback messages shown to students, so it aims to
    look like the code they wrote rather than like an internal dump.
    """
    if isinstance(expr, (Var, Const)):
        return str(expr)
    if not isinstance(expr, Op):  # pragma: no cover - defensive
        return repr(expr)
    name = expr.name
    args = expr.args
    if name in _BINARY_SYMBOLS and len(args) == 2:
        left = _render_child(args[0])
        right = _render_child(args[1])
        return f"{left} {_BINARY_SYMBOLS[name]} {right}"
    if name in _UNARY_SYMBOLS and len(args) == 1:
        return f"{_UNARY_SYMBOLS[name]}{_render_child(args[0])}"
    if name == "ite" and len(args) == 3:
        return (
            f"({render_expression(args[1])} if {render_expression(args[0])}"
            f" else {render_expression(args[2])})"
        )
    if name == "GetElement" and len(args) == 2:
        return f"{_render_child(args[0])}[{render_expression(args[1])}]"
    if name == "ListInit":
        return "[" + ", ".join(render_expression(a) for a in args) + "]"
    if name == "TupleInit":
        rendered = ", ".join(render_expression(a) for a in args)
        if len(args) == 1:
            rendered += ","
        return "(" + rendered + ")"
    if name == "Slice" and len(args) == 3:
        return (
            f"{_render_child(args[0])}[{render_expression(args[1])}:"
            f"{render_expression(args[2])}]"
        )
    rendered_args = ", ".join(render_expression(a) for a in args)
    return f"{name}({rendered_args})"


def _render_child(expr: Expr) -> str:
    text = render_expression(expr)
    if isinstance(expr, Op) and (
        expr.name in _BINARY_SYMBOLS or expr.name in ("ite",)
    ):
        return f"({text})"
    return text


# ---------------------------------------------------------------------------
# Convenience constructors used across the code base
# ---------------------------------------------------------------------------

TRUE = Const(True)
FALSE = Const(False)


def conjunction(terms: Sequence[Expr]) -> Expr:
    """Build ``And`` of ``terms``, folding trivial cases."""
    significant = [t for t in terms if t != TRUE]
    if not significant:
        return TRUE
    result = significant[0]
    for term in significant[1:]:
        result = Op("And", result, term)
    return result


def negation(term: Expr) -> Expr:
    """Build ``Not(term)`` folding double negation and constants."""
    if isinstance(term, Const) and isinstance(term.value, bool):
        return Const(not term.value)
    if isinstance(term, Op) and term.name == "Not" and len(term.args) == 1:
        return term.args[0]
    return Op("Not", term)
