"""Expression trees for the Clara program model.

The paper (Def. 3.1) builds expressions from variables, constants and
operations.  We mirror that with three immutable node types:

* :class:`Var` -- a reference to a program variable.
* :class:`Const` -- a literal value (int, float, bool, str, ``None`` or an
  empty list/tuple).
* :class:`Op` -- an operation applied to argument expressions.  Operation
  names are plain strings; the interpreter (:mod:`repro.interpreter`) gives
  them meaning.  Unknown operations evaluate to the undefined value, which
  lets us model student code that calls functions that do not exist.

Expressions are hashable and comparable structurally, which the clustering
and repair algorithms rely on (expression pools are de-duplicated by
structural equality).

Hashes and structural keys are computed once per node and cached (the
matching and repair loops hash the same expressions millions of times), and
:func:`intern_expr` hash-conses expressions into canonical objects so that
identical sub-expressions share one node — and therefore one cached hash,
one structural key and one memoized tree annotation (see
:class:`repro.ted.zhang_shasha.TedCache`).
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Op",
    "intern_expr",
    "clear_intern_table",
    "intern_table_size",
    "VAR_COND",
    "VAR_RET",
    "VAR_RETFLAG",
    "VAR_OUT",
    "VAR_STDIN",
    "SPECIAL_VARS",
    "is_special_var",
    "is_iterator_var",
]

#: Special variable modelling the branch/loop condition (the paper's ``?``).
VAR_COND = "$cond"
#: Special variable modelling the return value (the paper's ``return``).
VAR_RET = "$ret"
#: Synthetic flag recording whether the function has returned (early returns).
VAR_RETFLAG = "$retflag"
#: Special variable accumulating printed output (used by the C problems).
VAR_OUT = "$out"
#: Special variable modelling the standard-input stream (list of values).
VAR_STDIN = "$stdin"

#: Variables that carry observable behaviour and must never be pruned.
SPECIAL_VARS = frozenset({VAR_COND, VAR_RET, VAR_OUT, VAR_STDIN})


def is_special_var(name: str) -> bool:
    """Return ``True`` for the model's reserved variables (``$``-prefixed)."""
    return name.startswith("$")


def is_iterator_var(name: str) -> bool:
    """Return ``True`` for synthetic for-loop iterator variables."""
    return name.startswith("$iter")


class Expr:
    """Base class of all expression nodes.

    Subclasses are immutable; all traversals below are allocation-free where
    possible because matching and repair evaluate and rewrite expressions in
    tight loops.
    """

    __slots__ = ()

    # -- structural helpers ------------------------------------------------

    def variables(self) -> set[str]:
        """Return the set of variable names occurring in the expression."""
        out: set[str] = set()
        self._collect_variables(out)
        return out

    def _collect_variables(self, out: set[str]) -> None:
        raise NotImplementedError

    def size(self) -> int:
        """Return the number of AST nodes (used by costs and metrics)."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        """Return the direct sub-expressions (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield the node and all descendants in pre-order."""
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def structural_key(self) -> tuple:
        """Return a hashable tuple identifying the expression structurally.

        Two expressions are ``==`` exactly when their structural keys are
        equal.  The key is computed once per node and cached, so repeated
        lookups (cache keys, interning) are O(1) after the first call.
        """
        key = self._skey
        if key is None:
            key = self._compute_key()
            self._skey = key
        return key

    def _compute_key(self) -> tuple:
        raise NotImplementedError

    # -- rewriting ----------------------------------------------------------

    def substitute_vars(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Return a copy where each variable ``v`` is replaced by ``mapping[v]``.

        Variables not present in ``mapping`` are left untouched.
        """
        raise NotImplementedError

    def rename_vars(self, mapping: Mapping[str, str]) -> "Expr":
        """Return a copy where variable names are renamed via ``mapping``."""
        return self.substitute_vars(
            {old: Var(new) for old, new in mapping.items()}
        )

    def replace_at(self, path: tuple[int, ...], replacement: "Expr") -> "Expr":
        """Return a copy with the node at ``path`` replaced.

        A path is a tuple of child indices from the root; the empty path is
        the node itself.  Used by the AutoGrader baseline's rewrite rules.
        """
        if not path:
            return replacement
        raise IndexError(f"path {path!r} does not exist in {self!r}")

    def node_at(self, path: tuple[int, ...]) -> "Expr":
        """Return the node at ``path`` (see :meth:`replace_at`)."""
        if not path:
            return self
        raise IndexError(f"path {path!r} does not exist in {self!r}")

    def paths(self) -> Iterator[tuple[tuple[int, ...], "Expr"]]:
        """Yield ``(path, node)`` pairs for every node in the tree."""
        yield (), self
        for index, child in enumerate(self.children()):
            for sub_path, node in child.paths():
                yield (index, *sub_path), node

    # -- misc ---------------------------------------------------------------

    def map(self, fn: Callable[["Expr"], "Expr"]) -> "Expr":
        """Rebuild the tree bottom-up, applying ``fn`` to every node."""
        return fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self})"


class Var(Expr):
    """A reference to a program variable."""

    __slots__ = ("name", "_skey", "_hash")

    def __init__(self, name: str) -> None:
        self.name = name
        self._skey = None
        self._hash = None

    def _collect_variables(self, out: set[str]) -> None:
        out.add(self.name)

    def size(self) -> int:
        return 1

    def substitute_vars(self, mapping: Mapping[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def map(self, fn: Callable[[Expr], Expr]) -> Expr:
        return fn(self)

    def _compute_key(self) -> tuple:
        return ("v", self.name)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(("Var", self.name))
            self._hash = value
        return value

    def __str__(self) -> str:
        return self.name


class Const(Expr):
    """A literal constant.

    ``value`` may be an ``int``, ``float``, ``bool``, ``str``, ``None`` or a
    (possibly empty) ``tuple``/``list`` of such values.  Lists are stored as
    given; the interpreter never mutates values in place.
    """

    __slots__ = ("value", "_skey", "_hash")

    def __init__(self, value: object) -> None:
        self.value = value
        self._skey = None
        self._hash = None

    def _collect_variables(self, out: set[str]) -> None:  # no variables
        return None

    def size(self) -> int:
        return 1

    def substitute_vars(self, mapping: Mapping[str, Expr]) -> Expr:
        return self

    def map(self, fn: Callable[[Expr], Expr]) -> Expr:
        return fn(self)

    def _key(self) -> tuple[str, object]:
        value = self.value
        if isinstance(value, list):
            value = ("__list__", tuple(value))
        return (type(value).__name__, value)

    def _compute_key(self) -> tuple:
        return ("c",) + self._key()

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, Const) and other._key() == self._key()

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(("Const", self._key()))
            self._hash = value
        return value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        if isinstance(self.value, list):
            return "[" + ", ".join(repr(v) for v in self.value) + "]"
        return repr(self.value)


class Op(Expr):
    """An operation applied to argument expressions."""

    __slots__ = ("name", "args", "_skey", "_hash")

    def __init__(self, name: str, *args: Expr) -> None:
        self.name = name
        self.args = tuple(args)
        self._skey = None
        self._hash = None

    def _collect_variables(self, out: set[str]) -> None:
        for arg in self.args:
            arg._collect_variables(out)

    def size(self) -> int:
        return 1 + sum(arg.size() for arg in self.args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def substitute_vars(self, mapping: Mapping[str, Expr]) -> Expr:
        new_args = tuple(arg.substitute_vars(mapping) for arg in self.args)
        if new_args == self.args:
            return self
        return Op(self.name, *new_args)

    def replace_at(self, path: tuple[int, ...], replacement: Expr) -> Expr:
        if not path:
            return replacement
        index, *rest = path
        if index >= len(self.args):
            raise IndexError(f"path {path!r} does not exist in {self!r}")
        new_args = list(self.args)
        new_args[index] = self.args[index].replace_at(tuple(rest), replacement)
        return Op(self.name, *new_args)

    def node_at(self, path: tuple[int, ...]) -> Expr:
        if not path:
            return self
        index, *rest = path
        if index >= len(self.args):
            raise IndexError(f"path {path!r} does not exist in {self!r}")
        return self.args[index].node_at(tuple(rest))

    def map(self, fn: Callable[[Expr], Expr]) -> Expr:
        new_args = tuple(arg.map(fn) for arg in self.args)
        node = self if new_args == self.args else Op(self.name, *new_args)
        return fn(node)

    def _compute_key(self) -> tuple:
        return ("o", self.name, tuple(arg.structural_key() for arg in self.args))

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, Op)
            and other.name == self.name
            and other.args == self.args
        )

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(("Op", self.name, self.args))
            self._hash = value
        return value

    def __str__(self) -> str:
        return render_expression(self)


# ---------------------------------------------------------------------------
# Interning (hash-consing)
# ---------------------------------------------------------------------------

#: Canonical expression per structural key.  Expressions are tiny immutable
#: trees drawn from a bounded vocabulary (student code for one assignment),
#: so the table stays small in practice; :data:`MAX_INTERN_ENTRIES` bounds
#: it anyway so a long-lived engine crossing many corpora cannot grow it
#: forever.  ``dict.setdefault`` keeps the table safe under concurrent
#: interning from batch workers (one winner per key).
_INTERN_TABLE: dict[tuple, Expr] = {}

#: Flush threshold for the intern table.  Flushing only costs identity
#: sharing on *future* interns (structural equality is unaffected), so a
#: rare bulk clear is preferable to per-entry eviction bookkeeping.
MAX_INTERN_ENTRIES = 1 << 16


def intern_expr(expr: Expr) -> Expr:
    """Return the canonical object for ``expr`` (hash-consing).

    Structurally equal expressions intern to the *same* object, and the
    canonical object's sub-expressions are themselves interned, so identical
    sub-trees share nodes (and their cached hashes, structural keys and tree
    annotations).  Interning an already-canonical expression is a single
    dict lookup on its cached structural key.
    """
    key = expr.structural_key()
    canonical = _INTERN_TABLE.get(key)
    if canonical is not None:
        return canonical
    if isinstance(expr, Op):
        args = tuple(intern_expr(arg) for arg in expr.args)
        if any(new is not old for new, old in zip(args, expr.args)):
            expr = Op(expr.name, *args)
    if len(_INTERN_TABLE) >= MAX_INTERN_ENTRIES:
        _INTERN_TABLE.clear()
    return _INTERN_TABLE.setdefault(key, expr)


def clear_intern_table() -> None:
    """Drop all interned expressions (canonical objects stay valid)."""
    _INTERN_TABLE.clear()


def intern_table_size() -> int:
    """Number of canonical expressions currently interned."""
    return len(_INTERN_TABLE)


# ---------------------------------------------------------------------------
# Pretty printing
# ---------------------------------------------------------------------------

_BINARY_SYMBOLS = {
    "Add": "+",
    "Sub": "-",
    "Mult": "*",
    "Div": "/",
    "FloorDiv": "//",
    "Mod": "%",
    "Pow": "**",
    "Eq": "==",
    "NotEq": "!=",
    "Lt": "<",
    "LtE": "<=",
    "Gt": ">",
    "GtE": ">=",
    "And": "and",
    "Or": "or",
    "In": "in",
    "NotIn": "not in",
}

_UNARY_SYMBOLS = {
    "USub": "-",
    "UAdd": "+",
    "Not": "not ",
}


def render_expression(expr: Expr) -> str:
    """Render an expression as readable, Python-like source text.

    The output is used in feedback messages shown to students, so it aims to
    look like the code they wrote rather than like an internal dump.
    """
    if isinstance(expr, (Var, Const)):
        return str(expr)
    if not isinstance(expr, Op):  # pragma: no cover - defensive
        return repr(expr)
    name = expr.name
    args = expr.args
    if name in _BINARY_SYMBOLS and len(args) == 2:
        left = _render_child(args[0])
        right = _render_child(args[1])
        return f"{left} {_BINARY_SYMBOLS[name]} {right}"
    if name in _UNARY_SYMBOLS and len(args) == 1:
        return f"{_UNARY_SYMBOLS[name]}{_render_child(args[0])}"
    if name == "ite" and len(args) == 3:
        return (
            f"({render_expression(args[1])} if {render_expression(args[0])}"
            f" else {render_expression(args[2])})"
        )
    if name == "GetElement" and len(args) == 2:
        return f"{_render_child(args[0])}[{render_expression(args[1])}]"
    if name == "ListInit":
        return "[" + ", ".join(render_expression(a) for a in args) + "]"
    if name == "TupleInit":
        rendered = ", ".join(render_expression(a) for a in args)
        if len(args) == 1:
            rendered += ","
        return "(" + rendered + ")"
    if name == "Slice" and len(args) == 3:
        return (
            f"{_render_child(args[0])}[{render_expression(args[1])}:"
            f"{render_expression(args[2])}]"
        )
    rendered_args = ", ".join(render_expression(a) for a in args)
    return f"{name}({rendered_args})"


def _render_child(expr: Expr) -> str:
    text = render_expression(expr)
    if isinstance(expr, Op) and (
        expr.name in _BINARY_SYMBOLS or expr.name in ("ite",)
    ):
        return f"({text})"
    return text


# ---------------------------------------------------------------------------
# Convenience constructors used across the code base
# ---------------------------------------------------------------------------

TRUE = Const(True)
FALSE = Const(False)


def conjunction(terms: Sequence[Expr]) -> Expr:
    """Build ``And`` of ``terms``, folding trivial cases."""
    significant = [t for t in terms if t != TRUE]
    if not significant:
        return TRUE
    result = significant[0]
    for term in significant[1:]:
        result = Op("And", result, term)
    return result


def negation(term: Expr) -> Expr:
    """Build ``Not(term)`` folding double negation and constants."""
    if isinstance(term, Const) and isinstance(term.value, bool):
        return Const(not term.value)
    if isinstance(term, Op) and term.name == "Not" and len(term.args) == 1:
        return term.args[0]
    return Op("Not", term)
