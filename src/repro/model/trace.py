"""Execution traces (paper Def. 3.5).

A trace is a sequence of :class:`TraceStep` objects, one per visited
location.  Each step records the *pre*-state (the paper's unprimed variables
``v``) and the *post*-state (primed variables ``v'``).  Matching compares the
post-state projections of variables; expression matching re-evaluates
candidate expressions on the pre-states.

Storage is copy-on-write: the executor used to copy the full memory dict
twice per step (every variable, even though a location writes only a few),
which dominated execution cost on loop-heavy programs.  A trace now keeps
one :class:`TraceMemory` — a per-variable changelog shared by all of its
steps — and each step records only the variables its location wrote.
``pre``/``post`` are :class:`StepMemory` views that answer lookups lazily
from the changelog (binary search over a variable's few changes), and
compare equal to the plain dicts they replace, so the public API
(:meth:`Trace.final_memory`, :meth:`Trace.steps_at`, :func:`project`,
mapping access on ``step.pre``/``step.post``) is unchanged.  Plain dicts
remain accepted wherever a mapping is, e.g. when tests build steps by hand
or the interpreted reference executor snapshots full memories.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Mapping
from typing import Iterable, Iterator

__all__ = ["TraceMemory", "StepMemory", "TraceStep", "Trace", "project"]

#: Internal marker distinguishing "never defined at this step" from ``None``.
_MISSING = object()


class TraceMemory:
    """Per-variable changelog backing the steps of one trace.

    For each variable the memory stores the step indices at which it was
    written and the values written, as parallel lists; initial values are
    recorded at index ``-1``.  The value of a variable *after* step ``i``
    is its last change with index ``<= i`` — found by binary search over a
    list that is typically tiny (most variables change a handful of times).

    Instances are append-only during execution and immutable afterwards;
    views over them are safe to share between threads.
    """

    __slots__ = ("_histories",)

    def __init__(self, initial: Mapping[str, object]) -> None:
        self._histories: dict[str, tuple[list[int], list[object]]] = {
            name: ([-1], [value]) for name, value in initial.items()
        }

    def write(self, index: int, var: str, value: object) -> None:
        """Record that step ``index`` wrote ``value`` to ``var``.

        Steps execute in order, so indices per variable are appended
        strictly increasing — which is what keeps lookups a plain bisect.
        """
        history = self._histories.get(var)
        if history is None:
            self._histories[var] = ([index], [value])
        else:
            history[0].append(index)
            history[1].append(value)

    def lookup(self, var: str, index: int) -> object:
        """Value of ``var`` after step ``index`` (``_MISSING`` if undefined)."""
        history = self._histories.get(var)
        if history is None:
            return _MISSING
        steps, values = history
        at = bisect_right(steps, index) - 1
        if at < 0:
            return _MISSING
        return values[at]

    def names_at(self, index: int) -> list[str]:
        """Variables defined after step ``index`` (insertion order)."""
        return [
            name
            for name, (steps, _values) in self._histories.items()
            if steps[0] <= index
        ]


class StepMemory(Mapping):
    """Lazy mapping view of a :class:`TraceMemory` at one step index.

    Behaves exactly like the full-memory dict snapshot the executor used to
    store: same keys, same values, equal (``==``) to that dict.  Lookups
    cost one dict probe plus a bisect over the variable's changelog.
    """

    __slots__ = ("_memory", "_index")

    def __init__(self, memory: TraceMemory, index: int) -> None:
        self._memory = memory
        self._index = index

    def __getitem__(self, key: str) -> object:
        value = self._memory.lookup(key, self._index)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def get(self, key: str, default: object = None) -> object:
        value = self._memory.lookup(key, self._index)
        return default if value is _MISSING else value

    def __contains__(self, key: object) -> bool:
        return self._memory.lookup(key, self._index) is not _MISSING

    def __iter__(self) -> Iterator[str]:
        return iter(self._memory.names_at(self._index))

    def __len__(self) -> int:
        return len(self._memory.names_at(self._index))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    # Mapping views are unhashable, like dicts.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StepMemory({dict(self)!r})"


class TraceStep:
    """One trace element ``(ℓ, σ)``.

    Attributes:
        loc_id: The visited location.
        pre: Variable values before the location executes (``σ(v)``).
        post: Variable values after the location executes (``σ(v')``).
        written_vars: Names the location actually wrote at this step, in
            update order (``None`` when unknown, e.g. for steps built from
            plain dict snapshots).  ``post`` differs from ``pre`` on at
            most these variables.
    """

    __slots__ = ("loc_id", "pre", "post", "written_vars")

    def __init__(
        self,
        loc_id: int,
        pre: Mapping[str, object],
        post: Mapping[str, object],
        written_vars: "tuple[str, ...] | None" = None,
    ) -> None:
        self.loc_id = loc_id
        self.pre = pre
        self.post = post
        self.written_vars = written_vars

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceStep):
            return NotImplemented
        # written_vars is storage metadata, not observable semantics: a
        # COW step and a dict-snapshot step of the same execution are equal.
        return (
            self.loc_id == other.loc_id
            and self.pre == other.pre
            and self.post == other.post
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TraceStep(loc_id={self.loc_id}, pre={dict(self.pre)!r}, post={dict(self.post)!r})"


class Trace:
    """A finite program trace together with its final memory."""

    def __init__(self, steps: Iterable[TraceStep], *, aborted: bool = False) -> None:
        self.steps: list[TraceStep] = list(steps)
        #: ``True`` when execution hit a resource limit (the step budget of
        #: a non-terminating attempt, or the optional evaluation-ops
        #: budget) or encountered a state from which no successor could be
        #: chosen.
        self.aborted = aborted
        #: Lazily built per-location index behind :meth:`steps_at`.
        self._loc_index: dict[int, list[TraceStep]] | None = None

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> TraceStep:
        return self.steps[index]

    @property
    def location_sequence(self) -> tuple[int, ...]:
        """The control-flow path taken, as a tuple of location ids."""
        return tuple(step.loc_id for step in self.steps)

    def final_memory(self) -> Mapping[str, object]:
        """Return the post-state of the final step (empty if no steps)."""
        if not self.steps:
            return {}
        return self.steps[-1].post

    def final_value(self, var: str, default: object = None) -> object:
        """Return the final value of ``var`` (``default`` if never defined)."""
        return self.final_memory().get(var, default)

    def steps_at(self, loc_id: int) -> list[TraceStep]:
        """Return all steps taken at a given location.

        The per-location index is built once, on first use, instead of
        scanning the whole step list per call — local repair asks for the
        visits of the same few locations over and over.  The returned list
        is shared with the index; callers must treat it as immutable
        (traces are immutable after construction).
        """
        index = self._loc_index
        if index is None:
            index = {}
            for step in self.steps:
                index.setdefault(step.loc_id, []).append(step)
            self._loc_index = index
        return index.get(loc_id, [])


def project(trace: Trace, var: str) -> tuple[object, ...]:
    """Project the post-state values of ``var`` from a trace (``γ|v``)."""
    return tuple(step.post.get(var) for step in trace.steps)
