"""Execution traces (paper Def. 3.5).

A trace is a sequence of :class:`TraceStep` objects, one per visited
location.  Each step records the *pre*-state (the paper's unprimed variables
``v``) and the *post*-state (primed variables ``v'``).  Matching compares the
post-state projections of variables; expression matching re-evaluates
candidate expressions on the pre-states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

__all__ = ["TraceStep", "Trace", "project"]


@dataclass(frozen=True)
class TraceStep:
    """One trace element ``(ℓ, σ)``.

    Attributes:
        loc_id: The visited location.
        pre: Variable values before the location executes (``σ(v)``).
        post: Variable values after the location executes (``σ(v')``).
    """

    loc_id: int
    pre: Mapping[str, object]
    post: Mapping[str, object]


class Trace:
    """A finite program trace together with its final memory."""

    def __init__(self, steps: Iterable[TraceStep], *, aborted: bool = False) -> None:
        self.steps: list[TraceStep] = list(steps)
        #: ``True`` when execution hit the step limit (e.g. infinite loop) or
        #: encountered a state from which no successor could be chosen.
        self.aborted = aborted

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> TraceStep:
        return self.steps[index]

    @property
    def location_sequence(self) -> tuple[int, ...]:
        """The control-flow path taken, as a tuple of location ids."""
        return tuple(step.loc_id for step in self.steps)

    def final_memory(self) -> Mapping[str, object]:
        """Return the post-state of the final step (empty if no steps)."""
        if not self.steps:
            return {}
        return self.steps[-1].post

    def final_value(self, var: str, default: object = None) -> object:
        """Return the final value of ``var`` (``default`` if never defined)."""
        return self.final_memory().get(var, default)

    def steps_at(self, loc_id: int) -> list[TraceStep]:
        """Return all steps taken at a given location."""
        return [step for step in self.steps if step.loc_id == loc_id]


def project(trace: Trace, var: str) -> tuple[object, ...]:
    """Project the post-state values of ``var`` from a trace (``γ|v``)."""
    return tuple(step.post.get(var) for step in trace.steps)
