"""Expression canonicalisation.

The front-ends generate guard-heavy expressions (every early return, break or
continue turns into an ``ite`` over a synthetic flag).  This module folds the
statically decidable parts away so that common student programs yield the
clean expressions the paper shows, e.g.::

    ite(Not(ite(c, True, False)), new, ite(c, [0.0], $ret))
        ==>  ite(c, [0.0], new)

Simplification is purely syntactic and semantics-preserving; matching never
depends on it (matching is dynamic), but smaller expressions give smaller and
more natural repair costs and nicer feedback text.
"""

from __future__ import annotations

from .expr import Const, Expr, Op

__all__ = ["simplify"]


def simplify(expr: Expr) -> Expr:
    """Return a semantically equivalent, usually smaller expression."""
    return expr.map(_simplify_node)


def _is_const_bool(expr: Expr, value: bool) -> bool:
    return isinstance(expr, Const) and expr.value is value


#: Operations guaranteed to evaluate to a bool (or ⊥).
_BOOLEAN_OPS = frozenset(
    {"Eq", "NotEq", "Lt", "LtE", "Gt", "GtE", "Not", "In", "NotIn", "bool"}
)


def _is_boolean(expr: Expr) -> bool:
    """Conservatively decide whether ``expr`` always evaluates to a bool.

    Python's ``and``/``or`` return one of their operands, so folds like
    ``And(x, True) -> x`` are only value-preserving when ``x`` itself is
    boolean; this predicate guards those rules.
    """
    if isinstance(expr, Const):
        return isinstance(expr.value, bool)
    if isinstance(expr, Op):
        if expr.name in _BOOLEAN_OPS:
            return True
        if expr.name in ("And", "Or") and len(expr.args) == 2:
            return all(_is_boolean(arg) for arg in expr.args)
        if expr.name == "ite" and len(expr.args) == 3:
            return _is_boolean(expr.args[1]) and _is_boolean(expr.args[2])
    return False


def _simplify_node(expr: Expr) -> Expr:
    if not isinstance(expr, Op):
        return expr
    name = expr.name
    args = expr.args

    if name == "Not" and len(args) == 1:
        (arg,) = args
        if _is_const_bool(arg, True):
            return Const(False)
        if _is_const_bool(arg, False):
            return Const(True)
        if (
            isinstance(arg, Op)
            and arg.name == "Not"
            and len(arg.args) == 1
            and _is_boolean(arg.args[0])
        ):
            return arg.args[0]
        # Not(ite(c, True, False)) -> Not(c); Not(ite(c, False, True)) -> c
        if isinstance(arg, Op) and arg.name == "ite" and len(arg.args) == 3:
            cond, then, other = arg.args
            if _is_const_bool(then, True) and _is_const_bool(other, False):
                return _simplify_node(Op("Not", cond))
            if _is_const_bool(then, False) and _is_const_bool(other, True) and _is_boolean(cond):
                return cond
        return expr

    if name == "And" and len(args) == 2:
        left, right = args
        if _is_const_bool(left, True):
            return right
        if _is_const_bool(right, True) and _is_boolean(left):
            return left
        if _is_const_bool(left, False):
            return Const(False)
        if _is_const_bool(right, False) and _is_boolean(left):
            return Const(False)
        return expr

    if name == "Or" and len(args) == 2:
        left, right = args
        if _is_const_bool(left, False):
            return right
        if _is_const_bool(right, False) and _is_boolean(left):
            return left
        if _is_const_bool(left, True):
            return Const(True)
        if _is_const_bool(right, True) and _is_boolean(left):
            return Const(True)
        return expr

    if name == "ite" and len(args) == 3:
        cond, then, other = args
        if _is_const_bool(cond, True):
            return then
        if _is_const_bool(cond, False):
            return other
        # ite(c, x, x) -> x
        if then == other:
            return then
        # ite(c, True, False) used as a boolean -> c (keep; callers like Not
        # handle it).  But fold nested ites guarded by the same condition:
        # ite(c, ite(c, a, b), d) -> ite(c, a, d)
        if isinstance(then, Op) and then.name == "ite" and len(then.args) == 3:
            if then.args[0] == cond:
                return _simplify_node(Op("ite", cond, then.args[1], other))
        # ite(c, a, ite(c, b, d)) -> ite(c, a, d)
        if isinstance(other, Op) and other.name == "ite" and len(other.args) == 3:
            if other.args[0] == cond:
                return _simplify_node(Op("ite", cond, then, other.args[2]))
        # ite(Not(c), a, b) -> ite(c, b, a) (canonical polarity)
        if isinstance(cond, Op) and cond.name == "Not" and len(cond.args) == 1:
            return _simplify_node(Op("ite", cond.args[0], other, then))
        return expr

    return expr
