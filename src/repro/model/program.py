"""The Clara program model (paper §3, Def. 3.2).

A :class:`Program` is a finite set of :class:`Location` objects, an initial
location, a set of variables, a variable update function ``U : (L × V) → E``
and a successor function ``S : (L × {True, False}) → L ∪ {end}``.

Every location performs a *parallel* assignment: all update expressions are
evaluated on the pre-state, then all variables step to their new values at
once.  Front-ends are responsible for composing sequential statements into
this form (see :mod:`repro.frontend`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional

from .expr import (
    Expr,
    Var,
    VAR_COND,
    VAR_OUT,
    VAR_RET,
    is_special_var,
)

__all__ = ["Location", "Program", "END"]

#: Sentinel successor meaning "the program terminates" (the paper's ``end``).
END: Optional[int] = None


@dataclass
class Location:
    """A single control-flow location.

    Attributes:
        loc_id: Numeric identifier, unique within the program.
        name: Human-readable label (``"before-loop"``, ``"loop-body"``, ...),
            used by feedback messages.
        line: Source line number of the first statement contributing to the
            location, if known.
        updates: Mapping of variable name to its update expression.  Variables
            absent from the mapping implicitly keep their value (``U(ℓ, v) =
            v``).
    """

    loc_id: int
    name: str = ""
    line: Optional[int] = None
    updates: dict[str, Expr] = field(default_factory=dict)

    def update_for(self, var: str) -> Expr:
        """Return ``U(ℓ, var)``, defaulting to the identity update."""
        return self.updates.get(var, Var(var))

    def assigned_vars(self) -> list[str]:
        """Return the variables explicitly assigned at this location."""
        return list(self.updates)

    def copy(self) -> "Location":
        return Location(self.loc_id, self.name, self.line, dict(self.updates))


class Program:
    """A program in the Clara model.

    Args:
        name: Function name (or ``"main"`` for C programs).
        params: Ordered parameter names; inputs bind these variables.
        source: Original source text, kept for feedback and size metrics.
        language: ``"python"`` or ``"c"`` (informational only).
    """

    def __init__(
        self,
        name: str,
        params: Iterable[str] = (),
        source: str | None = None,
        language: str = "python",
    ) -> None:
        self.name = name
        self.params: list[str] = list(params)
        self.source = source
        self.language = language
        self.locations: dict[int, Location] = {}
        self.init_loc: Optional[int] = None
        # Successor function: (loc_id, bool) -> loc_id or END.
        self._succ: dict[tuple[int, bool], Optional[int]] = {}
        self._next_id = 0

    # -- construction --------------------------------------------------------

    def add_location(self, name: str = "", line: Optional[int] = None) -> Location:
        """Create and register a fresh location."""
        loc = Location(self._next_id, name=name, line=line)
        self.locations[loc.loc_id] = loc
        self._next_id += 1
        if self.init_loc is None:
            self.init_loc = loc.loc_id
        return loc

    def set_successor(
        self, loc_id: int, on_true: Optional[int], on_false: Optional[int]
    ) -> None:
        """Define ``S(ℓ, True)`` and ``S(ℓ, False)``."""
        self._succ[(loc_id, True)] = on_true
        self._succ[(loc_id, False)] = on_false

    def set_update(self, loc_id: int, var: str, expr: Expr) -> None:
        """Define ``U(ℓ, var) = expr``."""
        self.locations[loc_id].updates[var] = expr

    # -- accessors ------------------------------------------------------------

    def successor(self, loc_id: int, branch: bool) -> Optional[int]:
        """Return ``S(ℓ, branch)``; ``None`` encodes the ``end`` location."""
        return self._succ.get((loc_id, bool(branch)), END)

    def update_for(self, loc_id: int, var: str) -> Expr:
        """Return ``U(ℓ, var)``."""
        return self.locations[loc_id].update_for(var)

    def location_ids(self) -> list[int]:
        """Return location identifiers in creation order."""
        return sorted(self.locations)

    @property
    def variables(self) -> list[str]:
        """All variables mentioned in the program (assigned or read)."""
        seen: dict[str, None] = {}
        for param in self.params:
            seen.setdefault(param, None)
        for loc_id in self.location_ids():
            loc = self.locations[loc_id]
            for var, expr in loc.updates.items():
                seen.setdefault(var, None)
                for name in expr.variables():
                    seen.setdefault(name, None)
        return list(seen)

    @property
    def user_variables(self) -> list[str]:
        """Variables that are not model-internal (``$``-prefixed)."""
        return [v for v in self.variables if not is_special_var(v)]

    def is_branching(self, loc_id: int) -> bool:
        """Return ``True`` if the two successors of ``loc_id`` differ."""
        return self.successor(loc_id, True) != self.successor(loc_id, False)

    def ast_size(self) -> int:
        """Total number of expression AST nodes (used for relative repair size)."""
        total = 0
        for loc_id in self.location_ids():
            for var, expr in self.locations[loc_id].updates.items():
                if expr == Var(var):
                    continue
                total += expr.size()
        return total

    def iter_updates(self) -> Iterator[tuple[int, str, Expr]]:
        """Yield ``(loc_id, var, expr)`` for every explicit update."""
        for loc_id in self.location_ids():
            for var, expr in self.locations[loc_id].updates.items():
                yield loc_id, var, expr

    def structure_key(self) -> tuple:
        """Return a hashable fingerprint of the program model.

        Two programs with equal keys have identical parameters, locations,
        update functions and successor functions, and therefore identical
        semantics under the trace semantics of Def. 3.5 — their traces on any
        input agree step for step.  The engine layer
        (:mod:`repro.engine.cache`) keys its trace, correctness and
        structural-match caches on this fingerprint so that syntactically
        identical attempts (ubiquitous in MOOC dumps, where students resubmit
        unchanged or copied code) are executed and matched only once.

        The key reflects the program's *current* state and is recomputed on
        every call; callers that mutate programs (the repair decoder does)
        must not reuse a previously obtained key.
        """
        locations = tuple(
            (
                loc_id,
                tuple(sorted(self.locations[loc_id].updates.items())),
            )
            for loc_id in self.location_ids()
        )
        successors = tuple(sorted(self._succ.items()))
        return (tuple(self.params), self.init_loc, locations, successors)

    def cfg_skeleton(self) -> tuple[tuple[int, ...], tuple]:
        """Canonicalize the control-flow graph (Def. 4.1 as an equality test).

        Returns ``(order, skeleton)`` where ``order`` lists the reachable
        location ids in canonical visit order (initial location first, then
        breadth-first, true-successor before false-successor) and
        ``skeleton`` encodes the successor structure over canonical indices.

        The structural matching of Def. 4.1 is a bijection forced step by
        step from the initial locations, so two fully reachable programs
        admit a structural match **iff** their skeletons are equal — and the
        witness is exactly ``order_a[i] -> order_b[i]``.  The clustering
        layer uses this to index clusters by control-flow shape instead of
        attempting a lockstep walk against every representative
        (:mod:`repro.clusterstore.fingerprint`).

        The skeleton also records the total location count: a program with
        unreachable locations can never match anything (the Def. 4.1
        bijection must cover all locations), and the count keeps such
        programs from sharing a skeleton with their reachable core.
        """
        if self.init_loc is None:
            return (), ("empty", len(self.locations))
        order: list[int] = [self.init_loc]
        canon: dict[int, int] = {self.init_loc: 0}
        successors: list[tuple[object, object]] = []
        cursor = 0
        while cursor < len(order):
            loc_id = order[cursor]
            cursor += 1
            encoded: list[object] = []
            for branch in (True, False):
                succ = self.successor(loc_id, branch)
                if succ is None:
                    encoded.append(None)
                    continue
                if succ not in canon:
                    canon[succ] = len(order)
                    order.append(succ)
                encoded.append(canon[succ])
            successors.append((encoded[0], encoded[1]))
        return tuple(order), (tuple(successors), len(self.locations))

    # -- transformations -------------------------------------------------------

    def copy(self) -> "Program":
        """Deep-copy the program (expressions are immutable and shared)."""
        clone = Program(self.name, self.params, self.source, self.language)
        clone.init_loc = self.init_loc
        clone._next_id = self._next_id
        clone.locations = {lid: loc.copy() for lid, loc in self.locations.items()}
        clone._succ = dict(self._succ)
        return clone

    def rename_variables(self, mapping: Mapping[str, str]) -> "Program":
        """Return a copy with variables renamed everywhere (params included)."""
        clone = self.copy()
        clone.params = [mapping.get(p, p) for p in self.params]
        for loc in clone.locations.values():
            loc.updates = {
                mapping.get(var, var): expr.rename_vars(dict(mapping))
                for var, expr in loc.updates.items()
            }
        return clone

    def prune_unread_flags(self) -> None:
        """Drop synthetic flag variables that are assigned but never read.

        Front-ends introduce variables such as ``$retflag`` or per-loop break
        flags.  When the simplifier folds away every read of such a flag the
        assignments become dead weight that would only add noise to variable
        matching, so we remove them.  Observable variables (``$ret``,
        ``$out``, ``$cond``, ``$stdin``) and user variables are never pruned.
        """
        protected = {VAR_RET, VAR_OUT, VAR_COND}
        while True:
            read: set[str] = set()
            for _, _, expr in self.iter_updates():
                read |= expr.variables()
            removed = False
            for loc in self.locations.values():
                for var in list(loc.updates):
                    if (
                        is_special_var(var)
                        and var not in protected
                        and not var.startswith("$iter")
                        and var != "$stdin"
                        and var not in read
                    ):
                        del loc.updates[var]
                        removed = True
            if not removed:
                return

    # -- debugging -------------------------------------------------------------

    def describe(self) -> str:
        """Return a readable multi-line dump of the program model."""
        lines = [f"program {self.name}({', '.join(self.params)})"]
        for loc_id in self.location_ids():
            loc = self.locations[loc_id]
            succ_t = self.successor(loc_id, True)
            succ_f = self.successor(loc_id, False)
            lines.append(
                f"  loc {loc_id} [{loc.name}]"
                f" -> true:{succ_t if succ_t is not None else 'end'}"
                f" false:{succ_f if succ_f is not None else 'end'}"
            )
            for var, expr in loc.updates.items():
                lines.append(f"    {var} := {expr}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Program {self.name} locs={len(self.locations)}>"
