"""Program model: expressions, programs, traces and the simplifier."""

from .expr import (
    Const,
    Expr,
    Op,
    SPECIAL_VARS,
    VAR_COND,
    VAR_OUT,
    VAR_RET,
    VAR_RETFLAG,
    VAR_STDIN,
    Var,
    clear_intern_table,
    conjunction,
    intern_expr,
    intern_table_size,
    is_iterator_var,
    is_special_var,
    negation,
    render_expression,
)
from .program import END, Location, Program
from .simplify import simplify
from .trace import Trace, TraceStep, project

__all__ = [
    "Const",
    "Expr",
    "Op",
    "Var",
    "SPECIAL_VARS",
    "VAR_COND",
    "VAR_OUT",
    "VAR_RET",
    "VAR_RETFLAG",
    "VAR_STDIN",
    "conjunction",
    "negation",
    "intern_expr",
    "clear_intern_table",
    "intern_table_size",
    "is_special_var",
    "is_iterator_var",
    "render_expression",
    "simplify",
    "END",
    "Location",
    "Program",
    "Trace",
    "TraceStep",
    "project",
]
