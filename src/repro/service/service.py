"""The resident repair service: warm per-problem engines behind asyncio.

A :class:`RepairService` is the transport-independent core of the daemon:
it owns one :class:`ProblemRuntime` per hosted problem — a configured
:class:`~repro.core.pipeline.Clara`, its
:class:`~repro.engine.cache.RepairCaches` and a
:class:`~repro.engine.batch.BatchRepairEngine` — and turns protocol
:class:`~repro.service.protocol.Request` objects into response dicts.  The
TCP front end (:mod:`repro.service.server`) is a thin line-pump over
:meth:`RepairService.handle_line`; tests drive the service directly.

Concurrency model.  Repairs are CPU-bound synchronous work, so the asyncio
handler dispatches them to a bounded :class:`~concurrent.futures.\
ThreadPoolExecutor` and awaits the result.  Admission control is a counter:
at most ``queue_size`` repairs may be in flight (queued or running); the
next one is rejected immediately with an ``overloaded`` error rather than
building an unbounded backlog.  Per-request deadlines are enforced twice —
as the engine's per-attempt ``budget`` (bounding the cluster search) and as
an ``asyncio.wait_for`` timeout on the executor future (bounding parse and
solver overruns); whichever trips first yields a ``timeout`` status.  A
deadline that fires cannot interrupt the worker thread mid-repair — the
thread finishes and its slot frees then — so ``queue_size`` should exceed
``workers`` by the burst you want to absorb, not by orders of magnitude.

Hot reload.  :meth:`RepairService.reload` re-reads a problem's store
header from disk and atomically swaps in a fresh pipeline *sharing the old
RepairCaches* — trace, TED and match memos stay warm (they are keyed on
program structure, not on the clustering), while repair memos
self-invalidate via the new pipeline's identity token.  Requests admitted
before the swap keep the engine object they snapshotted, so in-flight work
is never dropped and every response reports the store revision it was
actually computed against.

Segment paging.  Stores are the indexed v3 format (``docs/STORAGE.md``):
``add_problem`` and ``reload`` read only the header, and each repair pages
in just the segments whose CFG-skeleton digest matches the attempt — cold
start and reload cost are proportional to the header, not the store.  The
per-problem loaded/skipped counters appear under ``store_paging`` in the
``stats`` op.  If an updater rewrites a segment *after* the serving header
was read, a repair that pages it in gets a deterministic "store changed on
disk" error (the header index records each segment's byte length); the
service then transparently re-runs the repair on the current generation —
so a request admitted just before a ``reload`` completes on the reloaded
engine instead of failing — and only when no newer generation exists does
the client see a structured ``stale-store`` error telling the operator to
``reload``.  Already-paged segments are cached and never re-read.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..clusterstore.store import ClusterStoreError, case_signature, open_lazy
from ..core.inputs import InputCase
from ..core.pipeline import Clara
from ..engine.batch import BatchAttempt, BatchRecord, BatchRepairEngine
from .protocol import PROTOCOL_VERSION, ProtocolError, Request, error_payload
from .protocol import parse_request_line

__all__ = ["ProblemRuntime", "RepairService", "ServiceStats"]

#: Default bound on concurrently admitted repair requests.
DEFAULT_QUEUE_SIZE = 64
#: Default repair worker threads.
DEFAULT_WORKERS = 4


@dataclass(frozen=True)
class _ProblemState:
    """One immutable (revision, engine) pair; swapped whole on reload."""

    revision: int
    engine: BatchRepairEngine


class ProblemRuntime:
    """Warm serving state for one problem.

    Holds the shared caches and the current :class:`_ProblemState`.  The
    state is replaced atomically by :meth:`reload`; request handlers call
    :meth:`snapshot` once at admission and use that state for the whole
    request, which is what keeps in-flight work on the old revision.

    Thread safety: :meth:`snapshot` and :meth:`reload` may be called from
    any thread (reloads are serialised by a lock; the snapshot read is a
    single attribute load, atomic under the GIL).
    """

    def __init__(
        self,
        name: str,
        store_path: Path,
        cases: Sequence[InputCase],
        language: str,
        entry: str | None,
        state: _ProblemState,
        clara: Clara,
    ) -> None:
        self.name = name
        self.store_path = store_path
        self.cases = cases
        self.language = language
        self.entry = entry
        self.caches = clara.caches
        self._state = state
        self._reload_lock = threading.Lock()

    def snapshot(self) -> _ProblemState:
        """The current (revision, engine) pair; stable for one request."""
        return self._state

    @property
    def revision(self) -> int:
        return self._state.revision

    def reload(self) -> tuple[int, int]:
        """Re-read the store from disk and swap in a fresh engine.

        The new pipeline shares this runtime's ``RepairCaches`` (structure-
        keyed memos stay warm; repair memos are invalidated by the pipeline
        identity token).  Returns ``(old_revision, new_revision)``.

        Raises:
            ClusterStoreError: The file on disk is missing, stale or built
                for different cases; the old state keeps serving.
        """
        with self._reload_lock:
            old = self._state
            # One header read: the revision reported by responses is taken
            # from the same header whose segment index the new pipeline
            # pages through, so a save racing this reload can never produce
            # a mismatched pair — a segment rewritten after this read fails
            # the index byte-length check instead of being served.
            source = open_lazy(self.store_path, cases=self.cases)
            clara = Clara(
                cases=self.cases,
                language=self.language,
                entry=self.entry,
                caches=self.caches,
            )
            clara.attach_lazy_clusters(source)
            self._state = _ProblemState(
                revision=source.revision,
                engine=BatchRepairEngine(clara, workers=1),
            )
            # The replaced pipeline's repair memos are unreachable from now
            # on (new identity token); evict them so a daemon reloading per
            # accepted submission does not leak one generation per reload.
            # In-flight requests on the old engine just recompute on a miss.
            old.engine.clara.forget_repair_memos()
            return old.revision, self._state.revision


class ServiceStats:
    """Thread-safe service counters (all monotonic except ``in_flight``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.repairs = 0
        self.errors = 0
        self.rejected_overload = 0
        self.deadline_timeouts = 0
        self.reloads = 0
        self.in_flight = 0

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "requests": self.requests,
                "repairs": self.repairs,
                "errors": self.errors,
                "rejected_overload": self.rejected_overload,
                "deadline_timeouts": self.deadline_timeouts,
                "reloads": self.reloads,
                "in_flight": self.in_flight,
            }

    def bump(self, field: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + delta)


class RepairService:
    """Async front door: many clients, one warm engine per problem.

    Args:
        queue_size: Maximum repairs in flight (queued + running); the next
            request is rejected with an ``overloaded`` error.
        workers: Repair worker threads shared by all problems.
        default_deadline: Per-request wall-clock bound in seconds applied
            when a request carries no ``deadline`` field; ``None`` means
            unbounded.

    Thread safety: :meth:`handle`/:meth:`handle_line` are coroutines meant
    to run on one event loop; the underlying state (admission counter,
    stats, runtimes) is lock-guarded, so :meth:`reload` and
    :meth:`stats_snapshot` may additionally be called from other threads
    (the tests do).
    """

    def __init__(
        self,
        *,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        workers: int = DEFAULT_WORKERS,
        default_deadline: float | None = None,
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue_size = queue_size
        self.default_deadline = default_deadline
        self.stats = ServiceStats()
        self._problems: dict[str, ProblemRuntime] = {}
        self._admission_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repair"
        )

    # -- problem management ------------------------------------------------------

    def add_problem(
        self,
        store_path: str | Path,
        *,
        problem: str | None = None,
        cases: Sequence[InputCase] | None = None,
        language: str | None = None,
        entry: str | None = None,
    ) -> ProblemRuntime:
        """Load a cluster store and start serving its problem.

        The store names its problem; cases default to the registered
        :class:`repro.datasets.ProblemSpec` of that name, so the usual call
        is just ``service.add_problem("derivatives.json")``.  Explicit
        ``cases``/``language``/``entry`` override the registry (for
        problems that are not part of the paper's nine).  Only the store
        header is read here — segments page in lazily as repairs need them,
        so adding a large problem is O(header), not O(store).

        Raises:
            ClusterStoreError: Missing/unreadable store, stale format
                version, or case-signature mismatch.
            KeyError: The store names a problem the dataset registry does
                not know and no explicit ``cases`` were given.
            ValueError: The store has no problem name and none was passed.
        """
        store_path = Path(store_path)
        # One header read serves both the problem-name lookup and the
        # segment index the pipeline will page through, so the reported
        # revision always matches the served clustering.  The case
        # signature is checked manually below because the cases are only
        # known once the store has named its problem.
        stored = open_lazy(store_path)
        name = problem or stored.problem
        if name is None:
            raise ValueError(
                f"cluster store {store_path} records no problem name; pass problem="
            )
        if name in self._problems:
            raise ValueError(
                f"problem {name!r} is already served (from "
                f"{self._problems[name].store_path}); refusing to silently "
                f"replace it with {store_path}"
            )
        if cases is None:
            from ..datasets import get_problem

            spec = get_problem(name)
            cases = spec.cases
            language = spec.language if language is None else language
            entry = spec.entry if entry is None else entry
        language = language or "python"
        if stored.case_signature != case_signature(cases):
            raise ClusterStoreError(
                f"cluster store {store_path} was built against a different "
                f"test-case set than problem {name!r} uses; rebuild it with "
                f"'repro-clara cluster build'"
            )
        clara = Clara(cases=cases, language=language, entry=entry)
        clara.attach_lazy_clusters(stored)
        runtime = ProblemRuntime(
            name=name,
            store_path=store_path,
            cases=cases,
            language=language,
            entry=entry,
            state=_ProblemState(
                revision=stored.revision, engine=BatchRepairEngine(clara, workers=1)
            ),
            clara=clara,
        )
        self._problems[name] = runtime
        return runtime

    def problems(self) -> list[ProblemRuntime]:
        return list(self._problems.values())

    def reload(self, problem: str | None = None) -> tuple[int, int]:
        """Hot-reload one problem's store (see :meth:`ProblemRuntime.reload`)."""
        runtime = self._resolve(problem)
        result = runtime.reload()
        self.stats.bump("reloads")
        return result

    def _resolve(self, problem: str | None) -> ProblemRuntime:
        if problem is None:
            if len(self._problems) == 1:
                return next(iter(self._problems.values()))
            raise ProtocolError(
                "bad-request",
                "request names no problem and the service hosts "
                f"{len(self._problems)} — pass 'problem'",
            )
        runtime = self._problems.get(problem)
        if runtime is None:
            raise ProtocolError(
                "unknown-problem",
                f"problem {problem!r} is not served here "
                f"(hosting: {', '.join(sorted(self._problems)) or 'none'})",
            )
        return runtime

    # -- request handling --------------------------------------------------------

    async def handle_line(self, line: str) -> dict:
        """Parse one wire line and dispatch it; never raises for bad input."""
        try:
            request = parse_request_line(line)
        except ProtocolError as exc:
            self.stats.bump("errors")
            return error_payload(exc.code, exc.message, exc.request_id)
        return await self.handle(request)

    async def handle(self, request: Request) -> dict:
        """Dispatch one parsed request to its op handler."""
        self.stats.bump("requests")
        try:
            if request.op == "repair":
                return await self._handle_repair(request)
            if request.op == "ping":
                return self._base_response(request, protocol=PROTOCOL_VERSION)
            if request.op == "stats":
                return self._base_response(
                    request, protocol=PROTOCOL_VERSION, **self.stats_snapshot()
                )
            if request.op == "reload":
                # Store decode + representative re-execution is CPU work;
                # run it off the event loop (on the default executor, not
                # the repair pool, so a backlog of repairs cannot starve an
                # operator's reload) to keep pings and response writes live.
                runtime = self._resolve(request.problem)
                loop = asyncio.get_running_loop()
                old, new = await loop.run_in_executor(None, self.reload, runtime.name)
                return self._base_response(
                    request,
                    problem=runtime.name,
                    previous_revision=old,
                    revision=new,
                )
            if request.op == "shutdown":
                # The transport layer watches for this response and stops;
                # the service itself has nothing to tear down per-request.
                return self._base_response(request)
            raise ProtocolError("unknown-op", f"unknown op {request.op!r}")
        except ProtocolError as exc:
            self.stats.bump("errors")
            return error_payload(exc.code, exc.message, request.request_id)
        except Exception as exc:  # noqa: BLE001 - a request must never kill the loop
            self.stats.bump("errors")
            return error_payload(
                "internal", f"{type(exc).__name__}: {exc}", request.request_id
            )

    async def _handle_repair(self, request: Request) -> dict:
        runtime = self._resolve(request.problem)
        with self._admission_lock:
            if self.stats.in_flight >= self.queue_size:
                self.stats.bump("rejected_overload")
                self.stats.bump("errors")
                return error_payload(
                    "overloaded",
                    f"{self.queue_size} repairs already in flight",
                    request.request_id,
                )
            self.stats.bump("in_flight")
        # Snapshot after admission: a reload during this request must not
        # switch it to the new engine mid-flight.
        state = runtime.snapshot()
        deadline = (
            request.deadline if request.deadline is not None else self.default_deadline
        )
        # Submit to the pool directly so the admission slot is released by
        # the *worker's* done-callback — i.e. when the repair truly ends
        # (or is cancelled before starting), not when a deadline abandons
        # it.  An abandoned repair therefore keeps holding its slot, which
        # is what makes queue_size a real bound on backlogged work.
        try:
            worker_future = self._executor.submit(
                self._repair_sync, runtime, state, request, deadline
            )
        except BaseException:
            # submit can fail (e.g. the pool was shut down under a racing
            # close()); without a worker there is no done-callback, so the
            # slot must be released here or it leaks forever.
            self.stats.bump("in_flight", -1)
            raise
        worker_future.add_done_callback(lambda _f: self.stats.bump("in_flight", -1))
        future = asyncio.wrap_future(worker_future)
        try:
            if deadline is not None:
                record = await asyncio.wait_for(future, timeout=max(0.0, deadline))
            else:
                record = await future
        except asyncio.TimeoutError:
            self.stats.bump("deadline_timeouts")
            return self._base_response(
                request,
                problem=runtime.name,
                revision=state.revision,
                status="timeout",
                detail=f"deadline of {deadline}s exceeded",
            )
        except ClusterStoreError as exc:
            # Both generations saw a segment rewritten after their header
            # was read: the store changed on disk and nobody reloaded.
            self.stats.bump("errors")
            return error_payload(
                "stale-store",
                f"{exc} (send a 'reload' for problem {runtime.name!r})",
                request.request_id,
            )
        self.stats.bump("repairs")
        revision, record = record
        return self._record_response(request, runtime.name, revision, record)

    def _repair_sync(
        self,
        runtime: ProblemRuntime,
        state: _ProblemState,
        request: Request,
        deadline: float | None,
    ) -> tuple[int, BatchRecord]:
        """Worker-thread body: one batch of size 1 on the snapshotted engine.

        Returns the record together with the revision that actually answered.
        Normally that is the admission snapshot's; if paging a segment fails
        because the store was rewritten on disk under this lazily-opened
        generation, the repair re-runs once on the runtime's *current*
        generation (a reload racing this request installed one with a fresh
        header).  Only when no newer generation exists does the
        ClusterStoreError propagate, surfacing as a ``stale-store`` error.

        The request deadline doubles as the engine's per-attempt budget, so
        the cluster search self-limits (yielding the paper's ``timeout``
        status) even when the asyncio-side timer has already abandoned this
        thread's result.
        """
        try:
            return state.revision, self._run_once(state.engine, request, deadline)
        except ClusterStoreError:
            fresh = runtime.snapshot()
            if fresh is state:
                raise
            return fresh.revision, self._run_once(fresh.engine, request, deadline)

    @staticmethod
    def _run_once(
        engine: BatchRepairEngine, request: Request, deadline: float | None
    ) -> BatchRecord:
        attempt_id = (
            str(request.request_id) if request.request_id is not None else "request"
        )
        report = engine.run(
            [BatchAttempt(attempt_id=attempt_id, source=request.source)],
            budget=deadline,
        )
        return report.records[0]

    @staticmethod
    def _base_response(request: Request, **fields) -> dict:
        response: dict = {"ok": True, "op": request.op}
        if request.request_id is not None:
            response["id"] = request.request_id
        response.update(fields)
        return response

    def _record_response(
        self, request: Request, problem: str, revision: int, record: BatchRecord
    ) -> dict:
        return self._base_response(
            request,
            problem=problem,
            revision=revision,
            status=record.status,
            detail=record.detail,
            cost=record.cost,
            relative_size=record.relative_size,
            num_modified=record.num_modified,
            feedback=record.feedback,
            elapsed=round(record.elapsed, 6),
        )

    # -- introspection and lifecycle ---------------------------------------------

    def stats_snapshot(self) -> dict:
        """Service counters plus per-problem revision, paging and cache stats.

        ``store_paging`` reports the current engine's segment counters
        (segments/clusters loaded vs. skipped since the last reload) —
        deterministic for a given request history, and the operator's view
        of how much of each store serving has actually touched.
        """
        return {
            "service": self.stats.as_dict(),
            "queue_size": self.queue_size,
            "problems": {
                runtime.name: {
                    "revision": runtime.revision,
                    "clusters": runtime.snapshot().engine.clara.cluster_count,
                    "store_paging": runtime.snapshot().engine.clara.store_paging(),
                    "cache": runtime.caches.stats.as_dict(),
                    "cache_entries": runtime.caches.entry_counts(),
                    "ted": runtime.caches.ted.counters(),
                    "compile": runtime.caches.compiled.counters(),
                    "solve": runtime.caches.solve.counters(),
                    "retrieval": runtime.caches.retrieval.as_dict(),
                }
                for runtime in self._problems.values()
            },
        }

    def close(self) -> None:
        """Shut the worker pool down (finishes in-flight repairs)."""
        self._executor.shutdown(wait=True)
