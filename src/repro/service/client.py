"""A minimal blocking client for the service protocol.

Kept dependency-free (plain sockets) so the CI smoke job and operators can
round-trip a request without the library's heavier machinery::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1", 9172) as client:
        client.ping()
        response = client.repair("def f(x):\\n    return x", problem="square")
        print(response["status"], response["feedback"])

Equivalent by hand (the protocol is one JSON object per line)::

    printf '{"op": "ping"}\\n' | nc 127.0.0.1 9172
"""

from __future__ import annotations

import json
import socket

from .protocol import MAX_LINE_BYTES

__all__ = ["ServiceClient"]


class ServiceClient:
    """One blocking TCP connection speaking the NDJSON protocol.

    Args:
        host: Server address.
        port: Server port.
        timeout: Socket timeout in seconds for connect and each response.

    Thread safety: not thread-safe — requests and responses are paired by
    order on one connection, so share a client between threads only with
    external locking (or give each thread its own connection; the server
    handles connections independently).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- request primitives --------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request object and return the decoded response object."""
        self.send_raw(json.dumps(payload))
        return self.read_response()

    def send_raw(self, line: str) -> None:
        """Send a raw line verbatim (tests use this to send malformed input)."""
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()

    def read_response(self) -> dict:
        line = self._file.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- convenience ops -----------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def repair(
        self,
        source: str,
        *,
        problem: str | None = None,
        request_id: object = None,
        deadline: float | None = None,
    ) -> dict:
        payload: dict = {"op": "repair", "source": source}
        if problem is not None:
            payload["problem"] = problem
        if request_id is not None:
            payload["id"] = request_id
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request(payload)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def reload(self, problem: str | None = None) -> dict:
        payload: dict = {"op": "reload"}
        if problem is not None:
            payload["problem"] = problem
        return self.request(payload)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
