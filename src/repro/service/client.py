"""A minimal blocking client for the service protocol.

Kept dependency-free (plain sockets) so the CI smoke job and operators can
round-trip a request without the library's heavier machinery::

    from repro.service import RetryPolicy, ServiceClient

    with ServiceClient("127.0.0.1", 9172, retry=RetryPolicy()) as client:
        client.ping()
        response = client.repair("def f(x):\\n    return x", problem="square")
        print(response["status"], response["feedback"])

Equivalent by hand (the protocol is one JSON object per line)::

    printf '{"op": "ping"}\\n' | nc 127.0.0.1 9172

Retries.  A fleet front end answers transient failures with structured
errors flagged ``retriable`` (worker crash surfaced after its retry, a
tripped circuit breaker, admission overload, a draining server) and may
briefly refuse connections while restarting.  :class:`RetryPolicy` bounds
how a client rides those out: exponential backoff on connect failure and
on retriable error responses, with optional jitter — leave ``jitter`` at
``0.0`` (the default) for the deterministic delay sequence the tests
assert on.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Callable

from .protocol import MAX_LINE_BYTES, is_retriable

__all__ = ["RetryPolicy", "ServiceClient"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for connects and retriable errors.

    Attributes:
        attempts: Total tries (first attempt included); must be >= 1.
        base_delay: Delay before the first retry, in seconds.
        factor: Multiplier applied per retry.
        max_delay: Ceiling on a single delay.
        jitter: Fraction of each delay added uniformly at random in
            ``[0, jitter * delay]``.  ``0.0`` (default) is the
            deterministic, jitter-free mode; production fleets of clients
            should set e.g. ``0.25`` so synchronised failures do not
            re-dogpile the server on the same schedule.
        seed: Seeds the jitter RNG; ``None`` draws from the global RNG.
    """

    attempts: int = 4
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def delays(self) -> list[float]:
        """The back-off delay after each failed attempt (length ``attempts - 1``)."""
        rng = random.Random(self.seed)
        delays = []
        for index in range(self.attempts - 1):
            delay = min(self.max_delay, self.base_delay * self.factor**index)
            if self.jitter > 0:
                delay += rng.uniform(0.0, self.jitter * delay)
            delays.append(delay)
        return delays


class ServiceClient:
    """One blocking TCP connection speaking the NDJSON protocol.

    Args:
        host: Server address.
        port: Server port.
        timeout: Socket timeout in seconds for connect and each response.
        retry: When given, the initial connect retries on refusal/reset
            with this policy, and :meth:`request_with_retry` (which
            :meth:`repair` & co. route through) re-sends requests that
            fail with a *retriable* structured error or a lost
            connection.  ``None`` (the default) preserves the historical
            fail-fast behaviour: one connect, one send, first answer wins.
        sleep: Backoff sleeper, injectable for tests.

    Thread safety: not thread-safe — requests and responses are paired by
    order on one connection, so share a client between threads only with
    external locking (or give each thread its own connection; the server
    handles connections independently).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._file = None
        self._connect(retry)

    # -- lifecycle ----------------------------------------------------------------

    def _connect(self, retry: RetryPolicy | None) -> None:
        delays = retry.delays() if retry is not None else []
        for index in range(len(delays) + 1):
            try:
                self._sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout
                )
                self._file = self._sock.makefile("rwb")
                return
            except OSError:
                if index >= len(delays):
                    raise
                self._sleep(delays[index])

    def _reconnect(self) -> None:
        self.close()
        # The per-call connect never re-loops itself: request_with_retry
        # owns the attempt budget, one reconnect per attempt.
        self._connect(None)

    def close(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        finally:
            if self._sock is not None:
                self._sock.close()
            self._file = None
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- request primitives --------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request object and return the decoded response object."""
        self.send_raw(json.dumps(payload))
        return self.read_response()

    def request_with_retry(
        self, payload: dict, *, retry: RetryPolicy | None = None
    ) -> dict:
        """Send a request, retrying transient failures with backoff.

        Retries when the response is a structured error flagged retriable
        (``error.retriable`` true, or — for servers predating the field —
        a code in :data:`~repro.service.protocol.RETRIABLE_CODES`) and when
        the connection drops mid-request (reconnecting first).  Permanent
        errors and successful responses return immediately; the last
        response is returned when the attempt budget runs out, and the
        last connection error re-raises likewise.

        Args:
            payload: The request object.
            retry: Overrides the client-wide policy for this call; with
                neither set, behaves exactly like :meth:`request`.
        """
        policy = retry if retry is not None else self._retry
        if policy is None:
            return self.request(payload)
        delays = policy.delays()
        response: dict | None = None
        for index in range(len(delays) + 1):
            try:
                if self._sock is None:
                    self._reconnect()
                response = self.request(payload)
            except OSError:
                # Connection lost (or reconnect refused): drop the socket
                # so the next attempt reconnects; re-raise on the last.
                self.close()
                if index >= len(delays):
                    raise
            else:
                if not is_retriable(response):
                    return response
            if index < len(delays):
                self._sleep(delays[index])
        assert response is not None
        return response

    def send_raw(self, line: str) -> None:
        """Send a raw line verbatim (tests use this to send malformed input)."""
        if self._file is None:
            raise ConnectionError("client is closed")
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()

    def read_response(self) -> dict:
        if self._file is None:
            raise ConnectionError("client is closed")
        line = self._file.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- convenience ops -----------------------------------------------------------

    def ping(self) -> dict:
        return self.request_with_retry({"op": "ping"})

    def repair(
        self,
        source: str,
        *,
        problem: str | None = None,
        request_id: object = None,
        deadline: float | None = None,
    ) -> dict:
        payload: dict = {"op": "repair", "source": source}
        if problem is not None:
            payload["problem"] = problem
        if request_id is not None:
            payload["id"] = request_id
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request_with_retry(payload)

    def stats(self) -> dict:
        return self.request_with_retry({"op": "stats"})

    def reload(self, problem: str | None = None) -> dict:
        payload: dict = {"op": "reload"}
        if problem is not None:
            payload["problem"] = problem
        return self.request_with_retry(payload)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
