"""Repair-as-a-service: a resident front door over the batch engine.

The engine (:mod:`repro.engine`) made corpus repair a single-process batch
job; this package makes it a *resident service* — the deployment shape the
paper's motivation actually calls for (feedback delivered to students while
they work).  A :class:`RepairService` keeps one warm
:class:`repro.engine.batch.BatchRepairEngine` and
:class:`repro.engine.cache.RepairCaches` per problem, so every request from
every client shares the interned-expression, trace, match, TED and repair
memos instead of re-parsing pools and reloading cluster stores per
invocation.

Three layers, each usable on its own:

* :mod:`repro.service.protocol` — the newline-delimited JSON request /
  response format and its structured error codes;
* :mod:`repro.service.service` — :class:`RepairService`: per-problem warm
  state, bounded admission, per-request deadlines, hot reload of updated
  cluster stores (in-flight requests keep the revision they started on);
* :mod:`repro.service.server` — :class:`RepairServer`, the asyncio TCP
  front end (``repro-clara serve``), and
  :class:`repro.service.client.ServiceClient`, a tiny blocking client used
  by the tests and the CI smoke job.

Dependency direction: ``service → engine → core``; nothing below imports
this package.
"""

from .client import RetryPolicy, ServiceClient
from .protocol import (
    PROTOCOL_VERSION,
    RETRIABLE_CODES,
    ProtocolError,
    Request,
    is_retriable,
    parse_request_line,
)
from .server import RepairServer
from .service import ProblemRuntime, RepairService, ServiceStats

__all__ = [
    "PROTOCOL_VERSION",
    "RETRIABLE_CODES",
    "ProblemRuntime",
    "ProtocolError",
    "RepairServer",
    "RepairService",
    "Request",
    "RetryPolicy",
    "ServiceClient",
    "ServiceStats",
    "is_retriable",
    "parse_request_line",
]
