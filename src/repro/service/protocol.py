"""The service wire format: newline-delimited JSON requests and responses.

One request per line, one response line per request, in order.  A request
is a JSON object with an ``op`` field; everything else depends on the op:

``repair``
    ``{"op": "repair", "problem": "derivatives", "source": "...",
    "id": "attempt-7", "deadline": 5.0}`` — repair one attempt.  ``id`` is
    echoed back verbatim; ``deadline`` (seconds, optional) bounds this
    request and overrides the service default.  ``problem`` may be omitted
    when the service hosts exactly one problem.
``ping``
    Liveness probe; answers immediately without touching any engine.
``stats``
    Service counters plus per-problem revision / cache statistics.
``reload``
    Re-read a problem's cluster store from disk and swap it in.  In-flight
    repairs keep the engine (and revision) they were admitted with.
``shutdown``
    Ask the server to stop accepting connections and exit cleanly.

Every response is a JSON object with ``"ok": true`` or ``"ok": false``.
Failures are *structured*, never disconnections: a malformed line yields
``{"ok": false, "error": {"code": "bad-json", ...}}`` and the connection
stays open (the one exception is an over-long line, which cannot be
re-synchronised and closes the connection after the error response).

Error codes: ``bad-json`` (line is not valid JSON), ``bad-request``
(valid JSON but not a valid request), ``unknown-op``, ``unknown-problem``,
``overloaded`` (admission queue full), ``stale-store`` (the store changed
on disk under a serving engine), ``worker-crashed`` (a fleet worker died
while holding the request, after its one retry on the respawn),
``shard-unavailable`` (the circuit breaker marked the problem's worker
shard down), ``draining`` (the server is shutting down and no longer
admits work), ``internal`` (unexpected server-side failure).

Every error object carries ``retriable``: ``true`` means the failure is
transient — the same request may succeed if re-sent after a backoff
(:data:`RETRIABLE_CODES`); ``false`` means re-sending verbatim cannot
help.  Responses from servers predating the field omit it; clients must
treat a missing ``retriable`` as ``false`` (see
:meth:`repro.service.client.ServiceClient.request_with_retry`).

All protocol values are machine-independent except ``elapsed`` on repair
responses, which is wall-clock and informational only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "RETRIABLE_CODES",
    "ProtocolError",
    "Request",
    "parse_request",
    "parse_request_line",
    "error_payload",
    "is_retriable",
]

#: Bump when the wire format changes incompatibly.  Responses to ``ping``
#: and ``stats`` carry it so clients can detect a mismatched server.
PROTOCOL_VERSION = 1

#: Upper bound on one request line (and the asyncio stream read limit).
#: Student submissions are a few KiB; 4 MiB leaves two orders of magnitude
#: of headroom while bounding a single client's buffer footprint.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: The operations a server understands.
OPS = ("repair", "ping", "stats", "reload", "shutdown")

#: Every structured error code a server may answer with.
ERROR_CODES = (
    "bad-json",
    "bad-request",
    "unknown-op",
    "unknown-problem",
    "overloaded",
    "stale-store",
    "worker-crashed",
    "shard-unavailable",
    "draining",
    "internal",
)

#: Codes whose failures are transient: the identical request may succeed if
#: re-sent after a backoff.  Everything else is permanent for that payload.
RETRIABLE_CODES = frozenset(
    {"overloaded", "stale-store", "worker-crashed", "shard-unavailable", "draining"}
)


def is_retriable(response: dict) -> bool:
    """Whether a decoded response is a retriable structured error.

    Tolerates old servers: a payload without the ``retriable`` field falls
    back to the :data:`RETRIABLE_CODES` classification of its code, and a
    non-error (or unparseable) payload is never retriable.
    """
    if not isinstance(response, dict) or response.get("ok") is not False:
        return False
    error = response.get("error")
    if not isinstance(error, dict):
        return False
    retriable = error.get("retriable")
    if isinstance(retriable, bool):
        return retriable
    return error.get("code") in RETRIABLE_CODES


class ProtocolError(ValueError):
    """A request that cannot be served, with its wire-format error code."""

    def __init__(self, code: str, message: str, request_id: object = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id


@dataclass(frozen=True)
class Request:
    """A parsed, validated request line.

    Attributes:
        op: One of :data:`OPS`.
        problem: Target problem name (``repair``/``reload``; optional when
            the service hosts a single problem).
        source: Attempt source text (``repair`` only).
        request_id: Client-chosen identifier echoed back verbatim.
        deadline: Per-request wall-clock bound in seconds, overriding the
            service default; ``None`` inherits the default.
    """

    op: str
    problem: str | None = None
    source: str | None = None
    request_id: Any = None
    deadline: float | None = None


def parse_request(payload: object) -> Request:
    """Validate a decoded JSON payload into a :class:`Request`.

    Raises:
        ProtocolError: ``bad-request`` for structural problems, carrying
            the payload's ``id`` (when present) so the error response can
            still be correlated; ``unknown-op`` for an unrecognised ``op``.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    request_id = payload.get("id")
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "missing string 'op' field", request_id)
    if op not in OPS:
        raise ProtocolError(
            "unknown-op", f"unknown op {op!r} (expected one of {', '.join(OPS)})",
            request_id,
        )
    problem = payload.get("problem")
    if problem is not None and not isinstance(problem, str):
        raise ProtocolError("bad-request", "'problem' must be a string", request_id)
    source = payload.get("source")
    if op == "repair":
        if not isinstance(source, str):
            raise ProtocolError(
                "bad-request", "repair requests need a string 'source' field",
                request_id,
            )
    deadline = payload.get("deadline")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise ProtocolError(
                "bad-request", "'deadline' must be a number of seconds", request_id
            )
        deadline = float(deadline)
    return Request(
        op=op, problem=problem, source=source, request_id=request_id, deadline=deadline
    )


def parse_request_line(line: str) -> Request:
    """Parse one wire line into a :class:`Request`.

    Raises:
        ProtocolError: ``bad-json`` when the line is not valid JSON, plus
            everything :func:`parse_request` raises.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"invalid JSON: {exc}") from exc
    return parse_request(payload)


def error_payload(
    code: str,
    message: str,
    request_id: object = None,
    *,
    retriable: bool | None = None,
) -> dict:
    """A structured error response body.

    ``retriable`` defaults to the :data:`RETRIABLE_CODES` classification of
    ``code``; pass it explicitly only to override (e.g. an ``internal``
    failure known to be a transient resource problem).
    """
    if retriable is None:
        retriable = code in RETRIABLE_CODES
    response: dict = {
        "ok": False,
        "error": {"code": code, "message": message, "retriable": retriable},
    }
    if request_id is not None:
        response["id"] = request_id
    return response
