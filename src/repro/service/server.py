"""Asyncio TCP front end for :class:`~repro.service.service.RepairService`.

One connection handler per client, one JSON line in, one JSON line out, in
order per connection (different connections proceed concurrently).  The
server never disconnects a client for sending garbage — malformed lines
get structured error responses — with one exception: a line exceeding
:data:`~repro.service.protocol.MAX_LINE_BYTES` cannot be re-synchronised,
so the server answers with a ``bad-request`` error and closes that
connection.

Shutdown: an authenticated transport is out of scope for this
reproduction, so any client may send ``{"op": "shutdown"}`` — the server
answers it, stops accepting connections, closes the remaining ones and
returns from :meth:`RepairServer.serve`.  Bind to localhost (the default)
when that matters.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

from .protocol import MAX_LINE_BYTES, error_payload
from .service import RepairService

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "RepairServer"]

DEFAULT_HOST = "127.0.0.1"
#: Default TCP port ("clara" on a phone keypad, wrapped into the dynamic range).
DEFAULT_PORT = 9172


class RepairServer:
    """The TCP line pump over a :class:`RepairService`.

    Args:
        service: The service handling parsed requests.
        host: Interface to bind (default localhost).
        port: TCP port; ``0`` picks an ephemeral port, readable from
            :attr:`port` once :meth:`serve` has bound (the tests do this).

    Thread safety: :meth:`serve` runs on one event loop;
    :meth:`request_stop` is the only method safe to call from other
    threads.
    """

    def __init__(
        self,
        service: RepairService,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    async def serve(self, on_ready: Callable[["RepairServer"], None] | None = None) -> None:
        """Bind, serve until a shutdown is requested, then close cleanly.

        ``on_ready`` is invoked once the socket is bound (with :attr:`port`
        resolved), which is how the CLI prints the listening address and
        how tests learn the ephemeral port.
        """
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = server.sockets[0].getsockname()[1]
        if on_ready is not None:
            on_ready(self)
        async with server:
            await self._stop.wait()
            for writer in list(self._writers):
                writer.close()

    def request_stop(self) -> None:
        """Ask a running :meth:`serve` to return; safe from any thread.

        A no-op when the server already stopped (the loop is closed).
        """
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line exceeded the stream limit; the remainder of
                    # the buffer is unparseable, so answer and disconnect.
                    await self._send(
                        writer,
                        error_payload(
                            "bad-request",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                response = await self.service.handle_line(text)
                await self._send(writer, response)
                if response.get("ok") and response.get("op") == "shutdown":
                    if self._stop is not None:
                        self._stop.set()
                    break
        except ConnectionError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, response: dict) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()
