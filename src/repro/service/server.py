"""Asyncio TCP front end for :class:`~repro.service.service.RepairService`.

One connection handler per client, one JSON line in, one JSON line out, in
order per connection (different connections proceed concurrently).  The
server never disconnects a client for sending garbage — malformed lines
get structured error responses — with one exception: a line exceeding
:data:`~repro.service.protocol.MAX_LINE_BYTES` cannot be re-synchronised,
so the server answers with a ``bad-request`` error and closes that
connection.

Shutdown: an authenticated transport is out of scope for this
reproduction, so any client may send ``{"op": "shutdown"}`` — the server
answers it, stops accepting connections, closes the remaining ones and
returns from :meth:`RepairServer.serve`.  Bind to localhost (the default)
when that matters.

Every stop — shutdown op, :meth:`RepairServer.request_stop`, or SIGTERM /
SIGINT when :meth:`serve` was asked to handle signals — is a *graceful
drain*: the listening socket closes first (no new connections), lines
that arrive on open connections while draining are answered with a
retriable ``draining`` error instead of being processed, and in-flight
requests get up to ``drain_timeout`` seconds to finish before the
connections are torn down.  A request that was admitted is therefore
always answered (or the client sees a clean close only after the drain
budget expires), never silently dropped mid-repair.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Callable

from .protocol import MAX_LINE_BYTES, error_payload
from .service import RepairService

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "RepairServer"]

DEFAULT_HOST = "127.0.0.1"
#: Default TCP port ("clara" on a phone keypad, wrapped into the dynamic range).
DEFAULT_PORT = 9172


class RepairServer:
    """The TCP line pump over a :class:`RepairService`.

    Args:
        service: The service handling parsed requests (anything with an
            ``async handle_line(str) -> dict`` — the single-process
            :class:`RepairService` or the fleet router).
        host: Interface to bind (default localhost).
        port: TCP port; ``0`` picks an ephemeral port, readable from
            :attr:`port` once :meth:`serve` has bound (the tests do this).
        drain_timeout: Seconds in-flight requests get to finish once a
            stop is requested, before connections are closed anyway.

    Thread safety: :meth:`serve` runs on one event loop;
    :meth:`request_stop` is the only method safe to call from other
    threads.
    """

    def __init__(
        self,
        service: RepairService,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        drain_timeout: float = 10.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._handlers: set[asyncio.Task] = set()

    async def serve(
        self,
        on_ready: Callable[["RepairServer"], None] | None = None,
        *,
        handle_signals: bool = False,
    ) -> None:
        """Bind, serve until a shutdown is requested, then drain and close.

        ``on_ready`` is invoked once the socket is bound (with :attr:`port`
        resolved), which is how the CLI prints the listening address and
        how tests learn the ephemeral port.

        With ``handle_signals`` SIGTERM and SIGINT request a graceful
        drain instead of killing the process mid-repair (ignored where
        the loop cannot own signal handlers — non-main threads, or
        platforms without ``add_signal_handler``).
        """
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        if handle_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self._stop.set)
                except (NotImplementedError, RuntimeError, ValueError):
                    break  # not the main thread / unsupported platform
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = server.sockets[0].getsockname()[1]
        if on_ready is not None:
            on_ready(self)
        try:
            async with server:
                await self._stop.wait()
                # Drain: stop accepting, answer new lines with a retriable
                # "draining" error, give in-flight repairs a bounded window.
                self._draining = True
                server.close()
                try:
                    await asyncio.wait_for(self._idle.wait(), self.drain_timeout)
                except asyncio.TimeoutError:
                    pass
                for writer in list(self._writers):
                    writer.close()
                # Let the connection handlers observe EOF and finish, so
                # loop teardown never cancels one mid-readline.
                if self._handlers:
                    await asyncio.wait(set(self._handlers), timeout=1.0)
        finally:
            if handle_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    try:
                        self._loop.remove_signal_handler(signum)
                    except (NotImplementedError, RuntimeError, ValueError):
                        break

    def request_stop(self) -> None:
        """Ask a running :meth:`serve` to return; safe from any thread.

        A no-op when the server already stopped (the loop is closed).
        """
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line exceeded the stream limit; the remainder of
                    # the buffer is unparseable, so answer and disconnect.
                    await self._send(
                        writer,
                        error_payload(
                            "bad-request",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                if self._draining:
                    await self._send(writer, self._draining_error(text))
                    continue
                self._inflight += 1
                if self._idle is not None:
                    self._idle.clear()
                try:
                    response = await self.service.handle_line(text)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0 and self._idle is not None:
                        self._idle.set()
                await self._send(writer, response)
                if response.get("ok") and response.get("op") == "shutdown":
                    if self._stop is not None:
                        self._stop.set()
                    break
        except ConnectionError:
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    def _draining_error(text: str) -> dict:
        """A retriable refusal for a line that arrived after a stop request."""
        request_id = None
        try:
            payload = json.loads(text)
            if isinstance(payload, dict):
                request_id = payload.get("id")
        except json.JSONDecodeError:
            pass
        return error_payload(
            "draining", "server is draining for shutdown; retry elsewhere", request_id
        )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, response: dict) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()
