"""Tests for local repair generation and the repair algorithm (paper §5)."""

from __future__ import annotations

import pytest

from repro.core.clustering import cluster_programs
from repro.core.inputs import is_correct
from repro.core.localrepair import (
    enumerate_partial_relations,
    expressions_match,
    generate_local_repairs,
)
from repro.core.matching import structural_match
from repro.core.repair import find_best_repair, repair_against_cluster
from repro.frontend import parse_python_source
from repro.model.expr import Const, Op, Var


@pytest.fixture()
def deriv_cluster(paper_sources, deriv_cases):
    programs = [
        parse_python_source(paper_sources["C1"]),
        parse_python_source(paper_sources["C2"]),
    ]
    return cluster_programs(programs, deriv_cases).clusters[0]


# -- expression matching and partial relations ----------------------------------------


def test_expressions_match_on_representative_traces(deriv_cluster):
    rep = deriv_cluster.representative
    traces = deriv_cluster.representative_traces
    loop_body = rep.location_ids()[2]
    append_style = rep.update_for(loop_body, "result")
    concat_style = Op(
        "Add",
        Var("result"),
        Op("ListInit", Op("Mult", Op("float", Op("ListHead", Var("$iter1"))),
                          Op("GetElement", Var("poly"), Op("ListHead", Var("$iter1"))))),
    )
    assert expressions_match(concat_style, append_style, traces, loop_body)
    wrong = Op("Add", Var("result"), Const([1.0]))
    assert not expressions_match(wrong, append_style, traces, loop_body)


def test_enumerate_partial_relations_injective_and_forced():
    relations = list(
        enumerate_partial_relations(["a", "b"], ["x", "y", "z"], forced=("a", "x"))
    )
    assert all(rel["a"] == "x" for rel in relations)
    assert all(rel["b"] != "x" for rel in relations)
    assert {rel["b"] for rel in relations} == {"y", "z"}


def test_enumerate_partial_relations_fixed_specials_map_identically():
    relations = list(
        enumerate_partial_relations(["$ret", "v"], ["x", "y"], forced=("v", "x"))
    )
    assert relations and all(rel["$ret"] == "$ret" for rel in relations)


# -- local repairs --------------------------------------------------------------------


def test_local_repairs_for_paper_i1(paper_sources, deriv_cluster):
    implementation = parse_python_source(paper_sources["I1"])
    location_map = structural_match(implementation, deriv_cluster.representative)
    candidates = generate_local_repairs(implementation, deriv_cluster, location_map)

    # Site of the wrong return expression (after the loop, variable $ret).
    after_loop = implementation.location_ids()[3]
    ret_site = next(s for s in candidates if s.loc_id == after_loop and s.var == "$ret")
    ret_candidates = candidates[ret_site]
    assert ret_candidates, "the return expression must have repair candidates"
    # At least one replacement candidate exists with a small cost (change 0.0
    # to [0.0]); no zero-cost keep candidate may exist because the original
    # return expression is wrong.
    assert all(c.cost > 0 or c.new_expr is not None for c in ret_candidates)
    assert min(c.cost for c in ret_candidates) <= 2

    # The accumulator assignment inside the loop body is already correct, so a
    # zero-cost keep candidate must exist for it.
    loop_body = implementation.location_ids()[2]
    new_site = next(s for s in candidates if s.loc_id == loop_body and s.var == "new")
    assert any(c.keeps_original and c.cost == 0 for c in candidates[new_site])


# -- whole-program repair ----------------------------------------------------------------


def test_repair_paper_i1_minimal(paper_sources, deriv_cases, deriv_cluster):
    implementation = parse_python_source(paper_sources["I1"])
    repair = repair_against_cluster(implementation, deriv_cluster)
    assert repair is not None
    # Fig. 2(g): a single small change (0.0 -> [0.0]); relative size ~0.03.
    assert repair.num_modified_expressions == 1
    assert repair.cost <= 2
    assert repair.relative_size() < 0.1
    assert is_correct(repair.repaired_program, deriv_cases)
    # The witness maps the student's variables onto the representative's.
    assert repair.variable_map["new"] == "result"


def test_repair_paper_i2_three_changes(paper_sources, deriv_cases, deriv_cluster):
    implementation = parse_python_source(paper_sources["I2"])
    repair = repair_against_cluster(implementation, deriv_cluster)
    assert repair is not None
    # Fig. 2(h): iterator bounds, the assignment style, and the return value.
    assert repair.num_modified_expressions == 3
    assert is_correct(repair.repaired_program, deriv_cases)


def test_repair_soundness_theorem_5_3(paper_sources, deriv_cases, deriv_cluster):
    # Every produced repair must make the program pass the inputs I
    # (Theorem 5.3 instantiated on the test inputs).
    for name in ("I1", "I2"):
        implementation = parse_python_source(paper_sources[name])
        repair = repair_against_cluster(implementation, deriv_cluster)
        assert repair is not None
        assert is_correct(repair.repaired_program, deriv_cases)


def test_repair_requires_same_control_flow(deriv_cases, deriv_cluster):
    loop_free = parse_python_source("def computeDeriv(poly):\n    return [0.0]\n")
    assert repair_against_cluster(loop_free, deriv_cluster) is None


def test_repair_adds_fresh_variable_when_needed(deriv_cases):
    # The correct solution tracks the derivative in an accumulator; the
    # incorrect attempt forgot the accumulator entirely (cf. Fig. 8's "big
    # conceptual error": a fresh variable plus new statements are required).
    correct = """
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
"""
    missing_accumulator = """
def computeDeriv(poly):
    for e in range(1, len(poly)):
        pass
    if poly == []:
        return [0.0]
    else:
        return poly
"""
    cluster = cluster_programs([parse_python_source(correct)], deriv_cases).clusters[0]
    implementation = parse_python_source(missing_accumulator)
    repair = repair_against_cluster(implementation, cluster)
    assert repair is not None
    assert repair.added_vars, "a fresh accumulator variable must be introduced"
    assert is_correct(repair.repaired_program, deriv_cases)
    assert any(action.kind == "add" for action in repair.actions)


def test_repair_deletes_spurious_variable(deriv_cases, paper_sources):
    cluster = cluster_programs(
        [parse_python_source(paper_sources["C1"])], deriv_cases
    ).clusters[0]
    with_extra = """
def computeDeriv(poly):
    result = []
    junk = 0
    for e in range(1, len(poly)):
        result.append(poly[e]*e)
        junk = junk + 1
    if result == []:
        return [0.0]
    else:
        return result
"""
    implementation = parse_python_source(with_extra)
    repair = repair_against_cluster(implementation, cluster)
    assert repair is not None
    assert is_correct(repair.repaired_program, deriv_cases)
    # 'junk' has no counterpart in the single-member cluster: it is deleted.
    assert "junk" in repair.deleted_vars


def test_find_best_repair_prefers_cheapest_cluster(paper_sources, deriv_cases):
    programs = [
        parse_python_source(paper_sources["C1"]),
        parse_python_source(paper_sources["C2"]),
    ]
    clusters = cluster_programs(programs, deriv_cases).clusters
    implementation = parse_python_source(paper_sources["I1"])
    best = find_best_repair(implementation, clusters)
    assert best is not None
    assert best.cost <= 2


def test_find_best_repair_visits_clusters_in_deterministic_order(
    paper_sources, deriv_cases
):
    """Under max_clusters (and timeouts) the search must try bigger clusters
    first and break size ties by ascending cluster_id, independent of the
    order the cluster list happens to arrive in."""
    programs = [
        parse_python_source(paper_sources["C1"]),
        parse_python_source(paper_sources["C2"]),
    ]
    # Two singleton clusters of the same strategy: equal sizes, ids 0 and 1.
    clusters = [
        cluster_programs([program], deriv_cases).clusters[0] for program in programs
    ]
    clusters[1].cluster_id = 1
    implementation = parse_python_source(paper_sources["I1"])
    for ordering in (clusters, list(reversed(clusters))):
        best = find_best_repair(implementation, ordering, max_clusters=1)
        assert best is not None
        assert best.cluster_id == 0  # tie on size -> lowest cluster_id wins


def test_enumeration_solver_agrees_with_ilp(paper_sources, deriv_cases, deriv_cluster):
    for name in ("I1", "I2"):
        implementation = parse_python_source(paper_sources[name])
        ilp = repair_against_cluster(implementation, deriv_cluster, solver="ilp")
        enum = repair_against_cluster(implementation, deriv_cluster, solver="enumerate")
        assert ilp is not None and enum is not None
        assert abs(ilp.cost - enum.cost) < 1e-9


def test_unknown_solver_rejected(paper_sources, deriv_cluster):
    implementation = parse_python_source(paper_sources["I1"])
    with pytest.raises(ValueError):
        repair_against_cluster(implementation, deriv_cluster, solver="magic")


# -- the fast path: cost-bounded search and candidate pruning ------------------------


def _repair_fields(repair):
    """Everything observable about a repair except wall-clock solve time."""
    return repair.comparable_fields() if repair is not None else None


def test_cost_bounded_search_is_field_identical(paper_sources, deriv_cases):
    from repro.engine import RepairCaches

    # Two singleton clusters force the search to visit a second cluster with
    # a bound from the first.
    clusters = [
        cluster_programs([parse_python_source(paper_sources[name])], deriv_cases).clusters[0]
        for name in ("C1", "C2")
    ]
    clusters[1].cluster_id = 1
    for name in ("I1", "I2"):
        implementation = parse_python_source(paper_sources[name])
        unpruned = find_best_repair(
            implementation, clusters, caches=RepairCaches(enabled=False), cost_bound=False
        )
        pruned = find_best_repair(
            implementation, clusters, caches=RepairCaches(), cost_bound=True
        )
        assert _repair_fields(pruned) == _repair_fields(unpruned)


def test_cost_bounded_search_skips_ted_dps(paper_sources, deriv_cases):
    from repro.engine import RepairCaches

    clusters = [
        cluster_programs([parse_python_source(paper_sources[name])], deriv_cases).clusters[0]
        for name in ("C1", "C2")
    ]
    clusters[1].cluster_id = 1
    implementation = parse_python_source(paper_sources["I2"])

    baseline = RepairCaches(enabled=False)
    find_best_repair(implementation, clusters, caches=baseline, cost_bound=False)
    fast = RepairCaches()
    find_best_repair(implementation, clusters, caches=fast, cost_bound=True)

    assert fast.ted.dp_runs < baseline.ted.dp_runs
    assert fast.ted.memo_hits + fast.ted.lb_prunes > 0


def test_generate_local_repairs_prunes_only_at_or_above_bound(
    paper_sources, deriv_cluster
):
    implementation = parse_python_source(paper_sources["I2"])
    location_map = structural_match(implementation, deriv_cluster.representative)
    unbounded = generate_local_repairs(implementation, deriv_cluster, location_map)
    costs = sorted(
        c.cost for candidates in unbounded.values() for c in candidates if c.cost > 0
    )
    assert costs, "the corpus must produce costly candidates"
    bound = float(costs[len(costs) // 2])

    bounded = generate_local_repairs(
        implementation, deriv_cluster, location_map, cost_bound=bound
    )
    assert set(bounded) == set(unbounded)
    for site, candidates in unbounded.items():
        surviving = [c for c in candidates if c.cost < bound]
        assert bounded[site] == surviving, (
            "pruning must drop exactly the candidates whose cost reaches the "
            "bound, with identical costs for the survivors"
        )
