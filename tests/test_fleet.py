"""The worker fleet: supervision, crash recovery, fault injection, retries.

Every failure mode is driven through a deterministic
:class:`~repro.fleet.faults.FaultPlan` — faults key on (worker,
incarnation, op, ordinal), never wall-clock time — so these tests have no
sleep-and-hope races: a crash happens exactly on the Nth repair of a
given process incarnation, every run.

Fleet tests spawn real worker subprocesses (the same
``python -m repro.fleet.worker`` path production uses); the drain test
runs the full ``repro-clara serve --fleet`` CLI under SIGTERM.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import Clara
from repro.datasets import generate_corpus, get_problem
from repro.engine import BatchAttempt, BatchRepairEngine
from repro.fleet import BackoffPolicy, Fault, FaultPlan, FaultPlanError, FleetService
from repro.service import RetryPolicy, ServiceClient
from repro.service.protocol import RETRIABLE_CODES, error_payload, is_retriable

PROBLEMS = ("derivatives", "oddTuples")


@pytest.fixture(scope="module")
def corpora():
    return {
        name: generate_corpus(get_problem(name), 6, 3, seed=7) for name in PROBLEMS
    }


@pytest.fixture(scope="module")
def stores(tmp_path_factory, corpora):
    directory = tmp_path_factory.mktemp("fleet")
    paths = []
    for name in PROBLEMS:
        spec = get_problem(name)
        clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
        clara.add_correct_sources(corpora[name].correct_sources)
        paths.append(clara.save_clusters(directory / f"{name}.json", problem=name))
    return paths


def _repair_line(source, problem="derivatives", request_id="r"):
    return json.dumps(
        {"op": "repair", "problem": problem, "source": source, "id": request_id}
    )


def _run(coro):
    return asyncio.run(coro)


def _fleet(stores, tmp_path, faults=(), **kwargs):
    plan_path = None
    if faults:
        plan_path = FaultPlan(faults).save(tmp_path / "plan.json")
    kwargs.setdefault("heartbeat_interval", None)
    kwargs.setdefault("backoff", BackoffPolicy(base=0.02, factor=2.0, max_strikes=3))
    fleet = FleetService(stores, fault_plan_path=plan_path, **kwargs)
    assert fleet.wait_ready(60), "fleet did not reach serving"
    return fleet


# -- fault plans -------------------------------------------------------------------


class TestFaultPlan:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            (
                Fault(action="crash", request=3, worker=0, incarnation=0, exit_code=9),
                Fault(action="hang", request=4, worker=0, incarnation=1, seconds=1800.0),
                Fault(action="delay", request=2, worker=1, seconds=0.05),
            )
        )
        loaded = FaultPlan.load(plan.save(tmp_path / "plan.json"))
        assert loaded.faults == plan.faults

    def test_matching_coordinates(self):
        fault = Fault(action="crash", request=2, worker=1, incarnation=0)
        assert fault.matches(worker=1, incarnation=0, op="repair", ordinal=2)
        assert not fault.matches(worker=0, incarnation=0, op="repair", ordinal=2)
        assert not fault.matches(worker=1, incarnation=1, op="repair", ordinal=2)
        assert not fault.matches(worker=1, incarnation=0, op="stats", ordinal=2)
        assert not fault.matches(worker=1, incarnation=0, op="repair", ordinal=3)

    def test_omitted_incarnation_matches_every_respawn(self):
        flappy = Fault(action="crash", request=0, worker=0)
        for incarnation in range(5):
            assert flappy.matches(worker=0, incarnation=incarnation, op="repair", ordinal=0)

    def test_lookup_first_match_and_empty_plan(self):
        first = Fault(action="delay", request=0, seconds=0.01)
        second = Fault(action="crash", request=0)
        plan = FaultPlan((first, second))
        assert plan.lookup(worker=0, incarnation=0, op="repair", ordinal=0) is first
        assert not FaultPlan()
        assert FaultPlan().lookup(worker=0, incarnation=0, op="repair", ordinal=0) is None

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"action": "melt", "request": 0}, "unknown fault action"),
            ({"action": "crash"}, "missing"),
            ({"action": "crash", "request": -1}, ">= 0"),
            ({"action": "crash", "request": 0, "surprise": 1}, "unknown fault fields"),
            ("crash", "JSON object"),
        ],
    )
    def test_malformed_faults_rejected(self, payload, fragment):
        with pytest.raises(FaultPlanError, match=fragment):
            Fault.from_json(payload)

    def test_malformed_plan_documents_rejected(self, tmp_path):
        with pytest.raises(FaultPlanError, match="'faults' list"):
            FaultPlan.from_json({"rules": []})
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.load(path)
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.load(tmp_path / "missing.json")


# -- protocol: retriable errors ----------------------------------------------------


class TestRetriableErrors:
    def test_error_payload_flags_retriable_codes(self):
        for code in RETRIABLE_CODES:
            assert error_payload(code, "x")["error"]["retriable"] is True
        assert error_payload("bad-request", "x")["error"]["retriable"] is False
        assert error_payload("unknown-problem", "x")["error"]["retriable"] is False

    def test_explicit_override_wins(self):
        assert error_payload("internal", "x", retriable=True)["error"]["retriable"] is True
        assert error_payload("overloaded", "x", retriable=False)["error"]["retriable"] is False

    def test_is_retriable_reads_the_field(self):
        assert is_retriable(error_payload("worker-crashed", "x"))
        assert not is_retriable(error_payload("bad-json", "x"))
        assert not is_retriable({"ok": True, "op": "ping"})

    def test_is_retriable_tolerates_old_payloads(self):
        # Responses from servers predating the field fall back to code class.
        legacy = {"ok": False, "error": {"code": "overloaded", "message": "m"}}
        assert is_retriable(legacy)
        legacy["error"]["code"] = "bad-request"
        assert not is_retriable(legacy)
        assert not is_retriable({"ok": False})
        assert not is_retriable({"ok": False, "error": "nope"})


# -- client retry policy -----------------------------------------------------------


class TestRetryPolicy:
    def test_deterministic_delays(self):
        policy = RetryPolicy(attempts=4, base_delay=0.05, factor=2.0, max_delay=2.0)
        assert policy.delays() == [0.05, 0.1, 0.2]
        assert policy.delays() == policy.delays()

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(attempts=5, base_delay=1.0, factor=10.0, max_delay=3.0)
        assert policy.delays() == [1.0, 3.0, 3.0, 3.0]

    def test_seeded_jitter_is_reproducible_and_bounded(self):
        policy = RetryPolicy(attempts=4, base_delay=1.0, factor=1.0, jitter=0.5, seed=11)
        first, second = policy.delays(), policy.delays()
        assert first == second
        assert all(1.0 <= delay <= 1.5 for delay in first)
        assert first != [1.0, 1.0, 1.0]  # jitter actually applied

    def test_attempts_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            RetryPolicy(attempts=0)


class _ScriptedServer:
    """A one-connection TCP stub answering each line from a fixed script."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self.requests = []
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while self.responses:
            conn, _ = self.listener.accept()
            with conn, conn.makefile("rwb") as stream:
                while self.responses:
                    line = stream.readline()
                    if not line:
                        break
                    self.requests.append(json.loads(line))
                    response = self.responses.pop(0)
                    if response is None:  # simulate a crash mid-request
                        break
                    stream.write(json.dumps(response).encode() + b"\n")
                    stream.flush()

    def close(self):
        self.listener.close()
        self.thread.join(5)


class TestClientRetry:
    def test_no_policy_is_fail_fast(self):
        server = _ScriptedServer([error_payload("overloaded", "busy")])
        try:
            with ServiceClient("127.0.0.1", server.port) as client:
                response = client.request_with_retry({"op": "ping"})
            assert response["error"]["code"] == "overloaded"
            assert len(server.requests) == 1
        finally:
            server.close()

    def test_retries_retriable_errors_with_backoff(self):
        server = _ScriptedServer(
            [
                error_payload("overloaded", "busy"),
                error_payload("shard-unavailable", "breaker"),
                {"ok": True, "op": "ping"},
            ]
        )
        slept = []
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(attempts=4, base_delay=0.05),
                sleep=slept.append,
            )
            with client:
                assert client.ping() == {"ok": True, "op": "ping"}
            assert len(server.requests) == 3
            assert slept == [0.05, 0.1]  # third attempt succeeded: no third sleep
        finally:
            server.close()

    def test_permanent_errors_return_immediately(self):
        server = _ScriptedServer([error_payload("unknown-problem", "nope")])
        slept = []
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(attempts=4, base_delay=0.05),
                sleep=slept.append,
            )
            with client:
                response = client.request_with_retry({"op": "repair", "source": ""})
            assert response["error"]["code"] == "unknown-problem"
            assert slept == []
        finally:
            server.close()

    def test_budget_exhausted_returns_last_retriable_response(self):
        server = _ScriptedServer([error_payload("overloaded", "busy")] * 2)
        slept = []
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(attempts=2, base_delay=0.05),
                sleep=slept.append,
            )
            with client:
                response = client.request_with_retry({"op": "ping"})
            assert response["error"]["code"] == "overloaded"
            assert slept == [0.05]
        finally:
            server.close()

    def test_reconnects_after_lost_connection(self):
        # First connection dies mid-request (None = close without answering);
        # the retry opens a second connection and succeeds.
        server = _ScriptedServer([None, {"ok": True, "op": "ping"}])
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(attempts=3, base_delay=0.0),
                sleep=lambda _delay: None,
            )
            with client:
                assert client.ping()["ok"] is True
            assert len(server.requests) == 2
        finally:
            server.close()

    def test_connect_retries_until_listener_appears(self):
        listener_port = socket.create_server(("127.0.0.1", 0))
        port = listener_port.getsockname()[1]
        listener_port.close()  # nothing listening now

        server_box = {}

        def open_listener_then_sleep(_delay):
            if "server" not in server_box:
                server_box["server"] = _ScriptedServerAt(port, [{"ok": True, "op": "ping"}])

        client = ServiceClient(
            "127.0.0.1",
            port,
            retry=RetryPolicy(attempts=3, base_delay=0.01),
            sleep=open_listener_then_sleep,
        )
        try:
            with client:
                assert client.ping()["ok"] is True
        finally:
            server_box["server"].close()

    def test_connect_failure_reraises_without_policy(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()
        with pytest.raises(OSError):
            ServiceClient("127.0.0.1", port)


class _ScriptedServerAt(_ScriptedServer):
    def __init__(self, port, responses):
        self.responses = list(responses)
        self.listener = socket.create_server(("127.0.0.1", port))
        self.port = port
        self.requests = []
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()


# -- engine crash isolation --------------------------------------------------------


class TestEngineCrashIsolation:
    def test_unexpected_exception_becomes_internal_error_record(self, corpora):
        spec = get_problem("derivatives")
        clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
        clara.add_correct_sources(corpora["derivatives"].correct_sources)

        original = clara._repair_attempt
        calls = {"n": 0}

        def explode_once(source, budget=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("synthetic engine bug")
            return original(source, budget=budget)

        clara._repair_attempt = explode_once
        engine = BatchRepairEngine(clara, workers=1)
        report = engine.run(
            [
                BatchAttempt(attempt_id="boom", source=corpora["derivatives"].incorrect_sources[0]),
                BatchAttempt(attempt_id="fine", source=corpora["derivatives"].incorrect_sources[1]),
            ]
        )
        by_id = {record.attempt_id: record for record in report.records}
        assert by_id["boom"].status == "internal-error"
        assert "RuntimeError" in by_id["boom"].detail
        # The crash is isolated to its attempt: the next one still repairs.
        assert by_id["fine"].status == "repaired"


# -- fleet: routing and supervision ------------------------------------------------


class TestFleetRouting:
    def test_routes_repairs_and_answers_stats(self, stores, corpora, tmp_path):
        fleet = _fleet(stores, tmp_path, fleet_size=2)
        try:
            assert fleet.problems() == list(PROBLEMS)
            assert fleet.fleet_size == 2
            for name in PROBLEMS:
                response = _run(
                    fleet.handle_line(
                        _repair_line(corpora[name].incorrect_sources[0], problem=name)
                    )
                )
                assert response["ok"] is True, response
                assert response["status"] == "repaired"
                assert response["id"] == "r"
            stats = _run(fleet.handle_line('{"op": "stats", "id": "s"}'))
            assert stats["ok"] is True
            assert stats["fleet"]["size"] == 2
            assert stats["fleet"]["totals"]["served"] == 2
            shards = stats["fleet"]["shards"]
            assert shards["0"]["problems"] == ["derivatives"]
            assert shards["1"]["problems"] == ["oddTuples"]
            for shard in shards.values():
                assert shard["state"] == "serving"
                assert shard["pid"] is not None
            # Each serving worker contributed its own stats payload.
            assert set(stats["workers"]) == {"0", "1"}
            for payload in stats["workers"].values():
                assert payload["ok"] is True
        finally:
            fleet.close()

    def test_unknown_problem_and_ping(self, stores, tmp_path):
        fleet = _fleet(stores[:1], tmp_path, fleet_size=1)
        try:
            pong = _run(fleet.handle_line('{"op": "ping", "id": 7}'))
            assert pong["ok"] is True and pong["id"] == 7
            response = _run(fleet.handle_line(_repair_line("x = 1", problem="nope")))
            assert response["error"]["code"] == "unknown-problem"
            assert response["error"]["retriable"] is False
            garbage = _run(fleet.handle_line("{not json"))
            assert garbage["error"]["code"] == "bad-json"
        finally:
            fleet.close()

    def test_fleet_size_capped_and_validated(self, stores, tmp_path):
        fleet = _fleet(stores, tmp_path, fleet_size=8)
        try:
            assert fleet.fleet_size == 2  # one worker per problem at most
        finally:
            fleet.close()
        with pytest.raises(ValueError, match="fleet_size"):
            FleetService(stores, fleet_size=0)
        with pytest.raises(ValueError, match="at least one"):
            FleetService([])


class TestFleetRecovery:
    def test_crash_mid_request_is_retried_once_and_repaired(self, stores, corpora, tmp_path):
        fleet = _fleet(
            stores[:1],
            tmp_path,
            fleet_size=1,
            faults=[Fault(action="crash", request=0, worker=0, incarnation=0)],
        )
        try:
            response = _run(
                fleet.handle_line(_repair_line(corpora["derivatives"].incorrect_sources[0]))
            )
            # The worker died mid-request; the respawn repaired the retry.
            assert response["ok"] is True and response["status"] == "repaired"
            counters = fleet.fleet_counters()
            assert counters["crashes"] == 1
            assert counters["restarts"] == 1
            assert counters["retries"] == 1
            assert counters["served"] == 1
        finally:
            fleet.close()

    def test_second_crash_surfaces_structured_worker_crashed(self, stores, corpora, tmp_path):
        fleet = _fleet(
            stores[:1],
            tmp_path,
            fleet_size=1,
            faults=[
                Fault(action="crash", request=0, worker=0, incarnation=0),
                Fault(action="crash", request=0, worker=0, incarnation=1),
            ],
        )
        try:
            response = _run(
                fleet.handle_line(_repair_line(corpora["derivatives"].incorrect_sources[0]))
            )
            # Retried once, crashed again: a structured retriable error, not
            # a dropped request.
            assert response["ok"] is False
            assert response["error"]["code"] == "worker-crashed"
            assert response["error"]["retriable"] is True
            assert response["id"] == "r"
            assert fleet.fleet_counters()["crashes"] == 2
            # Incarnation 2 has no fault: the shard recovers for new traffic.
            supervisor = fleet.shard_for("derivatives")
            assert supervisor.wait_ready(30)
            recovered = _run(
                fleet.handle_line(_repair_line(corpora["derivatives"].incorrect_sources[1]))
            )
            assert recovered["status"] == "repaired"
        finally:
            fleet.close()

    def test_hung_worker_is_killed_and_request_retried(self, stores, corpora, tmp_path):
        fleet = _fleet(
            stores[:1],
            tmp_path,
            fleet_size=1,
            kill_after=0.3,
            faults=[Fault(action="hang", request=0, worker=0, incarnation=0, seconds=3600)],
        )
        try:
            response = _run(
                fleet.handle_line(_repair_line(corpora["derivatives"].incorrect_sources[0]))
            )
            assert response["ok"] is True and response["status"] == "repaired"
            counters = fleet.fleet_counters()
            assert counters["kills"] == 1
            assert counters["crashes"] == 1  # the kill is observed as a death
            assert counters["retries"] == 1
        finally:
            fleet.close()

    def test_flapping_shard_trips_breaker_while_other_shard_serves(
        self, stores, corpora, tmp_path
    ):
        # worker 0 crashes on its first repair in *every* incarnation
        # (incarnation omitted); worker 1 is healthy throughout.
        fleet = _fleet(
            stores,
            tmp_path,
            fleet_size=2,
            faults=[Fault(action="crash", request=0, worker=0)],
            backoff=BackoffPolicy(base=0.02, factor=2.0, max_strikes=3),
        )
        try:
            first = _run(
                fleet.handle_line(_repair_line(corpora["derivatives"].incorrect_sources[0]))
            )
            assert first["error"]["code"] == "worker-crashed"
            supervisor = fleet.shard_for("derivatives")
            deadline = time.time() + 30
            while supervisor.state != "unavailable" and time.time() < deadline:
                response = _run(
                    fleet.handle_line(
                        _repair_line(corpora["derivatives"].incorrect_sources[0])
                    )
                )
                assert response["ok"] is False
            assert supervisor.state == "unavailable"
            tripped = _run(
                fleet.handle_line(_repair_line(corpora["derivatives"].incorrect_sources[1]))
            )
            assert tripped["error"]["code"] == "shard-unavailable"
            assert tripped["error"]["retriable"] is True
            assert fleet.fleet_counters()["shed"] >= 1
            # The healthy shard is untouched by its neighbour's breaker.
            healthy = _run(
                fleet.handle_line(
                    _repair_line(corpora["oddTuples"].incorrect_sources[0], problem="oddTuples")
                )
            )
            assert healthy["ok"] is True and healthy["status"] == "repaired"
            stats = _run(fleet.handle_line('{"op": "stats"}'))
            assert stats["fleet"]["shards"]["0"]["state"] == "unavailable"
            assert stats["fleet"]["shards"]["1"]["state"] == "serving"
            assert "error" in stats["workers"]["0"]
        finally:
            fleet.close()

    def test_close_fails_queued_requests_with_draining(self, stores, corpora, tmp_path):
        fleet = _fleet(
            stores[:1],
            tmp_path,
            fleet_size=1,
            faults=[Fault(action="delay", request=0, worker=0, incarnation=0, seconds=1.0)],
        )
        try:
            supervisor = fleet.shard_for("derivatives")
            slow = supervisor.submit(
                _repair_line(corpora["derivatives"].incorrect_sources[0]), request_id="slow"
            )
            # Wait for the writer thread to hand the line to the worker, so
            # close() observes it in flight rather than still queued.
            deadline = time.time() + 5
            while supervisor._outbox and time.time() < deadline:
                time.sleep(0.01)
        finally:
            fleet.close()
        # The in-flight request was drained to completion, not dropped.
        response = slow.result(timeout=5)
        assert response["ok"] is True and response["status"] == "repaired"
        late = supervisor.submit(_repair_line("x", request_id="late"), request_id="late")
        assert late.result(timeout=5)["error"]["code"] == "draining"


# -- serve --fleet end to end ------------------------------------------------------


class TestServeFleetCli:
    def test_sigterm_drains_inflight_and_removes_ready_file(
        self, stores, corpora, tmp_path
    ):
        plan = FaultPlan(
            (Fault(action="delay", request=0, worker=0, incarnation=0, seconds=2.0),)
        ).save(tmp_path / "plan.json")
        ready = tmp_path / "ready.txt"
        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--clusters", str(stores[0]),
                "--fleet", "1", "--port", "0",
                "--ready-file", str(ready),
                "--fault-plan", str(plan),
                "--drain-timeout", "20",
            ],
            env=env,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 60
            while not ready.exists():
                assert proc.poll() is None, "serve exited before becoming ready"
                assert time.time() < deadline, "serve never became ready"
                time.sleep(0.1)
            host, port = ready.read_text().split()
            inflight = ServiceClient(host, int(port), timeout=60)
            bystander = ServiceClient(host, int(port), timeout=60)
            bystander.ping()
            results = {}

            def drive():
                results["inflight"] = inflight.request(
                    {
                        "op": "repair",
                        "source": corpora["derivatives"].incorrect_sources[0],
                        "id": "inflight",
                    }
                )

            thread = threading.Thread(target=drive)
            thread.start()
            time.sleep(0.5)  # the repair is inside its 2s delay fault
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.3)  # drain is now active, repair still in flight
            late = bystander.request({"op": "ping", "id": "late"})
            thread.join(timeout=60)
            inflight.close()
            bystander.close()

            # Zero lost requests: the in-flight repair completed during the
            # drain window, the late line got a retriable refusal.
            assert results["inflight"]["ok"] is True
            assert results["inflight"]["status"] == "repaired"
            assert late["ok"] is False
            assert late["error"]["code"] == "draining"
            assert late["error"]["retriable"] is True
            assert late["id"] == "late"
            assert proc.wait(timeout=30) == 0
            assert not ready.exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
