"""Tests for feedback generation and the end-to-end pipeline."""

from __future__ import annotations

import pytest

from repro.core.clustering import cluster_programs
from repro.core.feedback import GENERIC_FEEDBACK_THRESHOLD, generate_feedback
from repro.core.inputs import is_correct
from repro.core.pipeline import Clara, RepairStatus
from repro.core.repair import repair_against_cluster
from repro.frontend import parse_python_source


@pytest.fixture()
def clara(paper_sources, deriv_cases):
    tool = Clara(deriv_cases)
    tool.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    return tool


# -- feedback ---------------------------------------------------------------------


def test_feedback_for_paper_i1_mentions_return(paper_sources, deriv_cases):
    cluster = cluster_programs(
        [parse_python_source(paper_sources["C1"])], deriv_cases
    ).clusters[0]
    implementation = parse_python_source(paper_sources["I1"])
    repair = repair_against_cluster(implementation, cluster)
    feedback = generate_feedback(repair, implementation)
    assert not feedback.generic
    assert feedback.is_repair_based
    text = feedback.text()
    assert "return value" in text
    assert "[0.0]" in text
    assert "line" in text  # location information is included


def test_feedback_generic_above_threshold(paper_sources, deriv_cases):
    cluster = cluster_programs(
        [parse_python_source(paper_sources["C1"])], deriv_cases
    ).clusters[0]
    implementation = parse_python_source(paper_sources["I2"])
    repair = repair_against_cluster(implementation, cluster)
    feedback = generate_feedback(repair, implementation, generic_threshold=0.5)
    assert feedback.generic
    assert not feedback.is_repair_based
    assert "problem statement" in feedback.text()
    assert GENERIC_FEEDBACK_THRESHOLD == 100


def test_feedback_numbering():
    from repro.core.feedback import Feedback, FeedbackItem

    feedback = Feedback(items=[FeedbackItem("first"), FeedbackItem("second")], generic=False, cost=2)
    assert feedback.text().splitlines() == ["1. first", "2. second"]


# -- pipeline ----------------------------------------------------------------------


def test_pipeline_repairs_incorrect_attempt(clara, paper_sources, deriv_cases):
    outcome = clara.repair_source(paper_sources["I1"])
    assert outcome.status == RepairStatus.REPAIRED
    assert outcome.succeeded
    assert outcome.repair is not None
    assert outcome.feedback is not None
    assert is_correct(outcome.repair.repaired_program, deriv_cases)
    assert outcome.elapsed >= 0.0


def test_pipeline_detects_already_correct(clara, paper_sources):
    outcome = clara.repair_source(paper_sources["C2"])
    assert outcome.status == RepairStatus.ALREADY_CORRECT


def test_pipeline_parse_error_status(clara):
    outcome = clara.repair_source("def computeDeriv(poly:\n  return")
    assert outcome.status == RepairStatus.PARSE_ERROR


def test_pipeline_unsupported_status(clara):
    outcome = clara.repair_source(
        "def computeDeriv(poly):\n    return [i*p for i, p in enumerate(poly)][1:] or [0.0]\n"
    )
    assert outcome.status == RepairStatus.UNSUPPORTED


def test_pipeline_no_structural_match_status(clara):
    outcome = clara.repair_source("def computeDeriv(poly):\n    return [0.0]\n")
    assert outcome.status == RepairStatus.NO_STRUCTURAL_MATCH


def test_pipeline_without_clusters(deriv_cases, paper_sources):
    empty = Clara(deriv_cases)
    outcome = empty.repair_source(paper_sources["I1"])
    assert outcome.status == RepairStatus.NO_REPAIR


def test_pipeline_skips_uncorrect_sources_when_clustering(deriv_cases, paper_sources):
    clara = Clara(deriv_cases)
    clara.add_correct_sources(
        [paper_sources["C1"], paper_sources["I1"], "not even python ("]
    )
    # Only the genuinely correct source is clustered.
    assert clara.cluster_count == 1
    assert clara.clusters[0].size == 1


def test_pipeline_cluster_sizes_and_counts(clara):
    assert clara.cluster_count == 1
    assert clara.cluster_sizes() == [2]


def test_pipeline_representative_only_ablation(paper_sources, deriv_cases):
    full = Clara(deriv_cases, use_cluster_expressions=True)
    full.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    restricted = Clara(deriv_cases, use_cluster_expressions=False)
    restricted.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    source = paper_sources["I2"]
    full_outcome = full.repair_source(source)
    restricted_outcome = restricted.repair_source(source)
    assert full_outcome.succeeded and restricted_outcome.succeeded
    assert full_outcome.repair.cost <= restricted_outcome.repair.cost


def test_pipeline_c_language_end_to_end():
    from repro.datasets import get_problem

    problem = get_problem("special_number")
    clara = Clara(cases=problem.cases, language="c")
    clara.add_correct_sources(problem.reference_sources)
    broken = problem.reference_sources[0].replace("d*d*d", "d*d")
    outcome = clara.repair_source(broken)
    assert outcome.status == RepairStatus.REPAIRED
    assert is_correct(outcome.repair.repaired_program, problem.cases)
