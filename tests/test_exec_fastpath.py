"""Tests for the execution fast path: compiled expressions, copy-on-write
traces, the per-location step index and the evaluation-ops budget.

The contract under test everywhere: the compiled path is *observationally
identical* to the interpreted reference (`evaluate` /
`execute_interpreted`), field for field."""

from __future__ import annotations

import random

from helpers.differential import assert_repairs_field_identical

from repro.core.inputs import InputCase, program_traces
from repro.core.repair import find_best_repair
from repro.datasets import generate_corpus, get_problem
from repro.engine import RepairCaches
from repro.frontend import parse_python_source
from repro.interpreter.compile import CompileCache, compile_expr, default_compile_cache
from repro.interpreter.evaluator import evaluate
from repro.interpreter.executor import (
    ExecutionLimits,
    ExecutionPlan,
    execute,
    execute_interpreted,
    returned_value,
)
from repro.interpreter.values import UNDEF, is_undef, values_equal
from repro.model.expr import Const, Op, VAR_COND, VAR_RET, Var, intern_expr
from repro.model.program import Program
from repro.model.trace import StepMemory, Trace, TraceMemory, TraceStep


# -- compiled evaluation == interpreted evaluation ---------------------------------


def _random_expr(rng, depth: int = 3):
    """Small random expression over a fixed vocabulary (deterministic per rng).

    Mirrors the TED property test's generator, but biased toward the
    operations with bespoke compiled forms (And/Or/ite) and toward
    list-valued constants (the freeze-per-evaluation path)."""
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return Var(rng.choice("abcxyz"))
        return Const(rng.choice([0, 1, 2, 2.5, True, False, None, "s", [], [1, 2]]))
    name = rng.choice(
        ["Add", "Sub", "Mult", "Div", "Eq", "Lt", "And", "Or", "ite", "Not", "len", "nope"]
    )
    arity = {"And": 2, "Or": 2, "ite": 3, "Not": 1, "len": 1}.get(
        name, rng.randint(1, 3)
    )
    return Op(name, *(_random_expr(rng, depth - 1) for _ in range(arity)))


def _random_memory(rng) -> dict:
    memory = {}
    for name in "abcxyz":
        if rng.random() < 0.8:
            memory[name] = rng.choice(
                [0, 1, 3, -2, 0.5, True, False, "t", [], [1], [2.0, 3.0], UNDEF]
            )
    return memory


def test_compiled_equals_interpreted_on_random_expressions():
    """Property (seeded, deterministic): compiling an expression and applying
    the closure agrees with a fresh interpreted evaluation on every memory."""
    rng = random.Random(20180618)
    cache = CompileCache()
    for _ in range(300):
        expr = _random_expr(rng)
        fn = cache.fn(expr)
        for _ in range(3):
            memory = _random_memory(rng)
            assert values_equal(fn(memory), evaluate(expr, memory))
            # The memoized closure and a cache-free compile agree too.
            assert values_equal(compile_expr(expr)(memory), evaluate(expr, memory))
    assert cache.misses > 0


def test_compiled_short_circuit_returns_operands():
    # And/Or return the deciding operand, not a bool — like Python.
    assert compile_expr(Op("And", Const(0), Var("boom")))({}) == 0
    assert compile_expr(Op("Or", Const([]), Const([0.0])))({}) == [0.0]
    assert compile_expr(Op("Or", Var("r"), Const([0.0])))({"r": [7.6]}) == [7.6]
    assert compile_expr(Op("Or", Var("r"), Const([0.0])))({"r": []}) == [0.0]
    assert compile_expr(Op("And", Const(2), Const(3)))({}) == 3


def test_compiled_undef_propagation():
    # UNDEF short-circuits And/Or even though it is falsy.
    assert is_undef(compile_expr(Op("And", Var("missing"), Const(1)))({}))
    assert is_undef(compile_expr(Op("Or", Var("missing"), Const(1)))({}))
    # ite is lazy: the untaken branch is never evaluated.
    lazy = Op("ite", Var("c"), Const(1), Op("Div", Const(1), Const(0)))
    assert compile_expr(lazy)({"c": True}) == 1
    assert is_undef(compile_expr(lazy)({"c": False}))
    assert is_undef(compile_expr(lazy)({}))  # undefined condition
    # Generic ops: first-UNDEF-wins, errors map to ⊥, unknown ops are ⊥.
    assert is_undef(compile_expr(Op("Add", Var("x"), Const(1)))({}))
    assert is_undef(compile_expr(Op("Div", Const(1), Const(0)))({}))
    assert is_undef(compile_expr(Op("Method_length", Var("x")))({"x": 3}))


def test_compiled_list_constants_are_fresh_per_evaluation():
    fn = compile_expr(Const([1, [2]]))
    first, second = fn({}), fn({})
    assert first == second == [1, [2]]
    assert first is not second  # traces must never alias one list object
    assert first[1] is not second[1]


def test_compile_cache_counters_and_sharing():
    cache = CompileCache()
    expr = intern_expr(Op("Add", Var("x"), Const(1)))
    fn = cache.fn(expr)
    assert cache.fn(expr) is fn
    # A structurally equal, non-interned duplicate also hits.
    assert cache.fn(Op("Add", Var("x"), Const(1))) is fn
    assert cache.counters() == {"hits": 2, "misses": 1, "nodes_compiled": 3}
    assert cache.entry_counts()["compiled_exprs"] >= 1

    # A new tree embedding an already-compiled subtree only pays for the
    # new nodes: nodes_compiled counts work done, not tree sizes.
    assert cache.fn(Op("Mult", Op("Add", Var("x"), Const(1)), Const(2)))({"x": 2}) == 6
    assert cache.counters() == {"hits": 2, "misses": 2, "nodes_compiled": 5}

    disabled = CompileCache(enabled=False)
    disabled.fn(expr)
    disabled.fn(expr)
    assert disabled.counters() == {"hits": 0, "misses": 2, "nodes_compiled": 6}
    assert disabled.entry_counts() == {"compiled_exprs": 0}


def test_unknown_op_compiled_before_registration_sees_late_register():
    """The registry is open (libfuncs.register): a closure compiled while an
    op was unknown must pick the op up once registered, like the interpreter."""
    from repro.interpreter.libfuncs import LIBRARY, register

    name = "test_exec_fastpath_late_op"
    assert name not in LIBRARY
    expr = Op(name, Var("x"))
    fn = compile_expr(expr)
    try:
        assert is_undef(fn({"x": 4}))
        assert is_undef(evaluate(expr, {"x": 4}))
        register(name, lambda x: x * 10)
        assert fn({"x": 4}) == 40  # the already-compiled closure re-resolves
        assert evaluate(expr, {"x": 4}) == 40
        # Arguments still propagate UNDEF before the late lookup.
        assert is_undef(fn({}))
    finally:
        del LIBRARY[name]


def test_repair_caches_own_a_compile_cache():
    caches = RepairCaches()
    assert caches.compiled.enabled
    assert RepairCaches(enabled=False).compiled.enabled is False
    assert "compiled_exprs" in caches.entry_counts()


# -- compiled executor == interpreted executor -------------------------------------


def _counting_loop_program(limit_expr) -> Program:
    program = Program("count", params=["n"])
    entry = program.add_location("entry")
    cond = program.add_location("loop-cond")
    body = program.add_location("loop-body")
    after = program.add_location("after-loop")
    program.set_update(entry.loc_id, "i", Const(0))
    program.set_update(cond.loc_id, VAR_COND, limit_expr)
    program.set_update(body.loc_id, "i", Op("Add", Var("i"), Const(1)))
    program.set_update(after.loc_id, VAR_RET, Var("i"))
    program.set_successor(entry.loc_id, cond.loc_id, cond.loc_id)
    program.set_successor(cond.loc_id, body.loc_id, after.loc_id)
    program.set_successor(body.loc_id, cond.loc_id, cond.loc_id)
    program.set_successor(after.loc_id, None, None)
    return program


def assert_traces_identical(fast: Trace, reference: Trace) -> None:
    """Field-for-field equality of two traces (loc ids, pre/post, aborted)."""
    assert fast.aborted == reference.aborted
    assert fast.location_sequence == reference.location_sequence
    for fast_step, ref_step in zip(fast.steps, reference.steps):
        assert dict(fast_step.pre) == dict(ref_step.pre)
        assert dict(fast_step.post) == dict(ref_step.post)
        assert fast_step == ref_step  # TraceStep.__eq__ across representations


def test_execute_matches_interpreted_on_loop():
    program = _counting_loop_program(Op("Lt", Var("i"), Var("n")))
    for n in (0, 3, 7):
        assert_traces_identical(
            execute(program, {"n": n}), execute_interpreted(program, {"n": n})
        )
    assert returned_value(execute(program, {"n": 3})) == 3


def test_execute_matches_interpreted_on_aborted_run():
    program = _counting_loop_program(Const(True))
    limits = ExecutionLimits(max_steps=50)
    fast = execute(program, {"n": 3}, limits)
    assert fast.aborted and len(fast) == 50
    assert_traces_identical(fast, execute_interpreted(program, {"n": 3}, limits))


def test_execute_matches_interpreted_on_real_corpus():
    """Every generated attempt (correct and incorrect) of a real problem
    executes identically under both paths, on every case."""
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 6, 6, seed=7)
    for source in corpus.correct_sources + corpus.incorrect_sources:
        program = parse_python_source(source)
        compiled = program_traces(program, problem.cases)
        for trace, case in zip(compiled, problem.cases):
            reference = execute_interpreted(program, case.memory_for(program))
            assert_traces_identical(trace, reference)


def test_cow_steps_record_only_written_vars():
    program = _counting_loop_program(Op("Lt", Var("i"), Var("n")))
    trace = execute(program, {"n": 2})
    universe = len(dict(trace.steps[0].pre))
    for step in trace.steps:
        assert step.written_vars is not None
        assert len(step.written_vars) <= 1  # each location writes one var here
        assert len(dict(step.post)) == universe
    # pre of step k+1 sees exactly what post of step k sees.
    for before, after in zip(trace.steps, trace.steps[1:]):
        assert dict(before.post) == dict(after.pre)


def test_step_memory_view_behaves_like_dict():
    memory = TraceMemory({"x": 1, "y": UNDEF})
    memory.write(0, "x", 2)
    memory.write(1, "z", 9)
    view0, view1 = StepMemory(memory, 0), StepMemory(memory, 1)
    assert view0["x"] == 2 and view0.get("y") is UNDEF
    assert view0.get("z", "absent") == "absent"
    assert "z" not in view0 and "z" in view1
    assert dict(view1) == {"x": 2, "y": UNDEF, "z": 9}
    assert view1 == {"x": 2, "y": UNDEF, "z": 9}  # mapping equality with dicts
    assert {"x": 2, "y": UNDEF, "z": 9} == view1
    assert view0 != view1
    assert len(view0) == 2 and sorted(view0) == ["x", "y"]


def test_steps_at_uses_shared_index():
    steps = [
        TraceStep(loc_id=0, pre={}, post={"x": 1}),
        TraceStep(loc_id=1, pre={"x": 1}, post={"x": 2}),
        TraceStep(loc_id=1, pre={"x": 2}, post={"x": 3}),
    ]
    trace = Trace(steps)
    assert trace.steps_at(1) == [steps[1], steps[2]]
    assert trace.steps_at(1) is trace.steps_at(1)  # built once, shared
    assert trace.steps_at(99) == []


# -- evaluation-ops budget ----------------------------------------------------------


def test_eval_ops_budget_defaults_off_and_aborts_when_exceeded():
    program = _counting_loop_program(Op("Lt", Var("i"), Var("n")))
    unbounded = execute(program, {"n": 100})
    assert not unbounded.aborted

    capped = execute(program, {"n": 100}, ExecutionLimits(max_eval_ops=40))
    assert capped.aborted
    assert len(capped) < len(unbounded)
    # The interpreted reference applies the identical static accounting.
    assert_traces_identical(
        capped, execute_interpreted(program, {"n": 100}, ExecutionLimits(max_eval_ops=40))
    )

    # A budget covering the whole run changes nothing.
    total_ops = sum(
        ExecutionPlan.for_program(program).step_ops[loc]
        for loc in unbounded.location_sequence
    )
    roomy = execute(program, {"n": 100}, ExecutionLimits(max_eval_ops=total_ops))
    assert_traces_identical(roomy, unbounded)
    # One op less stops before the final step.
    tight = execute(program, {"n": 100}, ExecutionLimits(max_eval_ops=total_ops - 1))
    assert tight.aborted and len(tight) == len(unbounded) - 1


def test_eval_ops_budget_stops_deep_expression_early():
    """A single pathologically deep expression is stopped by the ops budget
    even though the *step* budget would never trip."""
    deep = Var("x")
    for _ in range(300):
        deep = Op("Add", deep, Const(1))
    program = Program("f", params=["x"])
    loc = program.add_location("entry")
    program.set_update(loc.loc_id, VAR_RET, deep)
    program.set_successor(loc.loc_id, None, None)

    trace = execute(program, {"x": 1}, ExecutionLimits(max_eval_ops=100))
    assert trace.aborted and len(trace) == 0

    full = execute(program, {"x": 1})
    assert not full.aborted and returned_value(full) == 301


# -- compiled evaluation threaded through the repair layers -------------------------


def test_repair_outcomes_identical_compiled_vs_interpreted():
    """find_best_repair with the engine caches (compiled candidate screening)
    returns field-identical repairs to the cache-free interpreted path."""
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 8, 6, seed=11)
    correct = [parse_python_source(s) for s in corpus.correct_sources]
    from repro.core.clustering import cluster_programs

    clusters = cluster_programs(correct, problem.cases).clusters
    attempts = [parse_python_source(s) for s in corpus.incorrect_sources]

    interpreted = [
        find_best_repair(p, clusters, caches=None, cost_bound=False) for p in attempts
    ]
    for cluster in clusters:  # drop reference-value memos filled above
        cluster.reset_runtime_caches()
    caches = RepairCaches()
    compiled = [
        find_best_repair(p, clusters, caches=caches, cost_bound=False)
        for p in attempts
    ]

    assert_repairs_field_identical(compiled, interpreted)
    assert caches.compiled.hits > 0  # the screening loop really compiled


def test_default_compile_cache_is_shared():
    assert default_compile_cache() is default_compile_cache()


def test_engine_traces_still_cached_and_equal():
    """RepairCaches.traces routes through the compiled executor and still
    returns the same object on a hit."""
    cases = [InputCase(args=(3,), expected_return=6)]
    source = "def f(n):\n    return n * 2\n"
    program = parse_python_source(source)
    caches = RepairCaches()
    first = caches.traces(program, cases)
    assert caches.traces(program, cases) is first
    assert_traces_identical(first[0], execute_interpreted(program, cases[0].memory_for(program)))
